//! Ring reroute (the paper's Section 5.2 scalability workload).
//!
//! Traffic around a ring of switches flows clockwise until a marked packet
//! flips the direction. The example shows per-switch event-discovery times
//! with pure digest gossip vs controller-assisted broadcast — the contrast
//! behind the paper's Fig. 16(b).
//!
//! Run with: `cargo run -p edn-apps --example ring_reroute`

use edn_apps::ring::{host, Ring};
use edn_core::EventId;
use nes_runtime::{nes_engine, verify_nes_run};
use netsim::traffic::{schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};

fn run(diameter: u64, broadcast: bool) {
    let ring = Ring::new(diameter);
    let topo = ring.sim_topology(SimTime::from_micros(100), None);
    let mut engine = nes_engine(
        ring.nes(),
        topo,
        SimParams::default(),
        broadcast,
        Box::new(ScenarioHosts::new()),
    );

    // Background traffic: each host pings its clockwise neighbour's host
    // every 500 ms — the gossip vehicle for digests.
    let n = ring.switch_count();
    let mut pings = Vec::new();
    let mut id = 0;
    for round in 0..40u64 {
        for sw in 1..=n {
            pings.push(Ping {
                time: SimTime::from_millis(500 * round + 13 * sw),
                src: host(sw),
                dst: host(sw % n + 1),
                id,
            });
            id += 1;
        }
    }
    schedule_pings(&mut engine, &pings);

    // The trigger fires at 1 s.
    let t0 = SimTime::from_secs(1);
    engine.inject_at(t0, ring.h1(), ring.trigger_packet());

    let result = engine.run_until(SimTime::from_secs(30));
    verify_nes_run(&result).expect("ring run is consistent");

    let e0 = EventId::new(0);
    let mut times: Vec<(u64, Option<SimTime>)> =
        (1..=n).map(|sw| (sw, result.dataplane.discovery_time(sw, e0))).collect();
    times.sort();
    println!(
        "diameter {diameter} ({} switches), {}:",
        n,
        if broadcast { "controller-assisted" } else { "digest gossip only" }
    );
    for (sw, t) in &times {
        match t {
            Some(t) => println!("  switch {sw}: learned after {}", t.saturating_sub(t0)),
            None => println!("  switch {sw}: never learned"),
        }
    }
    let max = times.iter().filter_map(|(_, t)| *t).max().map(|t| t.saturating_sub(t0));
    println!("  max discovery time: {}\n", max.map_or("n/a".to_string(), |t| t.to_string()));
}

fn main() {
    for diameter in [3, 6] {
        run(diameter, false);
        run(diameter, true);
    }
}
