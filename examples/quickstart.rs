//! Quickstart: compile a Stateful NetKAT program, deploy it on the
//! simulator with the event-driven consistent runtime, send traffic, and
//! machine-check the run against the paper's Definition 6.
//!
//! Run with: `cargo run -p edn-apps --example quickstart`

use edn_apps::{firewall, sim_topology, H1, H4};
use nes_runtime::{nes_engine, verify_nes_run, CompiledNes};
use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};

fn main() {
    // 1. The stateful firewall of the paper's Fig. 9(a), in concrete syntax.
    println!("program:\n  {}\n", firewall::SOURCE);

    // 2. Parse → project per state → extract events → ETS → NES.
    let nes = firewall::nes();
    println!("events: {}", nes.events().len());
    for e in nes.events() {
        println!("  {e}");
    }
    println!("event-sets (= configurations): {}", nes.event_sets().len());
    println!("locally determined: {}", nes.is_locally_determined(4));
    let compiled = CompiledNes::compile(nes.clone());
    println!("rule footprint: {}\n", compiled.rule_breakdown());

    // 3. Deploy on the discrete-event simulator and ping.
    let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
    let mut engine =
        nes_engine(nes, topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
    let pings = vec![
        Ping { time: SimTime::from_millis(10), src: H4, dst: H1, id: 1 },
        Ping { time: SimTime::from_millis(100), src: H1, dst: H4, id: 2 },
        Ping { time: SimTime::from_millis(200), src: H4, dst: H1, id: 3 },
    ];
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(2));

    for o in ping_outcomes(&pings, &result.stats) {
        println!(
            "ping {} -> {} at {}: {}",
            o.ping.src,
            o.ping.dst,
            o.ping.time,
            match o.replied {
                Some(t) => format!("replied after {}", t - o.ping.time),
                None => "no reply".to_string(),
            }
        );
    }

    // 4. Machine-check the whole run against Definition 6.
    match verify_nes_run(&result) {
        Ok(()) => println!("\ntrace is event-driven consistent (Definition 6)"),
        Err(v) => println!("\nCONSISTENCY VIOLATION: {v}"),
    }
}
