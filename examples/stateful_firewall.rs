//! The stateful firewall, correct vs uncoordinated (the paper's Fig. 11).
//!
//! A ping timeline is run twice: once on the event-driven consistent
//! runtime, once on the uncoordinated baseline with a 1-second controller
//! delay. The baseline drops the reply to H1's own connection attempt — the
//! SYN-ACK problem from the paper's introduction.
//!
//! Run with: `cargo run -p edn-apps --example stateful_firewall`

use edn_apps::{firewall, sim_topology, H1, H4};
use nes_runtime::{nes_engine, uncoordinated_engine, verify_nes_run};
use netsim::traffic::{ping_outcomes, schedule_pings, Ping, PingOutcome, ScenarioHosts};
use netsim::{SimParams, SimTime};

fn timeline() -> Vec<Ping> {
    let mut pings = Vec::new();
    let mut id = 0;
    // Fig. 11's shape: H4->H1 probes, then H1->H4 opens the connection,
    // then more H4->H1 probes.
    for t in (1..6).map(SimTime::from_secs) {
        pings.push(Ping { time: t, src: H4, dst: H1, id });
        id += 1;
    }
    for t in (6..10).map(SimTime::from_secs) {
        pings.push(Ping { time: t, src: H1, dst: H4, id });
        id += 1;
    }
    for t in (10..16).map(SimTime::from_secs) {
        pings.push(Ping { time: t, src: H4, dst: H1, id });
        id += 1;
    }
    pings
}

fn render(label: &str, outcomes: &[PingOutcome]) {
    println!("{label}");
    println!("  time   direction   result");
    for o in outcomes {
        println!(
            "  {:>4}s  {:>3} -> {:<3}  {}",
            o.ping.time.as_micros() / 1_000_000,
            o.ping.src,
            o.ping.dst,
            if o.replied.is_some() { "reply" } else { "LOST" },
        );
    }
}

fn main() {
    let pings = timeline();

    // (a) Our runtime.
    let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
    let mut engine = nes_engine(
        firewall::nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(ScenarioHosts::new()),
    );
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(20));
    render("(a) event-driven consistent runtime:", &ping_outcomes(&pings, &result.stats));
    match verify_nes_run(&result) {
        Ok(()) => println!("  checker: consistent (Definition 6)\n"),
        Err(v) => println!("  checker: VIOLATION {v}\n"),
    }

    // (b) Uncoordinated baseline, 1 s controller delay.
    let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
    let mut engine = uncoordinated_engine(
        firewall::nes(),
        topo,
        SimParams::default(),
        SimTime::from_millis(1000),
        42,
        Box::new(ScenarioHosts::new()),
    );
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(20));
    let outcomes = ping_outcomes(&pings, &result.stats);
    render("(b) uncoordinated baseline (1s delay):", &outcomes);
    let lost_h1 = outcomes.iter().filter(|o| o.ping.src == H1 && o.replied.is_none()).count();
    println!("  H1->H4 pings that lost their reply: {lost_h1} (the paper's Fig. 11(b) pathology)");
}
