//! Rule sharing across configurations (the paper's Section 5.3) and
//! program equivalence checking, on the bandwidth-cap application.
//!
//! The bandwidth cap's 12 configurations differ only in which chain state
//! they represent; the trie heuristic collapses their shared rules behind
//! wildcarded configuration-ID guards. The example also shows the Fig. 18
//! worked example and a behavioural-equivalence check between two ways of
//! writing the same program.
//!
//! Run with: `cargo run -p edn-apps --example rule_sharing`

use std::collections::BTreeSet;

use edn_apps::{bandwidth_cap, host_env};
use nes_runtime::CompiledNes;
use rule_optimizer::{optimize, optimize_in_order};
use stateful_netkat::{equivalent_programs, parse};

fn main() {
    // --- The paper's Fig. 18 worked example -----------------------------
    let set = |items: &[&str]| items.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>();
    let configs = vec![
        set(&["r1", "r2"]), // C0
        set(&["r1", "r3"]), // C1
        set(&["r2", "r3"]), // C2
        set(&["r1", "r2"]), // C3
    ];
    let good = optimize(&configs);
    let naive = optimize_in_order(&configs);
    println!(
        "Fig. 18: naive IDs need {} rules, the heuristic needs {}",
        naive.optimized_count(),
        good.optimized_count()
    );
    println!("heuristic's guarded rules:");
    for (mask, rule) in &good.guarded_rules {
        println!("  ({}){}", mask.render(good.id_bits), rule);
    }

    // --- The bandwidth cap, for real -------------------------------------
    let compiled = CompiledNes::compile(bandwidth_cap::nes(10));
    let rule_sets = compiled.config_rule_sets();
    let opt = optimize(&rule_sets);
    println!(
        "\nbandwidth cap (n=10): {} configurations, {} forwarding rules -> {} ({}% saved)",
        compiled.tag_count(),
        opt.original_count,
        opt.optimized_count(),
        (opt.savings() * 100.0).round(),
    );
    for (tag, rules) in rule_sets.iter().enumerate() {
        assert_eq!(&opt.effective_rules(tag), rules, "semantics preserved");
    }
    println!("every configuration's effective rule set verified unchanged");

    // --- Equivalence checking --------------------------------------------
    let env = host_env();
    let p = bandwidth_cap::program(2);
    // The same cap written with the guard conjunction flipped.
    let q = parse(
        "ip_dst=H4 & pt=2; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
         + state=[1]; (1:1)->(4:1)<state<-[2]> + state=[2]; (1:1)->(4:1)<state<-[3]> \
         + state=[3]; (1:1)->(4:1)); pt<-2 \
         + pt=2 & ip_dst=H1; state!=[3]; pt<-1; (4:1)->(1:1); pt<-2",
        &env,
    )
    .expect("parses");
    let spec = bandwidth_cap::spec();
    let same = equivalent_programs(&p, &[0], &q, &[0], &spec).expect("both compile");
    println!("\ncap-2 program ≡ rewritten cap-2 program: {same}");
    let r = bandwidth_cap::program(3);
    let diff = equivalent_programs(&p, &[0], &r, &[0], &spec).expect("both compile");
    println!("cap-2 program ≡ cap-3 program: {diff}");
}
