//! Port-knocking authentication (the paper's Figs. 8(c)/9(c)/13).
//!
//! H4 gains access to H3 only after contacting H1 and then H2, in that
//! order. The example walks the knock sequence, showing each probe's fate
//! and the switch-state evolution, and checks the run.
//!
//! Run with: `cargo run -p edn-apps --example authentication`

use edn_apps::{authentication, sim_topology, H1, H2, H3, H4};
use nes_runtime::{nes_engine, verify_nes_run};
use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};

fn main() {
    let nes = authentication::nes();
    println!(
        "authentication NES: {} events, {} event-sets",
        nes.events().len(),
        nes.event_sets().len()
    );
    for e in nes.events() {
        println!("  {e}");
    }
    println!();

    let topo = sim_topology(&authentication::spec(), SimTime::from_micros(50), None);
    let mut engine =
        nes_engine(nes, topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));

    let s = SimTime::from_millis;
    let pings = vec![
        Ping { time: s(100), src: H4, dst: H3, id: 0 }, // blocked
        Ping { time: s(600), src: H4, dst: H2, id: 1 }, // blocked (wrong order)
        Ping { time: s(1100), src: H4, dst: H1, id: 2 }, // knock 1
        Ping { time: s(1600), src: H4, dst: H3, id: 3 }, // still blocked
        Ping { time: s(2100), src: H4, dst: H2, id: 4 }, // knock 2
        Ping { time: s(2600), src: H4, dst: H3, id: 5 }, // unlocked
    ];
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(5));

    let names = ["H1", "H2", "H3", "H4"];
    let name = |h: u64| names[(h - 101) as usize];
    for o in ping_outcomes(&pings, &result.stats) {
        println!(
            "{:>6}  H4 -> {}: {}",
            o.ping.time.to_string(),
            name(o.ping.dst),
            if o.replied.is_some() { "reply" } else { "blocked" }
        );
    }

    println!("\nevents fired, in order:");
    for (t, e) in result.dataplane.fired_log() {
        println!("  {t}  {e}");
    }

    match verify_nes_run(&result) {
        Ok(()) => println!("\ntrace is event-driven consistent (Definition 6)"),
        Err(v) => println!("\nCONSISTENCY VIOLATION: {v}"),
    }
}
