//! Differential equivalence for the streaming pipeline: (a) generator-backed
//! injection ([`edn_topo::attach_stream`]) must be byte-identical to the
//! eager [`edn_topo::schedule`] on the pinned §5.2 ring and fat-tree(4)
//! firewall scenarios and across seeded proptest sweeps of every arrival
//! model; (b) the online Definition 6 checker must agree with the post-hoc
//! checker on the same scenarios — including under `StatsOnly` (where the
//! post-hoc checker has nothing to read) and with sharding requested (an
//! engine with a source or observer runs solo, byte-identically).

use edn_apps::generated::firewall_nes;
use edn_apps::ring::{host, Ring};
use edn_core::{NetworkEventStructure, NetworkTrace, TraceMode};
use edn_topo::{
    attach_stream, fat_tree, ring, synthesize, synthesize_arrivals, ArrivalModel, LinkProfile,
    TierProfile, TrafficPattern, Workload,
};
use nes_runtime::{attach_online_checker, nes_engine_with_path};
use netkat::LookupPath;
use netsim::traffic::{udp_packet, UdpFlowSpec};
use netsim::{PacketPath, QueueKind, SimParams, SimTime, SinkHosts, Stats};
use proptest::prelude::*;

/// How a scenario's flows reach the engine.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Injection {
    /// Eagerly materialized up front (`reserve_events` + `inject_batch`).
    Batch,
    /// Lazily pumped from a [`netsim::WorkloadSource`] during the run.
    Stream,
}

/// One scenario run: inject `flows` the requested way, fire `trigger`
/// mid-run, optionally attach the online checker, and return everything
/// observable. The online verdict is `None` when no checker was attached.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    nes: NetworkEventStructure,
    topo: netsim::SimTopology,
    flows: &[UdpFlowSpec],
    trigger: (SimTime, u64, netkat::Packet),
    horizon: SimTime,
    injection: Injection,
    mode: TraceMode,
    shards: u32,
    online: bool,
) -> (NetworkTrace, Stats, Option<bool>) {
    let engine = nes_engine_with_path(
        nes.clone(),
        topo,
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        LookupPath::Indexed,
    );
    let mut engine = engine
        .with_queue(QueueKind::Calendar)
        .with_trace_mode(mode)
        .with_packet_path(PacketPath::Arena)
        .with_shards(shards);
    let handle = online
        .then(|| attach_online_checker(&mut engine, &nes).expect("NES fits the checker window"));
    match injection {
        Injection::Batch => {
            edn_topo::schedule(&mut engine, flows);
        }
        Injection::Stream => {
            attach_stream(&mut engine, flows);
        }
    }
    let (time, src, pk) = trigger;
    engine.inject_at(time, src, pk);
    engine.run(horizon);
    let result = engine.finish();
    let verdict = handle.map(|h| h.verdict().is_ok());
    (result.trace, result.stats, verdict)
}

/// The §5.2 ring scenario expressed as flow specs: every host sends two
/// waves (20 ms apart) to the diametrically opposite host, and the reroute
/// trigger fires between the waves.
fn ring_scenario() -> (
    NetworkEventStructure,
    netsim::SimTopology,
    Vec<UdpFlowSpec>,
    (SimTime, u64, netkat::Packet),
    SimTime,
) {
    let ring = Ring::new(4);
    let n = ring.switch_count();
    let topo = ring.sim_topology(SimTime::from_micros(50), None);
    let flows = (1..=n)
        .map(|i| {
            let opposite = (i + ring.diameter - 1) % n + 1;
            let start = SimTime::from_millis(1 + i);
            UdpFlowSpec {
                flow: i,
                src: host(i),
                dst: host(opposite),
                start,
                end: start + SimTime::from_millis(40),
                interval: SimTime::from_millis(20),
                size: 512,
            }
        })
        .collect();
    let trigger = (SimTime::from_millis(10), ring.h1(), ring.trigger_packet());
    (ring.nes(), topo, flows, trigger, SimTime::from_secs(5))
}

/// The fat-tree(4) firewall under the fig18 permutation workload, with the
/// firewall-opening trigger mid-run.
fn fat_tree_scenario(
    model: Option<&ArrivalModel>,
) -> (
    NetworkEventStructure,
    netsim::SimTopology,
    Vec<UdpFlowSpec>,
    (SimTime, u64, netkat::Packet),
    SimTime,
) {
    let gen = fat_tree(4, TierProfile::default());
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed: 7,
        packets_per_flow: 4,
        ..Workload::default()
    };
    let flows = match model {
        None => synthesize(&gen, &workload),
        Some(m) => synthesize_arrivals(&gen, &workload, m),
    };
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = firewall_nes(&gen, inside, outside);
    let trigger = (SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    (nes, gen.sim().clone(), flows, trigger, horizon)
}

/// Asserts the streamed run is byte-identical to the batch reference on a
/// scenario, across trace modes and with sharding requested (the streamed
/// engine falls back to the solo loop, which the plumbing suite has already
/// pinned byte-identical to the sharded one).
fn assert_stream_matches_batch(
    scenario: &str,
    mk: impl Fn() -> (
        NetworkEventStructure,
        netsim::SimTopology,
        Vec<UdpFlowSpec>,
        (SimTime, u64, netkat::Packet),
        SimTime,
    ),
) {
    let (nes, topo, flows, trigger, horizon) = mk();
    let run = |injection, mode, shards| {
        run_scenario(
            nes.clone(),
            topo.clone(),
            &flows,
            trigger.clone(),
            horizon,
            injection,
            mode,
            shards,
            false,
        )
    };
    let (ref_trace, ref_stats, _) = run(Injection::Batch, TraceMode::Full, 1);
    assert!(!ref_stats.deliveries.is_empty(), "{scenario}: reference must deliver");
    let (trace, stats, _) = run(Injection::Stream, TraceMode::Full, 1);
    assert_eq!(stats, ref_stats, "{scenario}: streamed stats diverged");
    assert_eq!(trace, ref_trace, "{scenario}: streamed trace diverged");
    let (empty, stats, _) = run(Injection::Stream, TraceMode::StatsOnly, 1);
    assert_eq!(stats, ref_stats, "{scenario}: streamed StatsOnly stats diverged");
    assert!(empty.is_empty(), "{scenario}: StatsOnly must not record");
    let (trace, stats, _) = run(Injection::Stream, TraceMode::Full, 2);
    assert_eq!(stats, ref_stats, "{scenario}: streamed 2-shard stats diverged");
    assert_eq!(trace, ref_trace, "{scenario}: streamed 2-shard trace diverged");
}

#[test]
fn streamed_ring_is_byte_identical_to_batch() {
    assert_stream_matches_batch("ring", ring_scenario);
}

#[test]
fn streamed_fat_tree_firewall_is_byte_identical_to_batch() {
    assert_stream_matches_batch("fat-tree firewall", || fat_tree_scenario(None));
}

#[test]
fn streamed_arrival_models_are_byte_identical_to_batch() {
    for model in [
        ArrivalModel::Pareto { alpha: 1.3, max_packets: 32 },
        ArrivalModel::OnOff { burst_packets: 2, off: SimTime::from_millis(3) },
        ArrivalModel::Diurnal { periods: 2, trough_pct: 20 },
    ] {
        assert_stream_matches_batch("fat-tree arrivals", || fat_tree_scenario(Some(&model)));
    }
}

/// Runs a scenario with the online checker attached and asserts its verdict
/// matches the post-hoc checker's on the recorded trace — then re-runs under
/// `StatsOnly` (no trace to check post-hoc) and with sharding requested, and
/// asserts the online verdict holds steady.
fn assert_online_agrees_with_post_hoc(
    scenario: &str,
    mk: impl Fn() -> (
        NetworkEventStructure,
        netsim::SimTopology,
        Vec<UdpFlowSpec>,
        (SimTime, u64, netkat::Packet),
        SimTime,
    ),
) {
    let (nes, topo, flows, trigger, horizon) = mk();
    let run = |injection, mode, shards| {
        run_scenario(
            nes.clone(),
            topo.clone(),
            &flows,
            trigger.clone(),
            horizon,
            injection,
            mode,
            shards,
            true,
        )
    };
    let (trace, stats, online) = run(Injection::Batch, TraceMode::Full, 1);
    let post_hoc = post_hoc_verdict(&trace, &nes);
    assert_eq!(online, Some(post_hoc), "{scenario}: online vs post-hoc");
    assert!(post_hoc, "{scenario}: the runtime is consistent (Theorem 1)");
    let (_, stats2, online2) = run(Injection::Stream, TraceMode::StatsOnly, 2);
    assert_eq!(stats2, stats, "{scenario}: checked StatsOnly run diverged");
    assert_eq!(online2, Some(post_hoc), "{scenario}: StatsOnly online verdict diverged");
}

/// Post-hoc Definition 6 verdict on a recorded trace.
fn post_hoc_verdict(trace: &NetworkTrace, nes: &NetworkEventStructure) -> bool {
    edn_core::check_correct(trace, nes, None).is_ok()
}

#[test]
fn online_checker_agrees_with_post_hoc_on_the_ring() {
    assert_online_agrees_with_post_hoc("ring", ring_scenario);
}

#[test]
fn online_checker_agrees_with_post_hoc_on_the_fat_tree_firewall() {
    assert_online_agrees_with_post_hoc("fat-tree firewall", || fat_tree_scenario(None));
}

/// One seeded generated-ring firewall run; mirrors the plumbing suite's
/// `seeded_run` but parameterized on the injection path and arrival model.
fn seeded_run(
    n: u64,
    workload: &Workload,
    model: Option<&ArrivalModel>,
    injection: Injection,
    mode: TraceMode,
    online: bool,
) -> (NetworkTrace, Stats, Option<bool>) {
    let gen = ring(n, LinkProfile::default());
    let flows = match model {
        None => synthesize(&gen, workload),
        Some(m) => synthesize_arrivals(&gen, workload, m),
    };
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = firewall_nes(&gen, inside, outside);
    let trigger = (SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    run_scenario(nes, gen.sim().clone(), &flows, trigger, horizon, injection, mode, 1, online)
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    let pattern = prop_oneof![
        Just(TrafficPattern::Uniform),
        Just(TrafficPattern::Permutation),
        Just(TrafficPattern::Hotspot { hotspots: 1, bias_pct: 75 }),
    ];
    (pattern, 0u64..1_000, 1u64..4, 1usize..7).prop_map(|(pattern, seed, packets, flows)| {
        Workload {
            pattern,
            seed,
            flows,
            packets_per_flow: packets,
            interval: SimTime::from_millis(1),
            ..Workload::default()
        }
    })
}

fn arb_model() -> impl Strategy<Value = Option<ArrivalModel>> {
    prop_oneof![
        Just(None),
        (11u64..20, 4u64..32).prop_map(|(a, max)| Some(ArrivalModel::Pareto {
            alpha: a as f64 / 10.0,
            max_packets: max
        })),
        (1u64..4, 1u64..8).prop_map(|(b, off)| Some(ArrivalModel::OnOff {
            burst_packets: b,
            off: SimTime::from_millis(off),
        })),
        (1u32..4, 0u8..60)
            .prop_map(|(p, t)| Some(ArrivalModel::Diurnal { periods: p, trough_pct: t })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential sweep: for seeded topologies, workloads, and arrival
    /// models, the streamed run is byte-identical to the batch run (trace
    /// and stats), and the online verdict matches the post-hoc checker's.
    #[test]
    fn seeded_streams_agree_with_batch_and_checkers_agree(
        n in 3u64..6,
        workload in arb_workload(),
        model in arb_model(),
    ) {
        let (ref_trace, ref_stats, _) =
            seeded_run(n, &workload, model.as_ref(), Injection::Batch, TraceMode::Full, false);
        let (trace, stats, online) =
            seeded_run(n, &workload, model.as_ref(), Injection::Stream, TraceMode::Full, true);
        prop_assert_eq!(&stats, &ref_stats, "streamed stats diverged");
        prop_assert_eq!(&trace, &ref_trace, "streamed trace diverged");
        let nes = {
            let gen = ring(n, LinkProfile::default());
            firewall_nes(&gen, gen.hosts()[0], *gen.hosts().last().expect("hosts"))
        };
        let post_hoc = post_hoc_verdict(&ref_trace, &nes);
        prop_assert_eq!(online, Some(post_hoc), "online vs post-hoc verdict");
    }
}
