//! Differential delta-equivalence suite: the incremental compile path
//! (`Config::diff` → `FlowTable::splice` / `CompiledTable::patch`) against
//! scratch recompilation, at every layer it touches.
//!
//! * **Table layer (proptests, 256 cases each):** random `Config → Config'`
//!   pairs — independent tables plus mutation-shaped edits (rule inserts,
//!   removals, whole-switch adds and drops). Applying the diff to the old
//!   config must reproduce the new one structurally, and a delta-patched
//!   `CompiledTable` must answer every lookup — random packets and packets
//!   derived from both configs' own rule patterns — exactly like a table
//!   compiled from scratch.
//! * **End-to-end:** the §5.2-style flapping ring and the fat-tree(4)
//!   update campaign, replayed across the full
//!   `{scratch, delta} × {optimizer off, on} × {1, 2, 4 shards}` matrix
//!   with every knob pinned through explicit constructors (no env races):
//!   the canonical scenario CSV is byte-identical everywhere, and the
//!   online Definition 6 verdict stays `correct`. (Trace byte-identity for
//!   the same deployments lives in `plumbing_equivalence.rs`.)

use edn_core::Config;
use edn_scenario::{parse, run_coordinated, stats_csv_row, CompiledScenario, RunOptions};
use nes_runtime::{CompilePath, OptimizeMode};
use netkat::{Action, ActionSet, CompiledTable, Field, FlowTable, Match, Packet, Rule};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small universe keeps random packets colliding with random rules often
/// enough to exercise hits, shadows, and misses alike.
const FIELDS: [Field; 4] = [Field::Port, Field::Vlan, Field::IpSrc, Field::IpDst];

fn arb_match() -> impl Strategy<Value = Match> {
    proptest::collection::vec((0usize..FIELDS.len(), 0u64..4), 0..3)
        .prop_map(|fs| fs.into_iter().map(|(i, v)| (FIELDS[i], v)).collect())
}

fn arb_actions() -> impl Strategy<Value = ActionSet> {
    prop_oneof![
        Just(ActionSet::drop()),
        Just(ActionSet::pass()),
        (0usize..FIELDS.len(), 0u64..4)
            .prop_map(|(i, v)| ActionSet::single(Action::assign(FIELDS[i], v))),
    ]
}

fn arb_rules() -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (arb_match(), arb_actions()).prop_map(|(m, a)| Rule::new(m, a)),
        0..12,
    )
}

/// Switch → rule list, the raw material of a [`Config`]. (Collected from
/// keyed pairs: duplicate switch draws collapse, last write wins.)
fn arb_tables() -> impl Strategy<Value = BTreeMap<u64, Vec<Rule>>> {
    proptest::collection::vec((1u64..6, arb_rules()), 0..4).prop_map(|kv| kv.into_iter().collect())
}

/// Edits to turn one table map into a related one: `Some(rules)` replaces
/// (or adds) a switch's table, `None` removes the switch outright.
fn arb_edits() -> impl Strategy<Value = BTreeMap<u64, Option<Vec<Rule>>>> {
    proptest::collection::vec((1u64..6, proptest::option::of(arb_rules())), 0..4)
        .prop_map(|kv| kv.into_iter().collect())
}

fn build_config(tables: &BTreeMap<u64, Vec<Rule>>) -> Config {
    let mut config = Config::new();
    for (&sw, rules) in tables {
        config.install(sw, FlowTable::from_rules(rules.iter().cloned()));
    }
    config
}

/// A `Config → Config'` pair whose second member is the first under a
/// random edit list — the shape real update campaigns produce (most
/// switches untouched, a few respliced, the odd one added or removed).
fn arb_config_pair() -> impl Strategy<Value = (Config, Config)> {
    (arb_tables(), arb_edits()).prop_map(|(old_tables, edits)| {
        let mut new_tables = old_tables.clone();
        for (sw, edit) in edits {
            match edit {
                Some(rules) => {
                    new_tables.insert(sw, rules);
                }
                None => {
                    new_tables.remove(&sw);
                }
            }
        }
        (build_config(&old_tables), build_config(&new_tables))
    })
}

fn arb_packets() -> impl Strategy<Value = Vec<Packet>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..FIELDS.len(), 0u64..4), 0..4)
            .prop_map(|fs| fs.into_iter().map(|(i, v)| (FIELDS[i], v)).collect()),
        8,
    )
}

/// Every probe worth sending at a pair: the random packets plus each
/// config's own rule patterns read back as packets (guaranteed candidate
/// hits, shadowed or not).
fn probes(old: &Config, new: &Config, random: &[Packet]) -> Vec<Packet> {
    let mut probes: Vec<Packet> = random.to_vec();
    for config in [old, new] {
        for sw in config.switches() {
            if let Some(table) = config.table(sw) {
                probes.extend(table.iter().map(|r| r.pattern.iter().collect::<Packet>()));
            }
        }
    }
    probes
}

/// The delta leg of one switch: the old tables spliced/patched forward.
fn patch_forward(old: &Config, new: &Config, sw: u64) -> (FlowTable, CompiledTable) {
    let delta = old.diff(new);
    let mut linear = old.table(sw).cloned().unwrap_or_default();
    let mut compiled = linear.compile();
    if let Some(d) = delta.tables.get(&sw) {
        linear.splice(d);
        compiled.patch(d);
    }
    (linear, compiled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Config::apply_delta(diff)` is exactly "become the new config":
    /// structural equality, not just lookup equality — and the diff of a
    /// config with itself is empty.
    #[test]
    fn config_diff_round_trips(pair in arb_config_pair()) {
        let (old, new) = pair;
        let delta = old.diff(&new);
        let mut patched = old.clone();
        patched.apply_delta(&delta);
        prop_assert_eq!(&patched, &new, "apply_delta(diff) must reproduce the new config");
        prop_assert!(new.diff(&new).is_empty(), "self-diff must be empty");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Per switch, the delta-patched tables — linear *and* compiled — are
    /// indistinguishable from scratch compilation: the spliced linear
    /// table is structurally the new table, and both it and the patched
    /// `CompiledTable` answer every probe exactly like a scratch-compiled
    /// index over the new rules.
    #[test]
    fn patched_tables_answer_like_scratch(
        pair in arb_config_pair(),
        random in arb_packets(),
    ) {
        let (old, new) = pair;
        let probes = probes(&old, &new, &random);
        let mut switches: Vec<u64> = old.switches().chain(new.switches()).collect();
        switches.sort_unstable();
        switches.dedup();
        for sw in switches {
            let scratch_linear = new.table(sw).cloned().unwrap_or_default();
            let scratch_compiled = scratch_linear.compile();
            let (patched_linear, patched_compiled) = patch_forward(&old, &new, sw);
            prop_assert_eq!(&patched_linear, &scratch_linear, "switch {}: splice drifted", sw);
            for pk in &probes {
                let want = scratch_linear.lookup(pk);
                prop_assert_eq!(
                    scratch_compiled.lookup(pk), want,
                    "switch {}: scratch index disagrees with its own table on {:?}", sw, pk
                );
                prop_assert_eq!(
                    patched_linear.lookup(pk), want,
                    "switch {}: spliced table drifted on {:?}", sw, pk
                );
                prop_assert_eq!(
                    patched_compiled.lookup(pk), want,
                    "switch {}: patched index drifted on {:?}", sw, pk
                );
            }
        }
    }
}

/// The §5.2-style churn scenario: a ring whose inter-switch links flap
/// around a three-update rollout.
fn ring_scenario() -> CompiledScenario {
    let spec = parse(
        "[scenario]\n\
         name = \"delta-ring\"\n\
         seed = 13\n\
         topology = \"ring\"\n\
         size = 6\n\
         [workload]\n\
         flows = 8\n\
         packets_per_flow = 3\n\
         spread_ms = 300\n\
         [campaign]\n\
         updates = 3\n\
         [[action]]\n\
         kind = \"fail_link\"\n\
         at_ms = 120\n\
         a = 2\n\
         b = 3\n\
         [[action]]\n\
         kind = \"restore_link\"\n\
         at_ms = 170\n\
         a = 2\n\
         b = 3\n",
    )
    .expect("pinned spec parses");
    CompiledScenario::compile(&spec).expect("pinned spec compiles")
}

/// The fat-tree(4) update campaign with a crash, a latency spike, and a
/// host move — the widest single e2e churn surface in the repo.
fn fat_tree_campaign_scenario() -> CompiledScenario {
    let spec = parse(
        "[scenario]\n\
         name = \"delta-fat-tree\"\n\
         seed = 2016\n\
         topology = \"fat_tree\"\n\
         size = 4\n\
         [workload]\n\
         pattern = \"permutation\"\n\
         packets_per_flow = 3\n\
         spread_ms = 400\n\
         [campaign]\n\
         updates = 3\n\
         [[action]]\n\
         kind = \"crash_switch\"\n\
         at_ms = 180\n\
         switch = 2\n\
         [[action]]\n\
         kind = \"recover_switch\"\n\
         at_ms = 240\n\
         switch = 2\n\
         [[action]]\n\
         kind = \"latency_spike\"\n\
         at_ms = 200\n\
         latency_ms = 15\n\
         until_ms = 280\n\
         [[action]]\n\
         kind = \"move_host\"\n\
         at_ms = 350\n\
         host = 5\n\
         to_switch = 19\n",
    )
    .expect("pinned spec parses");
    CompiledScenario::compile(&spec).expect("pinned spec compiles")
}

/// The end-to-end matrix: every `{compile path} × {optimizer}` pair must
/// reproduce the reference canonical CSV byte for byte — checked and
/// single-threaded, and unchecked across `{1, 2, 4}` shards (the checked
/// leg serializes under its observer, so the shard sweep runs unchecked,
/// whose canonical row is shard-free by construction).
#[test]
fn e2e_matrix_replays_byte_identically() {
    for (name, c) in
        [("ring", ring_scenario()), ("fat-tree(4) campaign", fat_tree_campaign_scenario())]
    {
        let check = RunOptions { check: true, ..RunOptions::default() };
        let checked_ref = run_coordinated(&c, &check);
        assert_eq!(checked_ref.verdict, Some(Ok(())), "{name}: reference verdict");
        assert_eq!(checked_ref.fired, Some(c.steps.len()), "{name}: reference firings");
        let checked_row = stats_csv_row(&checked_ref);
        let unchecked_row = stats_csv_row(&run_coordinated(&c, &RunOptions::default()));
        for compile in [CompilePath::Scratch, CompilePath::Delta] {
            for optimize in [OptimizeMode::Off, OptimizeMode::On] {
                let deploy = RunOptions {
                    compile: Some(compile),
                    optimize: Some(optimize),
                    ..RunOptions::default()
                };
                let leg = run_coordinated(&c, &RunOptions { check: true, ..deploy });
                assert_eq!(
                    stats_csv_row(&leg),
                    checked_row,
                    "{name}: checked CSV diverged on {compile:?}/{optimize:?}"
                );
                for shards in [1u32, 2, 4] {
                    let leg = run_coordinated(&c, &RunOptions { shards: Some(shards), ..deploy });
                    assert_eq!(
                        stats_csv_row(&leg),
                        unchecked_row,
                        "{name}: CSV diverged on {compile:?}/{optimize:?} at {shards} shards"
                    );
                }
            }
        }
    }
}
