//! End-to-end integration: every case study runs the full pipeline
//! (concrete syntax → Stateful NetKAT → ETS → NES → compiled runtime →
//! discrete-event simulation → Definition 6 checker) and the checker
//! catches the uncoordinated baseline misbehaving.

use edn_apps::{authentication, bandwidth_cap, firewall, ids, learning, sim_topology};
use edn_apps::{H1, H2, H3, H4};
use nes_runtime::{
    nes_engine, uncoordinated_engine, verify_nes_run, verify_uncoordinated_run, CompiledNes,
};
use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};

fn ms(t: u64) -> SimTime {
    SimTime::from_millis(t)
}

/// Every application's NES passes the paper's static sanity checks.
#[test]
fn all_apps_build_well_formed_local_neses() {
    let neses = [
        ("firewall", firewall::nes()),
        ("learning", learning::nes()),
        ("authentication", authentication::nes()),
        ("bandwidth-cap", bandwidth_cap::nes(10)),
        ("ids", ids::nes()),
    ];
    for (name, nes) in &neses {
        assert!(nes.is_locally_determined(5), "{name} must be locally determined");
        assert!(nes.structure().verify_axioms(), "{name} satisfies the ES axioms");
        assert!(!nes.event_sets().is_empty(), "{name} has event-sets");
        let compiled = CompiledNes::compile(nes.clone());
        assert!(compiled.rule_breakdown().total() > 0, "{name} installs rules");
    }
}

/// The firewall: full correct run with interleaved bidirectional traffic.
#[test]
fn firewall_end_to_end_interleaved() {
    let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
    let mut engine = nes_engine(
        firewall::nes(),
        topo,
        SimParams::default(),
        true, // with controller broadcast this time
        Box::new(ScenarioHosts::new()),
    );
    let mut pings = Vec::new();
    for i in 0..5 {
        pings.push(Ping { time: ms(50 * i + 7), src: H4, dst: H1, id: i });
    }
    pings.push(Ping { time: ms(400), src: H1, dst: H4, id: 100 });
    for i in 0..5 {
        pings.push(Ping { time: ms(500 + 50 * i), src: H4, dst: H1, id: 200 + i });
    }
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(3));
    let o = ping_outcomes(&pings, &result.stats);
    assert!(o[..5].iter().all(|p| !p.request_delivered), "pre-event probes blocked");
    assert!(o[5].replied.is_some(), "trigger answered");
    assert!(o[6..].iter().all(|p| p.replied.is_some()), "post-event probes answered");
    verify_nes_run(&result).expect("firewall interleaved run is consistent");
}

/// The checker (not just ping accounting) flags the uncoordinated firewall.
#[test]
fn checker_flags_uncoordinated_firewall() {
    let nes = firewall::nes();
    let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
    let mut engine = uncoordinated_engine(
        nes.clone(),
        topo,
        SimParams::default(),
        ms(800),
        99,
        Box::new(ScenarioHosts::new()),
    );
    // The trigger plus an immediate reverse probe: the probe dies against
    // the stale configuration at a switch that has seen the event.
    let pings = vec![
        Ping { time: ms(10), src: H1, dst: H4, id: 1 },
        Ping { time: ms(30), src: H4, dst: H1, id: 2 },
    ];
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(3));
    let verdict = verify_uncoordinated_run(&result, &nes);
    assert!(verdict.is_err(), "Definition 6 violation expected, got {verdict:?}");
}

/// Authentication with controller broadcast enabled stays correct.
#[test]
fn authentication_with_broadcast() {
    let topo = sim_topology(&authentication::spec(), SimTime::from_micros(50), None);
    let mut engine = nes_engine(
        authentication::nes(),
        topo,
        SimParams::default(),
        true,
        Box::new(ScenarioHosts::new()),
    );
    let pings = vec![
        Ping { time: ms(10), src: H4, dst: H1, id: 1 },
        Ping { time: ms(200), src: H4, dst: H2, id: 2 },
        Ping { time: ms(400), src: H4, dst: H3, id: 3 },
    ];
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(3));
    let o = ping_outcomes(&pings, &result.stats);
    assert!(o.iter().all(|p| p.replied.is_some()), "whole knock sequence succeeds");
    verify_nes_run(&result).expect("broadcast-assisted run is consistent");
    // Both events fired in causal order.
    let fired = result.dataplane.fired_sequence();
    assert_eq!(fired.len(), 2);
    assert!(fired[0] < fired[1]);
}

/// Bandwidth cap at several cap values: exact enforcement each time.
#[test]
fn bandwidth_cap_exact_at_various_caps() {
    for n in [1u64, 3, 7] {
        let topo = sim_topology(&bandwidth_cap::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            bandwidth_cap::nes(n),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let pings: Vec<Ping> =
            (0..n + 5).map(|i| Ping { time: ms(100 * i + 10), src: H1, dst: H4, id: i }).collect();
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(10));
        let ok = ping_outcomes(&pings, &result.stats).iter().filter(|o| o.replied.is_some()).count()
            as u64;
        assert_eq!(ok, n, "cap {n} enforced exactly");
        verify_nes_run(&result).unwrap_or_else(|v| panic!("cap {n} run consistent: {v}"));
    }
}

/// The learning switch and IDS both verify end to end under adversarial
/// (tight) timing: probes immediately after triggers.
#[test]
fn tight_timing_stays_consistent() {
    // Learning switch: stream of back-to-back packets around the event.
    let topo = sim_topology(&learning::spec(), SimTime::from_micros(50), None);
    let mut engine = nes_engine(
        learning::nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(ScenarioHosts::new()),
    );
    let pings: Vec<Ping> = (0..20)
        .map(|i| Ping { time: SimTime::from_micros(200 * i + 500), src: H4, dst: H1, id: i })
        .collect();
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(2));
    verify_nes_run(&result).expect("learning switch under tight timing");

    // IDS: scan completes within a millisecond.
    let topo = sim_topology(&ids::spec(), SimTime::from_micros(50), None);
    let mut engine =
        nes_engine(ids::nes(), topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
    let pings = vec![
        Ping { time: SimTime::from_micros(100), src: H4, dst: H1, id: 1 },
        Ping { time: SimTime::from_micros(400), src: H4, dst: H2, id: 2 },
        Ping { time: SimTime::from_micros(700), src: H4, dst: H3, id: 3 },
    ];
    schedule_pings(&mut engine, &pings);
    let result = engine.run_until(SimTime::from_secs(2));
    verify_nes_run(&result).expect("IDS under tight timing");
}
