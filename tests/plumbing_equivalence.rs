//! End-to-end packet-plumbing regression, extending
//! `lookup_equivalence.rs` to the engine knobs this repo's arena/queue
//! rework introduced — and to the sharded multi-core event loop: full
//! simulations replayed across every
//! `{shard count} × {event queue} × {trace mode} × {packet path}`
//! combination must agree — byte-identical `Stats` everywhere,
//! byte-identical traces wherever a trace is recorded.
//!
//! Two pinned scenarios from the paper's evaluation (the Section 5.2 ring
//! and a fat-tree(4) stateful firewall), two pinned *churn* scenarios from
//! the declarative scenario layer (a flapping ring and a fat-tree(4)
//! update campaign with a crash, a latency spike, and a host move), plus
//! differential proptests over seeded generated topologies and workloads
//! (256 cases across the queue/packet knobs, 128 more across shard
//! counts).

use edn_apps::generated::firewall_nes;
use edn_apps::ring::{host, Ring};
use edn_core::{NetworkTrace, TraceMode};
use edn_obs::Scope;
use edn_scenario::CompiledScenario;
use edn_topo::{fat_tree, ring, synthesize, LinkProfile, TierProfile, TrafficPattern, Workload};
use nes_runtime::{
    nes_engine_with, verify_nes_run, CompilePath, DeployKnobs, NesDataPlane, OptimizeMode,
};
use netkat::LookupPath;
use netsim::traffic::udp_packet;
use netsim::{
    ChannelModel, Engine, MetricsLevel, PacketPath, QueueKind, SimParams, SimTime, SinkHosts, Stats,
};
use proptest::prelude::*;

/// One engine-knob combination under test.
#[derive(Clone, Copy, Debug)]
struct Knobs {
    queue: QueueKind,
    mode: TraceMode,
    path: PacketPath,
    shards: u32,
    metrics: MetricsLevel,
    deploy: DeployKnobs,
}

/// The reference deployment: indexed lookups over scratch-compiled guarded
/// tables, optimizer off.
const REFERENCE_DEPLOY: DeployKnobs = DeployKnobs {
    path: LookupPath::Indexed,
    compile: CompilePath::Scratch,
    optimize: OptimizeMode::Off,
};

/// The reference corner: one thread, binary heap, full trace, owned
/// packets, no telemetry — the pre-rework engine, kept runnable exactly
/// so everything new can be diffed against it.
const REFERENCE: Knobs = Knobs {
    queue: QueueKind::Heap,
    mode: TraceMode::Full,
    path: PacketPath::Owned,
    shards: 1,
    metrics: MetricsLevel::Off,
    deploy: REFERENCE_DEPLOY,
};

/// Widens a requested shard count by the `EDN_SHARDS` environment knob,
/// so CI can replay the whole matrix on the sharded engine (the solo
/// [`REFERENCE`] corner stays pinned at one shard).
fn effective_shards(requested: u32) -> u32 {
    requested.max(netsim::shard_count_from_env())
}

fn knobs_with_shards(shards: u32) -> impl Iterator<Item = Knobs> {
    let shards = effective_shards(shards);
    [QueueKind::Heap, QueueKind::Calendar].into_iter().flat_map(move |queue| {
        [TraceMode::Full, TraceMode::StatsOnly].into_iter().flat_map(move |mode| {
            [PacketPath::Owned, PacketPath::Arena].into_iter().map(move |path| Knobs {
                queue,
                mode,
                path,
                shards,
                metrics: MetricsLevel::Off,
                deploy: REFERENCE_DEPLOY,
            })
        })
    })
}

fn configure(engine: Engine<NesDataPlane>, knobs: Knobs) -> Engine<NesDataPlane> {
    engine
        .with_queue(knobs.queue)
        .with_trace_mode(knobs.mode)
        .with_packet_path(knobs.path)
        .with_metrics(knobs.metrics)
        .with_shards(knobs.shards)
}

/// Asserts that a scenario produces identical observable results on every
/// knob combination and every shard count in `shard_counts`: `Stats`
/// agree field for field everywhere (including `StatsOnly` runs), and
/// `Full`-mode traces are byte-identical. The scenario runners assert
/// that multi-shard runs actually engaged the threaded path (a silent
/// fallback would make these comparisons vacuous).
fn assert_plumbing_invariant(
    scenario: &str,
    shard_counts: &[u32],
    run: impl Fn(Knobs) -> (NetworkTrace, Stats),
) {
    let (reference_trace, reference_stats) = run(REFERENCE);
    assert!(!reference_stats.deliveries.is_empty(), "{scenario}: reference must deliver");
    for &shards in shard_counts {
        for knobs in knobs_with_shards(shards) {
            let (trace, stats) = run(knobs);
            assert_eq!(stats, reference_stats, "{scenario}: stats diverged on {knobs:?}");
            match knobs.mode {
                TraceMode::Full => {
                    assert_eq!(trace, reference_trace, "{scenario}: traces diverged on {knobs:?}");
                }
                TraceMode::StatsOnly => {
                    assert!(trace.is_empty(), "{scenario}: StatsOnly must not record");
                }
            }
        }
    }
}

/// The Section 5.2 ring: every host sends to the diametrically opposite
/// host in two waves, with the reroute trigger firing between them.
fn ring_run(knobs: Knobs) -> (NetworkTrace, Stats) {
    let ring = Ring::new(4);
    let n = ring.switch_count();
    let topo = ring.sim_topology(SimTime::from_micros(50), None);
    let engine = nes_engine_with(
        ring.nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        knobs.deploy,
    );
    let mut engine = configure(engine, knobs);
    for i in 1..=n {
        let opposite = (i + ring.diameter - 1) % n + 1;
        for wave in 0..2u64 {
            engine.inject_at(
                SimTime::from_millis(1 + 20 * wave + i),
                host(i),
                udp_packet(host(i), host(opposite), i, wave),
            );
        }
    }
    engine.inject_at(SimTime::from_millis(10), ring.h1(), ring.trigger_packet());
    engine.run(SimTime::from_secs(5));
    assert_shards_engaged(&engine, knobs, n as u32);
    let result = engine.finish();
    if knobs.mode == TraceMode::Full {
        verify_nes_run(&result).expect("ring run is event-driven consistent");
    }
    (result.trace, result.stats)
}

/// Fat-tree(4) firewall under the fig18 permutation workload, with the
/// firewall-opening trigger mid-run.
fn fat_tree_firewall_run(knobs: Knobs) -> (NetworkTrace, Stats) {
    let gen = fat_tree(4, TierProfile::default());
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed: 7,
        packets_per_flow: 4,
        ..Workload::default()
    };
    let flows = synthesize(&gen, &workload);
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = firewall_nes(&gen, inside, outside);
    let engine = nes_engine_with(
        nes,
        gen.sim().clone(),
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        knobs.deploy,
    );
    let mut engine = configure(engine, knobs);
    edn_topo::schedule(&mut engine, &flows);
    engine.inject_at(SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    engine.run(horizon);
    assert_shards_engaged(&engine, knobs, gen.switch_count() as u32);
    let result = engine.finish();
    (result.trace, result.stats)
}

/// A ring(6) whose inter-switch links flap mid-campaign: two fail/restore
/// pairs around a two-update rollout under uniform traffic — the engine's
/// failure timelines crossing shard cuts and every knob combination.
fn flapping_ring_scenario() -> CompiledScenario {
    let spec = edn_scenario::parse(
        "[scenario]\n\
         name = \"flapping-ring\"\n\
         seed = 13\n\
         topology = \"ring\"\n\
         size = 6\n\
         [workload]\n\
         flows = 8\n\
         packets_per_flow = 3\n\
         spread_ms = 300\n\
         [campaign]\n\
         updates = 2\n\
         [[action]]\n\
         kind = \"fail_link\"\n\
         at_ms = 120\n\
         a = 2\n\
         b = 3\n\
         [[action]]\n\
         kind = \"restore_link\"\n\
         at_ms = 170\n\
         a = 2\n\
         b = 3\n\
         [[action]]\n\
         kind = \"fail_link\"\n\
         at_ms = 210\n\
         a = 5\n\
         b = 6\n\
         [[action]]\n\
         kind = \"restore_link\"\n\
         at_ms = 260\n\
         a = 5\n\
         b = 6\n",
    )
    .expect("pinned spec parses");
    CompiledScenario::compile(&spec).expect("pinned spec compiles")
}

/// A fat-tree(4) update campaign with the full churn menu: three updates
/// plus a host move, an edge-agg link flap, a core-switch crash/recover,
/// and a controller latency spike, under permutation traffic.
fn fat_tree_campaign_scenario() -> CompiledScenario {
    let spec = edn_scenario::parse(
        "[scenario]\n\
         name = \"fat-tree-campaign\"\n\
         seed = 2016\n\
         topology = \"fat_tree\"\n\
         size = 4\n\
         [workload]\n\
         pattern = \"permutation\"\n\
         packets_per_flow = 3\n\
         spread_ms = 400\n\
         [campaign]\n\
         updates = 3\n\
         [[action]]\n\
         kind = \"fail_link\"\n\
         at_ms = 150\n\
         a = 11\n\
         b = 9\n\
         [[action]]\n\
         kind = \"restore_link\"\n\
         at_ms = 220\n\
         a = 11\n\
         b = 9\n\
         [[action]]\n\
         kind = \"crash_switch\"\n\
         at_ms = 180\n\
         switch = 2\n\
         [[action]]\n\
         kind = \"recover_switch\"\n\
         at_ms = 240\n\
         switch = 2\n\
         [[action]]\n\
         kind = \"latency_spike\"\n\
         at_ms = 200\n\
         latency_ms = 15\n\
         until_ms = 280\n\
         [[action]]\n\
         kind = \"move_host\"\n\
         at_ms = 350\n\
         host = 5\n\
         to_switch = 19\n",
    )
    .expect("pinned spec parses");
    CompiledScenario::compile(&spec).expect("pinned spec compiles")
}

/// Replays a compiled churn scenario on explicit engine knobs.
fn churn_run(c: &CompiledScenario, knobs: Knobs) -> (NetworkTrace, Stats) {
    let engine = nes_engine_with(
        c.nes.clone(),
        c.run.sim().clone(),
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        knobs.deploy,
    );
    let mut engine = configure(engine, knobs);
    c.apply_actions(&mut engine);
    c.load_traffic(&mut engine, false);
    c.inject_campaign(&mut engine);
    engine.run(c.horizon);
    assert_shards_engaged(&engine, knobs, c.run.switch_count() as u32);
    let result = engine.finish();
    if knobs.mode == TraceMode::Full {
        assert_eq!(
            result.dataplane.fired_sequence().len(),
            c.steps.len(),
            "every campaign step fires"
        );
        verify_nes_run(&result).expect("churn runs stay event-driven consistent");
    }
    (result.trace, result.stats)
}

/// A "sharded" run that silently fell back to one thread would turn the
/// byte-identity matrix into solo-vs-solo; pin engagement (clamped to
/// the switch count, the partitioner's bound).
fn assert_shards_engaged(engine: &netsim::Engine<NesDataPlane>, knobs: Knobs, switches: u32) {
    let expected = knobs.shards.min(switches).max(1);
    assert_eq!(engine.shards(), expected, "sharding did not engage for {knobs:?}");
}

#[test]
fn ring_replays_identically_across_all_engine_knobs() {
    assert_plumbing_invariant("ring", &[1], ring_run);
}

#[test]
fn fat_tree_firewall_replays_identically_across_all_engine_knobs() {
    assert_plumbing_invariant("fat-tree firewall", &[1], fat_tree_firewall_run);
}

/// The sharded event loop is byte-identical to the single-threaded
/// engine on the §5.2 ring, across the full
/// `{2,4 shards} × {queue} × {trace} × {packet path}` matrix — including
/// the NES correctness verification of the merged trace.
#[test]
fn ring_replays_identically_across_shard_counts() {
    assert_plumbing_invariant("sharded ring", &[2, 4], ring_run);
}

/// Same matrix on the fat-tree(4) firewall: controller traffic, a mid-run
/// configuration update, and permutation flows all crossing shard cuts.
#[test]
fn fat_tree_firewall_replays_identically_across_shard_counts() {
    assert_plumbing_invariant("sharded fat-tree firewall", &[2, 4], fat_tree_firewall_run);
}

#[test]
fn churn_scenarios_replay_identically_across_all_engine_knobs() {
    let ring = flapping_ring_scenario();
    assert_plumbing_invariant("flapping ring", &[1], |k| churn_run(&ring, k));
    let campaign = fat_tree_campaign_scenario();
    assert_plumbing_invariant("fat-tree campaign", &[1], |k| churn_run(&campaign, k));
}

/// The churn matrix again, sharded: link-failure timelines, switch
/// crashes, latency spikes, and mobility steps must all replay
/// byte-identically on the multi-core event loop.
#[test]
fn churn_scenarios_replay_identically_across_shard_counts() {
    let ring = flapping_ring_scenario();
    assert_plumbing_invariant("sharded flapping ring", &[2, 4], |k| churn_run(&ring, k));
    let campaign = fat_tree_campaign_scenario();
    assert_plumbing_invariant("sharded fat-tree campaign", &[2, 4], |k| churn_run(&campaign, k));
}

/// The *uncoordinated* baseline plane replays byte-identically across the
/// engine knob matrix and shard counts too: its slow controller pushes are
/// scheduled control messages like any other, so sharding the event loop
/// under it must not change a byte of the stats or the trace. (The
/// baseline being deterministic is what makes its checker violations in
/// `scenario_corpus.rs` reproducible counterexamples rather than flakes.)
#[test]
fn uncoordinated_baseline_replays_identically_across_shard_counts() {
    let scenarios = [
        ("flapping ring", flapping_ring_scenario()),
        ("fat-tree campaign", fat_tree_campaign_scenario()),
    ];
    for (name, c) in &scenarios {
        let run = |queue: QueueKind, path: PacketPath, shards: u32| {
            let mut engine = c
                .uncoordinated()
                .with_queue(queue)
                .with_trace_mode(TraceMode::Full)
                .with_packet_path(path)
                .with_shards(shards);
            c.apply_actions(&mut engine);
            c.load_traffic(&mut engine, false);
            c.inject_campaign(&mut engine);
            engine.run(c.horizon);
            let expected = shards.min(c.run.switch_count() as u32).max(1);
            assert_eq!(engine.shards(), expected, "{name}: sharding did not engage");
            let result = engine.finish();
            (result.trace, result.stats)
        };
        let (reference_trace, reference_stats) = run(QueueKind::Heap, PacketPath::Owned, 1);
        assert!(!reference_stats.deliveries.is_empty(), "{name}: baseline must deliver");
        for queue in [QueueKind::Heap, QueueKind::Calendar] {
            for path in [PacketPath::Owned, PacketPath::Arena] {
                for shards in [1u32, 2, 4] {
                    let (trace, stats) = run(queue, path, effective_shards(shards));
                    assert_eq!(
                        stats, reference_stats,
                        "{name}: uncoordinated stats diverged on {queue:?}/{path:?}/{shards}"
                    );
                    assert_eq!(
                        trace, reference_trace,
                        "{name}: uncoordinated trace diverged on {queue:?}/{path:?}/{shards}"
                    );
                }
            }
        }
    }
}

/// The ack/retry reliability layer over a *lossy* control channel keeps
/// the sharded event loop byte-identical: channel fates advance on the
/// shard that owns the endpoint, never on the worker schedule, so drops,
/// duplicates, reordering, retransmissions — and therefore the full trace
/// — replay exactly across 1, 2, and 4 shards.
#[test]
fn reliable_lossy_runs_replay_identically_across_shard_counts() {
    let c = flapping_ring_scenario();
    let run = |shards: u32| {
        let mut engine = c
            .reliable_engine_with(REFERENCE_DEPLOY, 8)
            .with_channel(ChannelModel::lossy(13))
            .with_trace_mode(TraceMode::Full)
            .with_shards(shards);
        c.apply_actions(&mut engine);
        c.load_traffic(&mut engine, false);
        c.inject_campaign(&mut engine);
        engine.run(c.horizon);
        let expected = shards.min(c.run.switch_count() as u32).max(1);
        assert_eq!(engine.shards(), expected, "sharding did not engage");
        let result = engine.finish();
        assert!(!result.dataplane.degraded(), "a generous budget never exhausts");
        assert_eq!(
            result.dataplane.inner().fired_sequence().len(),
            c.steps.len(),
            "every campaign step fires under loss"
        );
        (result.trace, result.stats)
    };
    let (reference_trace, reference_stats) = run(1);
    assert!(!reference_stats.deliveries.is_empty(), "lossy reference must deliver");
    for shards in [2u32, 4] {
        let (trace, stats) = run(effective_shards(shards));
        assert_eq!(stats, reference_stats, "{shards} shards: lossy stats diverged");
        assert_eq!(trace, reference_trace, "{shards} shards: lossy trace diverged");
    }
}

/// Every non-reference deployment shape — delta-patched per-tag tables,
/// the trie-compressed optimizer (over both compile paths), and the
/// linear-scan lookup under each — replays the §5.2 ring and the fat-tree
/// churn campaign byte-identically to the scratch/guarded reference, solo
/// and sharded. The table *construction* and *layout* may change; the
/// observable run may not.
#[test]
fn deployment_layouts_do_not_perturb_results() {
    fn assert_deploy_invariant(scenario: &str, run: impl Fn(Knobs) -> (NetworkTrace, Stats)) {
        let deploys = [
            (CompilePath::Delta, OptimizeMode::Off),
            (CompilePath::Scratch, OptimizeMode::On),
            (CompilePath::Delta, OptimizeMode::On),
        ];
        let (reference_trace, reference_stats) = run(REFERENCE);
        for (compile, optimize) in deploys {
            for lookup in [LookupPath::Indexed, LookupPath::Linear] {
                for shards in [1, 4] {
                    let knobs = Knobs {
                        queue: QueueKind::Calendar,
                        mode: TraceMode::Full,
                        path: PacketPath::Arena,
                        shards: effective_shards(shards),
                        metrics: MetricsLevel::Off,
                        deploy: DeployKnobs { path: lookup, compile, optimize },
                    };
                    let (trace, stats) = run(knobs);
                    assert_eq!(stats, reference_stats, "{scenario}: stats diverged on {knobs:?}");
                    assert_eq!(trace, reference_trace, "{scenario}: trace diverged on {knobs:?}");
                }
            }
        }
    }
    assert_deploy_invariant("ring", ring_run);
    let campaign = fat_tree_campaign_scenario();
    assert_deploy_invariant("fat-tree campaign", |k| churn_run(&campaign, k));
}

/// Telemetry must never perturb simulation results: the ring scenario
/// replayed at `counters` and `full` (solo and sharded) stays
/// byte-identical to the metrics-off reference — `Stats`, traces, and the
/// NES verification all unchanged.
#[test]
fn metrics_levels_do_not_perturb_results() {
    let (reference_trace, reference_stats) = ring_run(REFERENCE);
    for metrics in [MetricsLevel::Counters, MetricsLevel::Full] {
        for shards in [1, 2, 4] {
            let knobs = Knobs {
                queue: QueueKind::Calendar,
                mode: TraceMode::Full,
                path: PacketPath::Arena,
                shards: effective_shards(shards),
                metrics,
                deploy: REFERENCE_DEPLOY,
            };
            let (trace, stats) = ring_run(knobs);
            assert_eq!(stats, reference_stats, "stats diverged on {knobs:?}");
            assert_eq!(trace, reference_trace, "trace diverged on {knobs:?}");
        }
    }
}

/// The fat-tree firewall scenario's **sim-scoped** metric section is
/// byte-identical across shard counts — the registry analogue of the
/// trace/stats byte-identity contract (shard- and wall-scoped sections
/// are exempt by design).
#[test]
fn sim_scoped_metrics_are_byte_identical_across_shard_counts() {
    let sim_section = |shards: u32| {
        let gen = fat_tree(4, TierProfile::default());
        let workload = Workload {
            pattern: TrafficPattern::Permutation,
            seed: 7,
            packets_per_flow: 4,
            ..Workload::default()
        };
        let flows = synthesize(&gen, &workload);
        let horizon =
            flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
        let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
        let nes = firewall_nes(&gen, inside, outside);
        let mut engine = nes_engine_with(
            nes,
            gen.sim().clone(),
            SimParams::default(),
            false,
            Box::new(SinkHosts),
            REFERENCE_DEPLOY,
        )
        .with_metrics(MetricsLevel::Counters)
        .with_shards(shards);
        edn_topo::schedule(&mut engine, &flows);
        engine.inject_at(SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
        engine.run(horizon);
        assert_eq!(engine.shards(), shards, "sharding did not engage");
        engine.finish().metrics.render_scope_json(Scope::Sim)
    };
    let solo = sim_section(1);
    assert!(solo.contains("engine.event_latency_us"), "sim section must be populated");
    assert!(solo.contains("drops.no_rule"), "per-reason drops must be present");
    for shards in [2, 4] {
        assert_eq!(sim_section(shards), solo, "sim metrics diverged on {shards} shards");
    }
}

/// One seeded generated-ring firewall run on explicit knobs — the
/// proptest's unit of comparison.
fn seeded_run(n: u64, workload: &Workload, knobs: Knobs) -> (NetworkTrace, Stats) {
    let gen = ring(n, LinkProfile::default());
    let flows = synthesize(&gen, workload);
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = firewall_nes(&gen, inside, outside);
    let engine = nes_engine_with(
        nes,
        gen.sim().clone(),
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        knobs.deploy,
    );
    let mut engine = configure(engine, knobs);
    edn_topo::schedule(&mut engine, &flows);
    // The trigger opens the firewall mid-run so the sweep crosses a real
    // configuration update.
    engine.inject_at(SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    engine.run(horizon);
    assert_shards_engaged(&engine, knobs, n as u32);
    let result = engine.finish();
    (result.trace, result.stats)
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    let pattern = prop_oneof![
        Just(TrafficPattern::Uniform),
        Just(TrafficPattern::Permutation),
        Just(TrafficPattern::Hotspot { hotspots: 1, bias_pct: 75 }),
    ];
    (pattern, 0u64..1_000, 1u64..4, 1usize..9).prop_map(|(pattern, seed, packets, flows)| {
        Workload {
            pattern,
            seed,
            flows,
            packets_per_flow: packets,
            interval: SimTime::from_millis(1),
            ..Workload::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential equivalence over seeded topologies and workloads:
    /// calendar ≡ heap (including timestamp-tied pops) and arena ≡ owned
    /// packets, observed through complete simulations — byte-identical
    /// `Stats` and traces, with `StatsOnly` agreeing on every `Stats`
    /// field.
    #[test]
    fn seeded_topologies_agree_across_queue_and_packet_paths(
        n in 3u64..7,
        workload in arb_workload(),
    ) {
        let (reference_trace, reference_stats) = seeded_run(n, &workload, REFERENCE);
        let calendar_arena = Knobs {
            queue: QueueKind::Calendar,
            mode: TraceMode::Full,
            path: PacketPath::Arena,
            shards: effective_shards(1),
            metrics: MetricsLevel::Off,
            deploy: REFERENCE_DEPLOY,
        };
        let (trace, stats) = seeded_run(n, &workload, calendar_arena);
        prop_assert_eq!(&stats, &reference_stats, "calendar+arena stats diverged");
        prop_assert_eq!(&trace, &reference_trace, "calendar+arena trace diverged");
        let stats_only = Knobs { mode: TraceMode::StatsOnly, ..calendar_arena };
        let (empty, stats) = seeded_run(n, &workload, stats_only);
        prop_assert_eq!(&stats, &reference_stats, "StatsOnly stats diverged");
        prop_assert!(empty.is_empty(), "StatsOnly must not record a trace");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Differential equivalence of the sharded event loop over seeded
    /// topologies and workloads: a K-shard run (K drawn from 2..=4, on
    /// the default calendar+arena engine) must produce byte-identical
    /// `Stats` and traces to the single-threaded reference, with
    /// `StatsOnly` agreeing on every `Stats` field. Requesting more
    /// shards than switches exercises the clamp.
    #[test]
    fn seeded_topologies_agree_across_shard_counts(
        n in 3u64..7,
        workload in arb_workload(),
        shards in 2u32..5,
    ) {
        let (reference_trace, reference_stats) = seeded_run(n, &workload, REFERENCE);
        let sharded = Knobs {
            queue: QueueKind::Calendar,
            mode: TraceMode::Full,
            path: PacketPath::Arena,
            shards,
            metrics: MetricsLevel::Off,
            deploy: REFERENCE_DEPLOY,
        };
        let (trace, stats) = seeded_run(n, &workload, sharded);
        prop_assert_eq!(&stats, &reference_stats, "{} shards: stats diverged", shards);
        prop_assert_eq!(&trace, &reference_trace, "{} shards: trace diverged", shards);
        let stats_only = Knobs { mode: TraceMode::StatsOnly, ..sharded };
        let (empty, stats) = seeded_run(n, &workload, stats_only);
        prop_assert_eq!(&stats, &reference_stats, "{} shards StatsOnly diverged", shards);
        prop_assert!(empty.is_empty(), "StatsOnly must not record a trace");
    }
}
