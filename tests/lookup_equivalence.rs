//! End-to-end lookup-engine regression: full simulations on the linear
//! reference path and the compiled indexed path must be **byte-identical**
//! — same `Stats` (deliveries, drops, counters) and the same recorded
//! network trace — with equal seeds.
//!
//! Two scenarios from the paper's evaluation:
//! * the Section 5.2 scalability ring, with the mid-run reroute trigger;
//! * a fat-tree(k=4) hosting the generalized stateful firewall under a
//!   seeded permutation workload, with the firewall's opening event fired
//!   mid-run.

use edn_apps::generated::firewall_nes;
use edn_apps::ring::{host, Ring};
use edn_core::NetworkTrace;
use edn_topo::{fat_tree, synthesize, TierProfile, TrafficPattern, Workload};
use nes_runtime::{nes_engine_with_path, verify_nes_run, StaticDataPlane};
use netkat::LookupPath;
use netsim::traffic::udp_packet;
use netsim::{Engine, SimParams, SimTime, SinkHosts, Stats};

const PATHS: [LookupPath; 2] = [LookupPath::Linear, LookupPath::Indexed];

/// The Section 5.2 ring: every host sends to the diametrically opposite
/// host, the reroute trigger fires mid-stream, then a second wave runs
/// under the flipped configuration.
fn ring_run(path: LookupPath) -> (NetworkTrace, Stats) {
    let ring = Ring::new(4);
    let n = ring.switch_count();
    let topo = ring.sim_topology(SimTime::from_micros(50), None);
    let mut engine = nes_engine_with_path(
        ring.nes(),
        topo,
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        path,
    );
    for i in 1..=n {
        let opposite = (i + ring.diameter - 1) % n + 1;
        for wave in 0..2u64 {
            engine.inject_at(
                SimTime::from_millis(1 + 20 * wave + i),
                host(i),
                udp_packet(host(i), host(opposite), i, wave),
            );
        }
    }
    engine.inject_at(SimTime::from_millis(10), ring.h1(), ring.trigger_packet());
    let result = engine.run_until(SimTime::from_secs(5));
    assert!(!result.stats.deliveries.is_empty(), "ring must deliver traffic");
    verify_nes_run(&result).expect("ring run is event-driven consistent");
    (result.trace, result.stats)
}

/// Fat-tree(k=4) firewall under the fig18 permutation workload, with the
/// firewall-opening trigger mid-run.
fn fat_tree_firewall_run(path: LookupPath) -> (NetworkTrace, Stats) {
    let gen = fat_tree(4, TierProfile::default());
    let workload = Workload {
        pattern: TrafficPattern::Permutation,
        seed: 7,
        packets_per_flow: 4,
        ..Workload::default()
    };
    let flows = synthesize(&gen, &workload);
    let horizon =
        flows.iter().map(|f| f.end).max().unwrap_or(SimTime::ZERO) + SimTime::from_secs(10);
    let (inside, outside) = (gen.hosts()[0], *gen.hosts().last().expect("hosts"));
    let nes = firewall_nes(&gen, inside, outside);
    let mut engine = nes_engine_with_path(
        nes,
        gen.sim().clone(),
        SimParams::default(),
        false,
        Box::new(SinkHosts),
        path,
    );
    edn_topo::schedule(&mut engine, &flows);
    engine.inject_at(SimTime::from_millis(5), inside, udp_packet(inside, outside, u64::MAX, 0));
    let result = engine.run_until(horizon);
    assert!(!result.stats.deliveries.is_empty(), "fat-tree must deliver traffic");
    (result.trace, result.stats)
}

/// The ring's static shortest-path reference plane (no events), both paths.
fn ring_static_run(path: LookupPath) -> (NetworkTrace, Stats) {
    let ring = Ring::new(4);
    let n = ring.switch_count();
    let topo = ring.sim_topology(SimTime::from_micros(50), None);
    let dataplane = StaticDataPlane::with_path(ring.config(true), path);
    let mut engine = Engine::new(topo, SimParams::default(), dataplane, Box::new(SinkHosts));
    for i in 1..=n {
        let opposite = (i + ring.diameter - 1) % n + 1;
        engine.inject_at(
            SimTime::from_millis(i),
            host(i),
            udp_packet(host(i), host(opposite), i, 0),
        );
    }
    let result = engine.run_until(SimTime::from_secs(5));
    assert!(!result.stats.deliveries.is_empty());
    (result.trace, result.stats)
}

#[test]
fn ring_runs_identically_on_both_lookup_paths() {
    let [a, b] = PATHS.map(ring_run);
    assert_eq!(a.1, b.1, "ring stats diverged between lookup paths");
    assert_eq!(a.0, b.0, "ring traces diverged between lookup paths");
}

#[test]
fn fat_tree_firewall_runs_identically_on_both_lookup_paths() {
    let [a, b] = PATHS.map(fat_tree_firewall_run);
    assert_eq!(a.1, b.1, "fat-tree stats diverged between lookup paths");
    assert_eq!(a.0, b.0, "fat-tree traces diverged between lookup paths");
}

#[test]
fn static_plane_runs_identically_on_both_lookup_paths() {
    let [a, b] = PATHS.map(ring_static_run);
    assert_eq!(a.1, b.1, "static stats diverged between lookup paths");
    assert_eq!(a.0, b.0, "static traces diverged between lookup paths");
}
