//! Property-based integration tests: the paper's Theorem 1 says *every*
//! execution of the NES runtime yields a correct trace. We fuzz timings,
//! traffic mixes, seeds, and topologies and demand the checker never
//! complains.

use edn_apps::ring::Ring;
use edn_apps::{authentication, bandwidth_cap, firewall, ids, learning, sim_topology};
use edn_apps::{H1, H2, H3, H4};
use nes_runtime::{nes_engine, verify_nes_run};
use netsim::traffic::{schedule_pings, Ping, ScenarioHosts};
use netsim::{SimParams, SimTime};
use proptest::prelude::*;

/// A random ping among the given hosts (each application's topology only
/// attaches a subset of H1..H4).
fn arb_ping(max_ms: u64, hosts: &'static [u64]) -> impl Strategy<Value = Ping> {
    (0..max_ms, 0..hosts.len(), 0..hosts.len()).prop_filter_map(
        "src and dst must differ",
        |(t, si, di)| {
            let (src, dst) = (hosts[si], hosts[di]);
            (src != dst).then_some(Ping { time: SimTime::from_millis(t), src, dst, id: t })
        },
    )
}

fn dedup_ids(mut pings: Vec<Ping>) -> Vec<Ping> {
    for (i, p) in pings.iter_mut().enumerate() {
        p.id = i as u64;
    }
    pings
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 for the firewall: arbitrary traffic, arbitrary broadcast
    /// setting, always consistent.
    #[test]
    fn firewall_always_consistent(
        pings in proptest::collection::vec(arb_ping(2_000, &[H1, H4]), 1..14),
        broadcast in any::<bool>(),
    ) {
        let pings = dedup_ids(pings);
        let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            firewall::nes(),
            topo,
            SimParams::default(),
            broadcast,
            Box::new(ScenarioHosts::new()),
        );
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        prop_assert!(verify_nes_run(&result).is_ok());
    }

    /// Theorem 1 for the authentication chain (two causally ordered
    /// events).
    #[test]
    fn authentication_always_consistent(
        pings in proptest::collection::vec(arb_ping(2_000, &[H1, H2, H3, H4]), 1..12),
    ) {
        let pings = dedup_ids(pings);
        let topo = sim_topology(&authentication::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            authentication::nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        prop_assert!(verify_nes_run(&result).is_ok());
    }

    /// Theorem 1 for the IDS.
    #[test]
    fn ids_always_consistent(
        pings in proptest::collection::vec(arb_ping(1_500, &[H1, H2, H3, H4]), 1..12),
    ) {
        let pings = dedup_ids(pings);
        let topo = sim_topology(&ids::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            ids::nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        prop_assert!(verify_nes_run(&result).is_ok());
    }

    /// Theorem 1 for the learning switch under bursty traffic.
    #[test]
    fn learning_switch_always_consistent(
        pings in proptest::collection::vec(arb_ping(500, &[H1, H2, H4]), 1..16),
    ) {
        let pings = dedup_ids(pings);
        let topo = sim_topology(&learning::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            learning::nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        prop_assert!(verify_nes_run(&result).is_ok());
    }

    /// Theorem 1 for the renamed-event chain (bandwidth cap) at random
    /// small caps.
    #[test]
    fn bandwidth_cap_always_consistent(
        cap in 1u64..5,
        pings in proptest::collection::vec(arb_ping(1_000, &[H1, H4]), 1..10),
    ) {
        let pings = dedup_ids(pings);
        let topo = sim_topology(&bandwidth_cap::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            bandwidth_cap::nes(cap),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(5));
        prop_assert!(verify_nes_run(&result).is_ok());
    }

    /// Theorem 1 on the ring with a mid-stream direction flip and random
    /// host-to-host traffic.
    #[test]
    fn ring_reroute_always_consistent(
        diameter in 1u64..4,
        trigger_ms in 1u64..1_000,
        raw in proptest::collection::vec((0u64..2_000, 1u64..8, 1u64..8), 0..10),
    ) {
        let ring = Ring::new(diameter);
        let n = ring.switch_count();
        let pings: Vec<Ping> = raw
            .into_iter()
            .enumerate()
            .filter_map(|(i, (t, a, b))| {
                let (src, dst) = (a % n + 1, b % n + 1);
                (src != dst).then_some(Ping {
                    time: SimTime::from_millis(t),
                    src: edn_apps::ring::host(src),
                    dst: edn_apps::ring::host(dst),
                    id: i as u64,
                })
            })
            .collect();
        let topo = ring.sim_topology(SimTime::from_micros(100), None);
        let mut engine = nes_engine(
            ring.nes(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        schedule_pings(&mut engine, &pings);
        engine.inject_at(SimTime::from_millis(trigger_ms), ring.h1(), ring.trigger_packet());
        let result = engine.run_until(SimTime::from_secs(5));
        prop_assert!(verify_nes_run(&result).is_ok());
    }
}

/// Determinism: two identical runs give identical traces and statistics.
#[test]
fn identical_seeds_replay_identically() {
    let run = || {
        let topo = sim_topology(&firewall::spec(), SimTime::from_micros(50), None);
        let mut engine = nes_engine(
            firewall::nes(),
            topo,
            SimParams::default(),
            true,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: H1, dst: H4, id: 1 },
            Ping { time: SimTime::from_millis(2), src: H4, dst: H1, id: 2 },
        ];
        schedule_pings(&mut engine, &pings);
        let r = engine.run_until(SimTime::from_secs(1));
        (r.trace, r.stats)
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}
