//! Integration tests for the compilation pipeline: concrete syntax →
//! Stateful NetKAT AST → per-state NetKAT → per-switch flow tables, checked
//! against the reference denotational semantics and against each other.

use edn_apps::{firewall, host_env, H1, H4};
use netkat::{compile_global, eval, Field, Loc, Packet};
use stateful_netkat::{build_ets, event_edges, parse, project, project_config, NetworkSpec};

/// The firewall's projected configurations forward exactly like the NetKAT
/// denotational semantics says they should.
#[test]
fn projected_tables_agree_with_denotational_semantics() {
    let program = firewall::program();
    let spec = firewall::spec();
    for state in [vec![0u64], vec![1]] {
        let policy = project(&program, &state);
        let tables = compile_global(&policy, &spec.switches).expect("compiles");
        // Sample the located-packet space: both switches, several ports and
        // destinations.
        for sw in [1u64, 4] {
            for pt in [1u64, 2, 3] {
                for dst in [H1, H4, 999] {
                    let pk = Packet::new()
                        .with(Field::Switch, sw)
                        .with(Field::Port, pt)
                        .with(Field::IpDst, dst);
                    // Denotational: run the whole policy, keep outputs that
                    // stayed on this switch (the table models the local
                    // fragment) — instead compare end-to-end: a packet
                    // admitted by the policy's ingress leaves the ingress
                    // switch on the right port.
                    let denot = eval(&policy, &pk).expect("evaluates");
                    let table_out = tables.tables[&sw].apply(&pk);
                    // Every denotational *first hop* at this switch appears
                    // in the table output: the denotation moves packets all
                    // the way across links, so compare on the ingress port
                    // assignment before link traversal. We check agreement
                    // on *drop vs forward* at the ingress.
                    if !denot.is_empty() {
                        assert!(
                            !table_out.is_empty(),
                            "state {state:?}: policy forwards {pk} but table drops"
                        );
                    }
                }
            }
        }
    }
}

/// Hand-computed check of the firewall's two configurations: who may talk
/// to whom, hop by hop, through the *installed tables*.
#[test]
fn firewall_config_forwarding_matrix() {
    let program = firewall::program();
    let spec = firewall::spec();
    let c0 = project_config(&program, &[0], &spec).expect("C[0]");
    let c1 = project_config(&program, &[1], &spec).expect("C[1]");

    let at = |sw: u64, pt: u64, dst: u64| {
        edn_core::LocatedPacket::new(Packet::new().with(Field::IpDst, dst), Loc::new(sw, pt))
    };
    // Outgoing H1 -> H4 works in both configurations.
    for c in [&c0, &c1] {
        let out = c.step(&at(1, 2, H4));
        assert!(
            out.iter().any(|lp| lp.loc == Loc::new(1, 1)),
            "outgoing leaves switch 1 towards switch 4"
        );
        let out = c.step(&at(4, 1, H4));
        assert!(out.iter().any(|lp| lp.loc == Loc::new(4, 2)), "delivered at H4's port");
    }
    // Incoming H4 -> H1 dies at switch 4 in C[0], flows in C[1].
    let incoming = at(4, 2, H1);
    let out0 = c0.step(&incoming);
    assert!(
        out0.iter().all(|lp| lp.loc.sw != 4 || lp.loc.pt != 1),
        "C[0] must not forward incoming towards switch 1, got {out0:?}"
    );
    let out1 = c1.step(&incoming);
    assert!(out1.iter().any(|lp| lp.loc == Loc::new(4, 1)), "C[1] forwards incoming");
}

/// Event extraction and ETS construction compose across a two-slot state
/// vector written by different clauses.
#[test]
fn two_slot_program_builds_diamond() {
    let env = host_env();
    let src = "ip_dst=H1; pt<-1; (1:1)->(4:1)<state(0)<-1>; pt<-2 \
               + ip_dst=H2; pt<-1; (1:1)->(4:1)<state(1)<-1>; pt<-2";
    let program = parse(src, &env).expect("parses");
    let spec = NetworkSpec::new([1, 4])
        .host(H1, Loc::new(1, 2))
        .host(H4, Loc::new(4, 2))
        .bilink(Loc::new(1, 1), Loc::new(4, 1));
    let ets = build_ets(&program, &[0, 0], &spec).expect("builds");
    assert_eq!(ets.vertex_count(), 4, "diamond has four states");
    assert_eq!(ets.events.len(), 2);
    let nes = ets.to_nes().expect("finite-complete");
    assert_eq!(nes.event_sets().len(), 4);
    // Both events live at 4:1 — conflict-free (the diamond is consistent),
    // locality holds trivially.
    assert!(nes.is_locally_determined(4));
}

/// The extraction function's guards match the events the paper reports:
/// `(dst=H4, 4:1)` for the firewall.
#[test]
fn extracted_guards_are_header_only() {
    let program = firewall::program();
    let (edges, _) = event_edges(&program, &vec![0], &netkat::TestConj::new()).expect("extracts");
    assert_eq!(edges.len(), 1);
    let edge = edges.iter().next().unwrap();
    assert_eq!(edge.guard.eq(Field::IpDst), Some(H4));
    assert_eq!(edge.guard.eq(Field::Switch), None, "no location fields in guards");
    assert_eq!(edge.loc, Loc::new(4, 1));
}

/// Parse → display → parse round-trip for all five application programs.
#[test]
fn program_sources_round_trip_through_display() {
    let env = host_env();
    let sources = [
        firewall::SOURCE.to_string(),
        edn_apps::learning::SOURCE.to_string(),
        edn_apps::authentication::SOURCE.to_string(),
        edn_apps::ids::SOURCE.to_string(),
        edn_apps::bandwidth_cap::source(4),
    ];
    for src in &sources {
        let p1 = parse(src, &env).expect("original parses");
        let printed = p1.to_string();
        let p2 = parse(&printed, &env).expect("pretty-printed parses");
        assert_eq!(p1, p2, "round trip changed the program:\n{printed}");
    }
}

/// Compiled rule counts for the five applications stay in the same order of
/// magnitude as the paper's Section 5.1 table (18/43/72/158/152) and order
/// consistently: chains with more states need more rules.
#[test]
fn rule_counts_scale_like_the_paper() {
    use nes_runtime::CompiledNes;
    let count =
        |nes: edn_core::NetworkEventStructure| CompiledNes::compile(nes).rule_breakdown().total();
    let fw = count(firewall::nes());
    let ls = count(edn_apps::learning::nes());
    let auth = count(edn_apps::authentication::nes());
    let bw = count(edn_apps::bandwidth_cap::nes(10));
    let ids = count(edn_apps::ids::nes());
    assert!(fw < auth, "firewall ({fw}) smaller than authentication ({auth})");
    assert!(auth < bw, "authentication ({auth}) smaller than bandwidth cap ({bw})");
    assert!((6..=40).contains(&fw), "firewall rules in range, got {fw}");
    assert!((10..=90).contains(&ls), "learning rules in range, got {ls}");
    assert!((30..=160).contains(&auth), "auth rules in range, got {auth}");
    assert!((80..=400).contains(&bw), "bandwidth-cap rules in range, got {bw}");
    assert!((40..=320).contains(&ids), "IDS rules in range, got {ids}");
}

mod global_compiler_properties {
    use std::collections::BTreeSet;

    use netkat::{compile_global, eval, Field, Loc, Packet, Policy, Pred, SwitchTables};
    use proptest::prelude::*;

    /// The fixed three-switch triangle used by the random path programs:
    /// 1:1 -> 2:2, 2:1 -> 3:2, 3:1 -> 1:2.
    fn triangle() -> Vec<(Loc, Loc)> {
        vec![
            (Loc::new(1, 1), Loc::new(2, 2)),
            (Loc::new(2, 1), Loc::new(3, 2)),
            (Loc::new(3, 1), Loc::new(1, 2)),
        ]
    }

    /// A random clause: ingress test on a distinct destination, a path of
    /// 0..=2 links around the triangle, and a final output port.
    fn arb_clause(dst: u64) -> impl Strategy<Value = Policy> {
        (1u64..=3, 0usize..=2, 3u64..=5, proptest::bool::ANY).prop_map(
            move |(start, hops, final_pt, negate_extra)| {
                let links = triangle();
                let mut pred = Pred::test(Field::IpDst, dst).and(Pred::port(3));
                if negate_extra {
                    pred = pred.and(Pred::test(Field::Vlan, 7).not());
                }
                let mut pol = Policy::filter(pred);
                let mut sw = start;
                for _ in 0..hops {
                    // The triangle link leaving switch `sw` starts at port 1.
                    let (src, dst_loc) = links.iter().find(|(s, _)| s.sw == sw).copied().unwrap();
                    pol = pol
                        .seq(Policy::modify(Field::Port, src.pt))
                        .seq(Policy::link(src, dst_loc));
                    sw = dst_loc.sw;
                }
                pol.seq(Policy::modify(Field::Port, final_pt))
            },
        )
    }

    /// Multi-hop execution through the compiled per-switch tables plus the
    /// physical links: the "deployed" semantics.
    fn walk(tables: &SwitchTables, start: &Packet) -> BTreeSet<Packet> {
        let links = triangle();
        let mut done = BTreeSet::new();
        let mut frontier = vec![start.clone()];
        for _ in 0..16 {
            let mut next = Vec::new();
            for pk in frontier.drain(..) {
                let sw = pk.get(Field::Switch).expect("located");
                let outs = tables.table(sw).apply(&pk);
                for out in outs {
                    let loc = out.loc().expect("tables keep packets located");
                    match links.iter().find(|(s, _)| *s == loc) {
                        Some(&(_, dst)) => {
                            let mut moved = out.clone();
                            moved.set_loc(dst);
                            next.push(moved);
                        }
                        None => {
                            done.insert(out);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        done
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// End-to-end: a union of non-interfering path clauses compiled to
        /// per-switch tables forwards exactly like the denotational
        /// semantics of the whole program, for every packet injected at an
        /// *edge* port (port 3, where clauses ingress). Packets spoofed
        /// into core ports can take mid-path rules the end-to-end
        /// denotation never produced — an inherent property of distributed
        /// rule placement that real compilers (Frenetic included) share.
        #[test]
        fn distributed_tables_agree_with_denotation(
            c1 in arb_clause(11),
            c2 in arb_clause(12),
            c3 in arb_clause(13),
            dst in prop_oneof![Just(11u64), Just(12), Just(13), Just(99)],
            ingress_sw in 1u64..=3,
            vlan in proptest::option::of(Just(7u64)),
        ) {
            let program = c1.union(c2).union(c3);
            let tables = compile_global(&program, &[1, 2, 3]).expect("compiles");
            let mut pk = Packet::new()
                .with(Field::Switch, ingress_sw)
                .with(Field::Port, 3)
                .with(Field::IpDst, dst);
            if let Some(v) = vlan {
                pk.set(Field::Vlan, v);
            }
            let denote = eval(&program, &pk).expect("evaluates");
            let walked = walk(&tables, &pk);
            prop_assert_eq!(walked, denote, "program {}", program);
        }
    }
}
