//! The Section 5.3 optimizer applied to the *real* compiled applications
//! (the paper reports 18→16, 43→27, 72→46, 158→101, 152→133) plus
//! semantics-preservation on the runtime's guarded rules.

use edn_apps::{authentication, bandwidth_cap, firewall, ids, learning};
use nes_runtime::CompiledNes;
use rule_optimizer::{optimize, random_configs};

fn savings_for(nes: edn_core::NetworkEventStructure) -> (usize, usize) {
    let compiled = CompiledNes::compile(nes);
    let configs = compiled.config_rule_sets();
    let opt = optimize(&configs);
    // Semantics must be preserved for every tag.
    for (tag, rules) in configs.iter().enumerate() {
        assert_eq!(&opt.effective_rules(tag), rules, "tag {tag} rules unchanged");
    }
    (opt.original_count, opt.optimized_count())
}

/// Applications with several configurations share most forwarding rules, so
/// the heuristic saves a substantial fraction — the paper reports 11–37%
/// across the five applications.
#[test]
fn per_app_savings_match_the_papers_shape() {
    let apps: Vec<(&str, edn_core::NetworkEventStructure)> = vec![
        ("firewall", firewall::nes()),
        ("learning", learning::nes()),
        ("authentication", authentication::nes()),
        ("bandwidth-cap", bandwidth_cap::nes(10)),
        ("ids", ids::nes()),
    ];
    for (name, nes) in apps {
        let (before, after) = savings_for(nes);
        assert!(after <= before, "{name}: optimizer never grows rules");
        // Multi-config apps share their common clauses.
        assert!(after < before, "{name}: some sharing expected ({before} -> {after})");
        println!("{name}: {before} -> {after}");
    }
}

/// The bandwidth cap is the flagship case: 12 nearly-identical
/// configurations; sharing must save well over half the rules.
#[test]
fn bandwidth_cap_shares_heavily() {
    let (before, after) = savings_for(bandwidth_cap::nes(10));
    let saved = 1.0 - after as f64 / before as f64;
    assert!(
        saved > 0.5,
        "chain configs are near-identical; expected >50% savings, got {:.1}% ({before} -> {after})",
        saved * 100.0
    );
}

/// The Fig. 17 synthetic experiment at several sizes: savings are
/// substantial and deterministic per seed.
#[test]
fn synthetic_fig17_savings() {
    for (count, rules, universe) in [(16, 10, 20), (64, 20, 40)] {
        let configs = random_configs(count, rules, universe, 7);
        let opt = optimize(&configs);
        assert_eq!(opt.original_count, count * rules);
        assert!(
            opt.savings() > 0.15,
            "random configs over a small universe share: got {:.3}",
            opt.savings()
        );
        // Repeatability.
        let again = optimize(&random_configs(count, rules, universe, 7));
        assert_eq!(opt.optimized_count(), again.optimized_count());
    }
}

/// Wildcard guards from the optimizer actually partition correctly: the
/// rules matched by each real configuration ID reproduce that
/// configuration, and dummy IDs (padding) match only shared rules.
#[test]
fn wildcard_guards_partition_correctly() {
    let compiled = CompiledNes::compile(authentication::nes());
    let configs = compiled.config_rule_sets();
    let opt = optimize(&configs);
    for (tag, config) in configs.iter().enumerate() {
        let id = opt.id_of(tag).expect("placed");
        let via_mask: std::collections::BTreeSet<_> = opt
            .guarded_rules
            .iter()
            .filter(|(m, _)| m.matches(id))
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(&via_mask, config);
    }
}
