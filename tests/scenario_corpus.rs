//! The scenario seed corpus: the generalized Fig. 10 experiment, replayed.
//!
//! Thirty-two pinned `ScenarioGen` seeds — random topologies, update
//! campaigns, link flaps, crashes, latency spikes, and host moves — each
//! replayed through the coordinated NES runtime *and* the uncoordinated
//! baseline with the online Definition 6 checker attached to both:
//!
//! * the coordinated plane's verdict is `correct` on **every** seed
//!   (Theorem 1), and the runtime fires every campaign step;
//! * the uncoordinated baseline is caught on every seed, and the violation
//!   *kind* is pinned: the campaign's causal probes (sent by a host that
//!   just received a post-firing packet, racing the slow push) always
//!   surface as `too_late` — traffic causally after a firing served by a
//!   configuration from before it.
//!
//! A fresh-random proptest then drives unpinned scenarios through the
//! coordinated plane only: no seed anywhere may make the runtime violate.

use edn_scenario::{
    differential, parse, run_coordinated, stats_csv_row, CompiledScenario, RunOptions, ScenarioGen,
};
use nes_runtime::{CompilePath, OptimizeMode};
use netsim::ChannelModel;
use proptest::prelude::*;

/// `(seed, coordinated steps fired, uncoordinated violation name)` for the
/// pinned corpus. Regenerate by printing `differential(&ScenarioGen::
/// sample(seed))` for each seed — any drift here is a behavior change in
/// the generator, the compiler, a plane, or the checker.
const CORPUS: [(u64, usize, &str); 32] = [
    (0, 1, "too_late"),
    (1, 1, "too_late"),
    (2, 1, "too_late"),
    (3, 2, "too_late"),
    (4, 3, "too_late"),
    (5, 4, "too_late"),
    (6, 3, "too_late"),
    (7, 1, "too_late"),
    (8, 1, "too_late"),
    (9, 1, "too_late"),
    (10, 1, "too_late"),
    (11, 2, "too_late"),
    (12, 1, "too_late"),
    (13, 2, "too_late"),
    (14, 4, "too_late"),
    (15, 2, "too_late"),
    (16, 1, "too_late"),
    (17, 3, "too_late"),
    (18, 4, "too_late"),
    (19, 2, "too_late"),
    (20, 3, "too_late"),
    (21, 3, "too_late"),
    (22, 2, "too_late"),
    (23, 2, "too_late"),
    (24, 2, "too_late"),
    (25, 3, "too_late"),
    (26, 2, "too_late"),
    (27, 1, "too_late"),
    (28, 1, "too_late"),
    (29, 3, "too_late"),
    (30, 2, "too_late"),
    (31, 2, "too_late"),
];

#[test]
fn pinned_corpus_verdicts_hold() {
    for &(seed, fired, violation) in &CORPUS {
        let spec = ScenarioGen::sample(seed);
        let outcome = differential(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            outcome.coordinated,
            Ok(()),
            "seed {seed}: the coordinated plane must stay correct"
        );
        assert_eq!(outcome.fired, fired, "seed {seed}: campaign firing count drifted");
        let caught =
            outcome.uncoordinated.expect_err(&format!("seed {seed}: the baseline must get caught"));
        assert_eq!(caught.name(), violation, "seed {seed}: violation kind drifted");
    }
}

/// The corpus must include at least one uncoordinated counterexample by
/// construction; in fact the causal probes catch the baseline everywhere.
#[test]
fn corpus_has_uncoordinated_counterexamples() {
    assert!(CORPUS.iter().any(|&(_, _, v)| !v.is_empty()));
    assert!(CORPUS.len() >= 32);
}

/// Replays are byte-stable: recompiling and rerunning a corpus scenario
/// reproduces identical stats, and the text form round-trips the spec.
#[test]
fn corpus_scenarios_replay_byte_identically() {
    for seed in [0u64, 5, 17, 29] {
        let spec = ScenarioGen::sample(seed);
        assert_eq!(parse(&spec.to_toml()).unwrap(), spec, "seed {seed} round-trips");
        let c = CompiledScenario::compile(&spec).unwrap();
        let a = run_coordinated(&c, &RunOptions::default());
        let b = run_coordinated(&c, &RunOptions::default());
        assert_eq!(a.stats, b.stats, "seed {seed}: replay diverged");
    }
}

/// Every pinned seed, replayed with the delta compile path (and, for good
/// measure, the rule optimizer) pinned on: the canonical CSV — stats,
/// firing count, and the online verdict — must be byte-identical to the
/// scratch-compiled run. The corpus is the widest churn surface in the
/// repo (random topologies, crashes, moves, flaps), so this is the delta
/// path's differential gauntlet.
#[test]
fn pinned_corpus_is_compile_path_invariant() {
    for &(seed, fired, _) in &CORPUS {
        let spec = ScenarioGen::sample(seed);
        let c = CompiledScenario::compile(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let check = RunOptions { check: true, ..RunOptions::default() };
        let scratch = run_coordinated(&c, &check);
        assert_eq!(scratch.fired, Some(fired), "seed {seed}: firing count drifted");
        let delta = run_coordinated(&c, &RunOptions { compile: Some(CompilePath::Delta), ..check });
        assert_eq!(
            stats_csv_row(&delta),
            stats_csv_row(&scratch),
            "seed {seed}: delta compile changed the canonical CSV"
        );
        let optimized =
            run_coordinated(&c, &RunOptions { optimize: Some(OptimizeMode::On), ..check });
        assert_eq!(
            stats_csv_row(&optimized),
            stats_csv_row(&scratch),
            "seed {seed}: the optimizer changed the canonical CSV"
        );
        assert_eq!(delta.verdict, Some(Ok(())), "seed {seed}: delta verdict");
        assert_eq!(optimized.verdict, Some(Ok(())), "seed {seed}: optimized verdict");
    }
}

/// The corpus replayed over lossy control channels: every pinned seed's
/// lossy twin ([`ScenarioGen::sample_lossy`] — the same scenario plus a
/// seeded `[channel]` fault model) runs through the ack/retry reliability
/// layer and must land exactly where the ideal run did. The verdict stays
/// `correct` (Theorem 1 carries over drops, duplicates, and reordering),
/// every campaign step fires, the default retry budget never exhausts, and
/// the canonical CSV is byte-identical at 1, 2, and 4 shards — the fault
/// stream is pinned to the owning shard, not the worker schedule.
#[test]
fn lossy_corpus_stays_correct_and_shard_invariant() {
    for &(seed, fired, _) in &CORPUS {
        let spec = ScenarioGen::sample_lossy(seed);
        let c = CompiledScenario::compile(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let checked = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        assert_eq!(
            checked.verdict,
            Some(Ok(())),
            "seed {seed}: the reliability layer must preserve Definition 6 under loss"
        );
        assert_eq!(checked.fired, Some(fired), "seed {seed}: firing count drifted under loss");
        assert!(!checked.degraded, "seed {seed}: the default budget must not exhaust");
        let solo = run_coordinated(&c, &RunOptions { shards: Some(1), ..RunOptions::default() });
        assert_eq!(
            solo.stats, checked.stats,
            "seed {seed}: the checker must not change a byte under loss"
        );
        for shards in [2u32, 4] {
            let sharded =
                run_coordinated(&c, &RunOptions { shards: Some(shards), ..RunOptions::default() });
            assert_eq!(
                stats_csv_row(&sharded),
                stats_csv_row(&solo),
                "seed {seed}: {shards} shards diverged under loss"
            );
        }
    }
}

/// The lossy twins leave the ideal corpus untouched: stripping the
/// `[channel]` section recovers the pinned spec byte for byte, so the
/// pinned firing counts and canonical CSVs above keep meaning what they
/// always meant.
#[test]
fn lossy_twins_share_the_pinned_base_scenarios() {
    for &(seed, _, _) in &CORPUS {
        let base = ScenarioGen::sample(seed);
        let mut twin = ScenarioGen::sample_lossy(seed);
        assert_eq!(twin.name, format!("{}-lossy", base.name), "seed {seed}: twin naming");
        assert!(!twin.channel.is_ideal(), "seed {seed}: the twin must actually be lossy");
        twin.channel = Default::default();
        twin.name = base.name.clone();
        assert_eq!(twin, base, "seed {seed}: the twin drifted from its base scenario");
    }
}

/// Reliability *disabled* under loss is caught, not masked: the
/// uncoordinated baseline has no ack/retry layer, so a lossy channel's
/// dropped pushes and the stale-plane race both surface as online checker
/// violations. Loss must never launder the baseline into a `correct`
/// verdict.
#[test]
fn bare_baseline_under_loss_is_caught_not_masked() {
    for seed in [0u64, 5, 17, 29] {
        let spec = ScenarioGen::sample(seed);
        let c = CompiledScenario::compile(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut engine = c.uncoordinated().with_channel(ChannelModel::lossy(seed));
        let handle = nes_runtime::attach_online_checker(&mut engine, &c.nes)
            .expect("a ≤63-step campaign fits the online checker's windows");
        c.apply_actions(&mut engine);
        c.load_traffic(&mut engine, false);
        c.inject_campaign(&mut engine);
        engine.run_until(c.horizon);
        assert!(
            handle.verdict().is_err(),
            "seed {seed}: the unreliable baseline must be caught under loss"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fresh random scenarios never violate on the coordinated plane: the
    /// online checker returns `correct` and every campaign step fires, for
    /// any generator seed — Theorem 1 as a property test over churn.
    #[test]
    fn coordinated_plane_never_violates(seed in 0u64..u64::MAX) {
        let spec = ScenarioGen::sample(seed);
        let c = CompiledScenario::compile(&spec)
            .unwrap_or_else(|e| panic!("seed {seed}: generated specs compile: {e}"));
        let out = run_coordinated(&c, &RunOptions { check: true, ..RunOptions::default() });
        prop_assert_eq!(out.verdict, Some(Ok(())), "seed {}: verdict", seed);
        prop_assert_eq!(out.fired, Some(c.steps.len()), "seed {}: firings", seed);
    }
}
