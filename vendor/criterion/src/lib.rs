//! A minimal, dependency-free, offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency. It implements the 0.5-series
//! API subset the `edn-bench` benches use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::throughput`],
//! [`Bencher::iter`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a plain wall-clock measurement loop
//! instead of upstream's statistical analysis. Results print as
//! `<group>/<name>  time: [median per iter]` lines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per process, created by
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`; flags
        // (e.g. the `--bench` cargo appends) are not name filters.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 50, filter }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, None, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: sample_size, per_iter: Duration::ZERO };
        f(&mut bencher);
        let nanos = bencher.per_iter.as_nanos();
        match throughput {
            Some(Throughput::Elements(n)) if nanos > 0 => {
                let rate = *n as f64 * 1e9 / nanos as f64;
                println!("{id}  time: [{}]  thrpt: [{rate:.0} elem/s]", fmt_nanos(nanos));
            }
            Some(Throughput::Bytes(n)) if nanos > 0 => {
                let rate = *n as f64 * 1e9 / nanos as f64;
                println!("{id}  time: [{}]  thrpt: [{rate:.0} B/s]", fmt_nanos(nanos));
            }
            _ => println!("{id}  time: [{}]", fmt_nanos(nanos)),
        }
    }
}

fn fmt_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs, enabling a
    /// throughput line in the output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, self.throughput.as_ref(), f);
        self
    }

    /// Ends the group. (Analysis-free here; provided for API parity.)
    pub fn finish(self) {}
}

/// The amount of work one benchmark iteration represents.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (packets, rules, …) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    per_iter: Duration,
}

impl Bencher {
    /// Calls `routine` once to warm up, then `samples` timed times, and
    /// records the median duration per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.per_iter = times[times.len() / 2];
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
