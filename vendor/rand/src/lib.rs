//! A minimal, dependency-free, offline stand-in for the `rand` crate,
//! implementing exactly the 0.8-series API subset this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! unsigned integer ranges, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency. All randomness is deterministic
//! given the seed (SplitMix64), which is what every caller in this repo
//! wants anyway — the simulator and the Fig. 17 generator both demand
//! seed-reproducible runs.

#![warn(missing_docs)]

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`; equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64). API-compatible with
    /// `rand::rngs::StdRng` for the seeded use in this workspace; the
    /// stream differs from upstream's ChaCha-based `StdRng`, which no
    /// caller here depends on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use crate::RngCore;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
