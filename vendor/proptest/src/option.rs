//! Strategies for `Option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Wraps `inner` so that roughly half the generated values are `Some`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
