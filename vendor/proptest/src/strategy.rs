//! The [`Strategy`] trait and its combinators: value generation without
//! shrinking.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Maps generated values through `f`, retrying on `None`. `whence`
    /// names the filter in the panic raised if retries are exhausted.
    fn prop_filter_map<O, F>(self, whence: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { source: self, whence: whence.into(), f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the recursive case, nested at most
    /// `depth` levels. `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility; depth alone bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erases the strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among its arms. Built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps the given arms; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map retries exhausted: {}", self.whence);
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
