//! A minimal offline stand-in for the `proptest` crate (its only
//! dependency is the sibling vendored `rand` shim).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency. It implements exactly the 1.x
//! API subset the workspace's property tests use:
//!
//! - [`strategy::Strategy`] with `prop_map`, `prop_filter_map`,
//!   `prop_recursive`, and `boxed`;
//! - strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], [`collection::btree_set`], [`bool::ANY`],
//!   [`option::of`], and [`arbitrary::any`];
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! - [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! reported but **not shrunk**. Generation is fully deterministic (a fixed
//! SplitMix64 seed per test), so every CI failure replays locally.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn` runs its body once per generated case.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(...)]` header and any number of test functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            // Build each strategy once; the loop bodies below shadow these
            // bindings with the values generated from them.
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = result {
                    ::core::panic!(
                        "proptest: case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        ::core::stringify!($name),
                        err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Builds a strategy that picks uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (rather than panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts two values are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}
