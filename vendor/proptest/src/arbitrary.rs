//! The `any::<T>()` entry point for types with a canonical strategy.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
