//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy generating either boolean with equal probability.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Generates `true` or `false` uniformly.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
