//! Test-runner support types: the deterministic RNG, per-test
//! configuration, and the error type the `prop_assert*` macros return.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic stream used to generate test cases, backed by the
/// vendored [`rand`] crate's seeded [`StdRng`].
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// The fixed-seed generator every [`proptest!`](crate::proptest) test
    /// starts from, so failures replay identically on every machine.
    pub fn deterministic() -> Self {
        TestRng { rng: StdRng::seed_from_u64(0x853C_49E6_748F_EA9B) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Returns a uniform value in `0..n` (and `0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// How a [`proptest!`](crate::proptest) block runs its tests.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test generates.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case, carrying the failure message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The result type a property-test body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;
