//! Strategies for collections: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open range of collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

/// A strategy generating `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating `BTreeSet`s whose elements come from `element`.
/// Duplicate draws collapse, so the set may end up smaller than the drawn
/// size (matching upstream's behavior for narrow element domains).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
