//! Host mobility: re-homing a host to a new attachment switch.
//!
//! Two forms, matching the two ways mobility shows up in an event-driven
//! network:
//!
//! * [`rehome`] — the *static* form: rebuild the topology with the host
//!   attached elsewhere (a fresh port on the target switch). Useful for
//!   before/after comparisons and for synthesizing the post-move routing
//!   state.
//! * [`with_mobile_twin`] + [`rehomed_rules`] — the *in-run* form: the run
//!   topology carries **both** attachment points (the new one under the
//!   twin id [`mobile_twin`]`(host)`), and a configuration update re-points
//!   the host's `ip_dst` rules at the twin's attachment mid-run. Mobility
//!   becomes one more event-driven update in a campaign — exactly the
//!   paper's framing, so the Definition 6 checker covers it for free.

use std::collections::BTreeMap;

use netkat::{Loc, Rule};
use netsim::SimTopology;

use crate::generate::GenTopology;
use crate::route::rules_toward;

/// Offset added to a host id to form its mobile-twin id. Far above
/// [`HOST_BASE`](crate::HOST_BASE) plus any generated host count, so twin
/// ids never collide with real hosts or switches.
pub const MOBILE_TWIN_OFFSET: u64 = 1_000_000;

/// The twin id representing `host`'s post-move attachment point.
pub fn mobile_twin(host: u64) -> u64 {
    MOBILE_TWIN_OFFSET + host
}

/// The smallest port number not used by any link or host attachment at
/// `sw` (and at least 1) — where a moved host plugs in.
pub fn free_port(gen: &GenTopology, sw: u64) -> u64 {
    let topo = gen.sim();
    let mut max = 0;
    for l in topo.links() {
        if l.src.sw == sw {
            max = max.max(l.src.pt);
        }
        if l.dst.sw == sw {
            max = max.max(l.dst.pt);
        }
    }
    for (_, at) in topo.hosts() {
        if at.sw == sw {
            max = max.max(at.pt);
        }
    }
    max + 1
}

/// Rebuilds the topology with `host` attached to a fresh port on `to`
/// (same switches, links, and host-link latency; every other host stays
/// put).
///
/// # Panics
///
/// Panics if `host` is not a host of `gen` or `to` is not one of its
/// switches.
pub fn rehome(gen: &GenTopology, host: u64, to: u64) -> GenTopology {
    let topo = gen.sim();
    assert!(topo.is_host(host), "rehome: {host} is not a host");
    assert!(topo.switches().contains(&to), "rehome: {to} is not a switch");
    let port = free_port(gen, to);
    let mut rebuilt = SimTopology::new(topo.switches().to_vec())
        .with_host_latency(topo.host_latency)
        .extend_links(topo.links().to_vec());
    for (h, at) in topo.hosts() {
        let at = if h == host { Loc::new(to, port) } else { at };
        rebuilt = rebuilt.host(h, at);
    }
    GenTopology::from_sim(format!("{}+move({host}->{to})", gen.name()), rebuilt)
}

/// Returns the topology extended with `host`'s mobile twin attached to a
/// fresh port on `to`: the run topology for in-run mobility, carrying both
/// the old and the new attachment point.
///
/// # Panics
///
/// Panics if `host` is not a host of `gen` or `to` is not one of its
/// switches.
pub fn with_mobile_twin(gen: &GenTopology, host: u64, to: u64) -> GenTopology {
    let topo = gen.sim();
    assert!(topo.is_host(host), "with_mobile_twin: {host} is not a host");
    assert!(topo.switches().contains(&to), "with_mobile_twin: {to} is not a switch");
    let port = free_port(gen, to);
    let rebuilt = topo.clone().host(mobile_twin(host), Loc::new(to, port));
    GenTopology::from_sim(format!("{}+twin({host}@{to})", gen.name()), rebuilt)
}

/// Post-move routing for `host` on a twin-carrying topology (built with
/// [`with_mobile_twin`]): per-switch rules matching `ip_dst = host` that
/// deliver at the **twin's** attachment. Swapping these in for the host's
/// shortest-path rules is the configuration side of a mobility update.
///
/// # Panics
///
/// Panics if `gen` has no twin for `host`.
pub fn rehomed_rules(gen: &GenTopology, host: u64) -> BTreeMap<u64, Rule> {
    let at = gen
        .attachment(mobile_twin(host))
        .unwrap_or_else(|| panic!("rehomed_rules: no mobile twin for {host} in {}", gen.name()));
    rules_toward(gen, at, host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ring, LinkProfile, HOST_BASE};
    use crate::route::{config_from_rules, shortest_path_rules};
    use netkat::Field;
    use netsim::traffic::{schedule_pings, Ping, ScenarioHosts};
    use netsim::{Engine, SimParams, SimTime};

    #[test]
    fn free_port_avoids_links_and_hosts() {
        let g = ring(4, LinkProfile::default());
        // Ring ports: 1 = cw, 2 = ccw, 3 = host.
        assert_eq!(free_port(&g, 2), 4);
    }

    #[test]
    fn rehome_moves_exactly_one_host() {
        let g = ring(4, LinkProfile::default());
        let host = HOST_BASE + 1;
        let moved = rehome(&g, host, 3);
        assert_eq!(moved.attachment(host), Some(Loc::new(3, 4)));
        assert_eq!(moved.host_count(), g.host_count());
        assert_eq!(moved.link_count(), g.link_count());
        for &h in g.hosts() {
            if h != host {
                assert_eq!(moved.attachment(h), g.attachment(h), "host {h} stayed put");
            }
        }
    }

    #[test]
    fn twin_topology_keeps_the_original_attachment() {
        let g = ring(4, LinkProfile::default());
        let host = HOST_BASE + 1;
        let twinned = with_mobile_twin(&g, host, 3);
        assert_eq!(twinned.attachment(host), g.attachment(host));
        assert_eq!(twinned.attachment(mobile_twin(host)), Some(Loc::new(3, 4)));
        assert_eq!(twinned.host_count(), g.host_count() + 1);
    }

    #[test]
    fn rehomed_rules_deliver_at_the_new_attachment() {
        // Move HOST_BASE+1 from switch 1 to switch 3, swap in the rehomed
        // rules, and check a ping to the *old* address lands at the twin.
        let g = ring(4, LinkProfile::default());
        let host = HOST_BASE + 1;
        let run = with_mobile_twin(&g, host, 3);
        let mut rules = shortest_path_rules(&run);
        let rehomed = rehomed_rules(&run, host);
        for (sw, list) in rules.iter_mut() {
            for r in list.iter_mut() {
                if r.pattern.get(Field::IpDst) == Some(host) {
                    *r = rehomed[sw].clone();
                }
            }
        }
        let config = config_from_rules(&run, rules);
        let mut engine = Engine::new(
            run.sim().clone(),
            SimParams::default(),
            nes_runtime::StaticDataPlane::new(config),
            Box::new(ScenarioHosts::new()),
        );
        let src = HOST_BASE + 2;
        let pings = vec![Ping { time: SimTime::from_millis(1), src, dst: host, id: 1 }];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(1));
        assert!(
            result.stats.delivered_to(mobile_twin(host)).next().is_some(),
            "traffic for the moved host lands at its twin"
        );
        assert!(
            result.stats.delivered_to(host).next().is_none(),
            "nothing reaches the old attachment"
        );
    }
}
