//! Routing synthesis: turn a generated topology into deployable
//! shortest-path forwarding state.
//!
//! The output is an `edn-core` [`Config`] — one `ip_dst = host → output
//! port` rule per (switch, host) pair, plus the topology's links and hosts —
//! directly deployable on `StaticDataPlane` or usable as an NES
//! configuration. Tie-breaking is deterministic (see
//! [`SimTopology::next_hop_ports`](netsim::SimTopology::next_hop_ports)),
//! so equal topologies compile to identical configs.

use std::collections::BTreeMap;

use edn_core::Config;
use netkat::{Action, ActionSet, Field, FlowTable, Match, Rule};

use crate::generate::GenTopology;

/// Shortest-path forwarding rules for every switch: one rule per reachable
/// host, in ascending host-id order.
///
/// Rules at a host's own attachment switch output to the attachment port;
/// rules elsewhere follow the deterministic shortest path. Switches that
/// cannot reach a host simply get no rule for it.
pub fn shortest_path_rules(gen: &GenTopology) -> BTreeMap<u64, Vec<Rule>> {
    let topo = gen.sim();
    let mut rules: BTreeMap<u64, Vec<Rule>> =
        topo.switches().iter().map(|&s| (s, Vec::new())).collect();
    // One BFS per attachment switch, shared by its co-located hosts.
    let mut next_hops: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    for &host in gen.hosts() {
        let at = gen.attachment(host).expect("generated hosts are attached");
        let next = next_hops.entry(at.sw).or_insert_with(|| topo.next_hop_ports(at.sw));
        for (&sw, list) in rules.iter_mut() {
            let out = if sw == at.sw { Some(at.pt) } else { next.get(&sw).copied() };
            if let Some(out) = out {
                list.push(Rule::new(
                    Match::new().with(Field::IpDst, host),
                    ActionSet::single(Action::assign(Field::Port, out)),
                ));
            }
        }
    }
    rules
}

/// Rules routing `ip_dst = ip` toward the attachment `at` from every switch
/// that can reach it: the rule at `at.sw` outputs to `at.pt`, rules
/// elsewhere follow the deterministic shortest path. The building block for
/// mobility re-homing (route a host's address to its *new* attachment) and
/// selective un/blocking in update campaigns.
pub fn rules_toward(gen: &GenTopology, at: netkat::Loc, ip: u64) -> BTreeMap<u64, Rule> {
    let topo = gen.sim();
    let next = topo.next_hop_ports(at.sw);
    topo.switches()
        .iter()
        .filter_map(|&sw| {
            let out = if sw == at.sw { Some(at.pt) } else { next.get(&sw).copied() };
            out.map(|out| {
                (
                    sw,
                    Rule::new(
                        Match::new().with(Field::IpDst, ip),
                        ActionSet::single(Action::assign(Field::Port, out)),
                    ),
                )
            })
        })
        .collect()
}

/// Builds a [`Config`] from per-switch rules plus the generated topology's
/// links and hosts (so correctness checking sees the full network).
pub fn config_from_rules(gen: &GenTopology, rules: BTreeMap<u64, Vec<Rule>>) -> Config {
    let mut config = Config::new();
    for (sw, list) in rules {
        config.install(sw, FlowTable::from_rules(list));
    }
    for l in gen.sim().links() {
        config.add_link(l.src, l.dst);
    }
    for (host, at) in gen.sim().hosts() {
        config.add_host(host, at);
    }
    config
}

/// The all-pairs shortest-path configuration of a generated topology.
pub fn shortest_path_config(gen: &GenTopology) -> Config {
    config_from_rules(gen, shortest_path_rules(gen))
}

/// Returns `true` if every host can reach every other host (their
/// attachment switches are mutually connected).
pub fn all_hosts_connected(gen: &GenTopology) -> bool {
    let topo = gen.sim();
    let attach: Vec<u64> = {
        let mut v: Vec<u64> =
            gen.hosts().iter().filter_map(|&h| gen.attachment(h)).map(|l| l.sw).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    attach.iter().all(|&dst| {
        let next = topo.next_hop_ports(dst);
        attach.iter().all(|&src| src == dst || next.contains_key(&src))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{fat_tree, linear, ring, LinkProfile, TierProfile, HOST_BASE};
    use netsim::{Engine, SimParams, SimTime};

    #[test]
    fn rule_counts_are_all_pairs() {
        let g = ring(5, LinkProfile::default());
        let config = shortest_path_config(&g);
        // 5 switches × 5 hosts, every pair connected.
        assert_eq!(config.rule_count(), 25);
        assert!(all_hosts_connected(&g));
    }

    #[test]
    fn disconnected_pairs_get_no_rules() {
        // Two isolated switches: only the local attachment rules exist.
        let g = {
            use netsim::SimTopology;
            let topo = SimTopology::new([1, 2])
                .host(HOST_BASE + 1, netkat::Loc::new(1, 3))
                .host(HOST_BASE + 2, netkat::Loc::new(2, 3));
            crate::generate::GenTopology::from_sim("islands", topo)
        };
        assert!(!all_hosts_connected(&g));
        assert_eq!(shortest_path_config(&g).rule_count(), 2);
    }

    #[test]
    fn fat_tree_traffic_crosses_pods() {
        use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
        let g = fat_tree(4, TierProfile::default());
        let config = shortest_path_config(&g);
        let (src, dst) = (g.hosts()[0], *g.hosts().last().unwrap());
        let mut engine = Engine::new(
            g.sim().clone(),
            SimParams::default(),
            nes_runtime::StaticDataPlane::new(config),
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![Ping { time: SimTime::from_millis(1), src, dst, id: 1 }];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(1));
        assert!(ping_outcomes(&pings, &result.stats)[0].replied.is_some());
    }

    #[test]
    fn linear_routes_are_direct() {
        let g = linear(4, LinkProfile::default());
        let rules = shortest_path_rules(&g);
        // Switch 1's rule for the host at switch 4 points right (port 1).
        let r = &rules[&1][3];
        assert_eq!(r.pattern.get(Field::IpDst), Some(HOST_BASE + 4));
        let out = r.actions.iter().next().unwrap().get(Field::Port);
        assert_eq!(out, Some(1));
    }
}
