//! Streaming workload models: heavy-tailed, bursty, and diurnal arrivals.
//!
//! [`synthesize`](crate::synthesize) draws every flow from the same uniform
//! shape: fixed datagram count, uniform start jitter. Real traffic is not
//! like that, and the difference matters at scale — heavy-tailed flow sizes
//! and synchronized bursts are what stress queues and the online checker.
//! An [`ArrivalModel`] reshapes a synthesized traffic matrix (the *pairs*
//! still come from the base [`Workload`](crate::Workload) pattern):
//!
//! - [`ArrivalModel::Pareto`] — flow sizes become Pareto draws (scale =
//!   `packets_per_flow`, shape `alpha`): most flows are mice, a few are
//!   elephants carrying most of the bytes.
//! - [`ArrivalModel::OnOff`] — each flow transmits in fixed-size bursts
//!   separated by silences, the classic on/off source.
//! - [`ArrivalModel::Diurnal`] — flow starts follow a raised-cosine load
//!   curve over the jitter window instead of a uniform draw: rush hours and
//!   quiet troughs.
//!
//! Everything is seeded from the workload's seed, so equal parameters give
//! byte-identical flows. [`attach_stream`] then hands the flows to the
//! engine as a lazy [`FlowSource`] — events materialize on demand instead
//! of filling the queue up front, which is what lets a 10M+ event run start
//! in O(flows) memory. A streamed run is byte-identical to the same flows
//! scheduled eagerly with [`schedule`](crate::schedule) (pinned by the
//! differential suite in `edn-bench`).

use netsim::traffic::{FlowSource, UdpFlowSpec};
use netsim::{DataPlane, Engine, SimTime, WorkloadSource};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::generate::GenTopology;
use crate::workload::{synthesize, Workload};

/// How a flow's datagrams arrive in time (see
/// [`synthesize_arrivals`](crate::synthesize_arrivals)).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ArrivalModel {
    /// Heavy-tailed flow sizes: datagram counts are Pareto draws with shape
    /// `alpha` and scale `packets_per_flow`, clamped to `max_packets`.
    /// Smaller `alpha` means heavier tails (`alpha ≤ 1` has infinite mean).
    Pareto {
        /// Pareto shape parameter (tail index); typical traffic is 1.1–1.5.
        alpha: f64,
        /// Upper clamp on a single flow's datagram count.
        max_packets: u64,
    },
    /// Bursty on/off sources: each flow's datagrams are sent in back-to-back
    /// bursts of `burst_packets`, separated by `off` silences.
    OnOff {
        /// Datagrams per on-period.
        burst_packets: u64,
        /// Silence between bursts.
        off: SimTime,
    },
    /// Diurnal load curve: flow starts are drawn from a raised-cosine
    /// density over the jitter window — `periods` peaks, with trough load
    /// `trough_pct`% of peak load.
    Diurnal {
        /// Number of peaks across the `spread` window.
        periods: u32,
        /// Trough density as a percentage of peak density (0–100).
        trough_pct: u8,
    },
}

/// Synthesizes a workload and reshapes it under an arrival model.
///
/// Endpoint pairs come from the base workload's pattern; the model reshapes
/// sizes and timing. Flow ids are renumbered `0..` afterwards (on/off
/// sources split one logical flow into several burst specs).
///
/// # Panics
///
/// Panics if the topology has fewer than two hosts, or on degenerate model
/// parameters (`alpha ≤ 0`, zero-length bursts).
pub fn synthesize_arrivals(
    gen: &GenTopology,
    w: &Workload,
    model: &ArrivalModel,
) -> Vec<UdpFlowSpec> {
    let base = synthesize(gen, w);
    // A derived stream: reshaping must not disturb the base draw sequence,
    // so equal seeds keep the same endpoint pairs under every model.
    let mut rng = StdRng::seed_from_u64(w.seed ^ 0x5744_4e5f_5354_5245); // "EDN_STRE"
    let mut out = match *model {
        ArrivalModel::Pareto { alpha, max_packets } => {
            assert!(alpha > 0.0, "Pareto shape must be positive");
            let scale = w.packets_per_flow.max(1) as f64;
            base.into_iter()
                .map(|f| {
                    let u = unit_draw(&mut rng);
                    let n = (scale * (1.0 - u).powf(-1.0 / alpha)) as u64;
                    let n = n.clamp(w.packets_per_flow.max(1), max_packets.max(1));
                    let duration = SimTime::from_micros(f.interval.as_micros() * n);
                    UdpFlowSpec { end: f.start + duration, ..f }
                })
                .collect()
        }
        ArrivalModel::OnOff { burst_packets, off } => {
            assert!(burst_packets > 0, "bursts must carry at least one datagram");
            let mut specs = Vec::new();
            for f in &base {
                let on = SimTime::from_micros(f.interval.as_micros() * burst_packets);
                let mut remaining = f.datagram_count();
                let mut start = f.start;
                while remaining > 0 {
                    let burst = remaining.min(burst_packets);
                    let len = SimTime::from_micros(f.interval.as_micros() * burst);
                    specs.push(UdpFlowSpec { start, end: start + len, ..*f });
                    start = start + on + off;
                    remaining -= burst;
                }
            }
            specs
        }
        ArrivalModel::Diurnal { periods, trough_pct } => {
            let weights = diurnal_weights(periods, trough_pct);
            let total: u64 = weights.iter().sum();
            base.into_iter()
                .map(|f| {
                    let len = f.end - f.start;
                    let start = if w.spread == SimTime::ZERO {
                        f.start
                    } else {
                        let mut pick = rng.gen_range(0..total);
                        let bucket = weights
                            .iter()
                            .position(|&wt| {
                                if pick < wt {
                                    true
                                } else {
                                    pick -= wt;
                                    false
                                }
                            })
                            .expect("weights cover the draw");
                        let bucket_len = w.spread.as_micros() / weights.len() as u64;
                        let lo = bucket as u64 * bucket_len;
                        let offset =
                            if bucket_len == 0 { lo } else { lo + rng.gen_range(0..bucket_len) };
                        w.start + SimTime::from_micros(offset)
                    };
                    UdpFlowSpec { start, end: start + len, ..f }
                })
                .collect()
        }
    };
    for (i, f) in out.iter_mut().enumerate() {
        f.flow = i as u64;
    }
    out
}

/// A uniform draw from `[0, 1)` (53 mantissa bits), since the vendored RNG
/// shim only samples integers.
fn unit_draw(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Raised-cosine bucket weights: peak 1000, trough `trough_pct`% of peak.
fn diurnal_weights(periods: u32, trough_pct: u8) -> Vec<u64> {
    const BUCKETS: usize = 64;
    let trough = f64::from(trough_pct.min(100)) * 10.0;
    (0..BUCKETS)
        .map(|i| {
            let phase = std::f64::consts::TAU * f64::from(periods.max(1)) * (i as f64 + 0.5)
                / BUCKETS as f64;
            let density = trough + (1000.0 - trough) * (1.0 + phase.cos()) / 2.0;
            density.max(1.0) as u64
        })
        .collect()
}

/// Attaches flows to an engine as a lazy streaming source (the counterpart
/// of [`schedule`](crate::schedule), which materializes the whole queue up
/// front). Returns the total datagram count the stream will inject.
pub fn attach_stream<D: DataPlane>(engine: &mut Engine<D>, flows: &[UdpFlowSpec]) -> u64 {
    let src = FlowSource::new(flows);
    let total = src.total_events();
    engine.set_source(Box::new(src));
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ring, LinkProfile};
    use crate::workload::TrafficPattern;

    fn base() -> Workload {
        Workload { pattern: TrafficPattern::Permutation, seed: 11, ..Workload::default() }
    }

    #[test]
    fn models_are_seed_deterministic() {
        let g = ring(8, LinkProfile::default());
        for model in [
            ArrivalModel::Pareto { alpha: 1.3, max_packets: 500 },
            ArrivalModel::OnOff { burst_packets: 4, off: SimTime::from_millis(3) },
            ArrivalModel::Diurnal { periods: 2, trough_pct: 20 },
        ] {
            let a = synthesize_arrivals(&g, &base(), &model);
            let b = synthesize_arrivals(&g, &base(), &model);
            assert_eq!(a, b, "{model:?}");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn models_keep_base_endpoints() {
        let g = ring(8, LinkProfile::default());
        let plain = synthesize(&g, &base());
        let pareto = synthesize_arrivals(
            &g,
            &base(),
            &ArrivalModel::Pareto { alpha: 1.2, max_packets: 100 },
        );
        assert_eq!(plain.len(), pareto.len());
        for (p, q) in plain.iter().zip(&pareto) {
            assert_eq!((p.src, p.dst, p.start), (q.src, q.dst, q.start));
        }
    }

    #[test]
    fn pareto_sizes_are_heavy_tailed() {
        let g = ring(16, LinkProfile::default());
        let w = Workload { flows: 400, ..base() };
        let w = Workload { pattern: TrafficPattern::Uniform, ..w };
        let flows =
            synthesize_arrivals(&g, &w, &ArrivalModel::Pareto { alpha: 1.1, max_packets: 10_000 });
        let counts: Vec<u64> = flows.iter().map(UdpFlowSpec::datagram_count).collect();
        let min = w.packets_per_flow;
        assert!(counts.iter().all(|&c| c >= min));
        assert!(counts.iter().any(|&c| c >= 4 * min), "some elephants exist");
        let mice = counts.iter().filter(|&&c| c < 2 * min).count();
        assert!(mice * 2 > counts.len(), "most flows stay small");
    }

    #[test]
    fn on_off_bursts_preserve_datagram_budget() {
        let g = ring(4, LinkProfile::default());
        let w = base();
        let flows = synthesize_arrivals(
            &g,
            &w,
            &ArrivalModel::OnOff { burst_packets: 3, off: SimTime::from_millis(7) },
        );
        let total: u64 = flows.iter().map(UdpFlowSpec::datagram_count).sum();
        let plain: u64 = synthesize(&g, &w).iter().map(UdpFlowSpec::datagram_count).sum();
        assert_eq!(total, plain, "bursting only reshapes timing");
        assert!(flows.len() > synthesize(&g, &w).len(), "flows split into bursts");
        assert!(flows.iter().all(|f| f.datagram_count() <= 3));
    }

    #[test]
    fn diurnal_starts_stay_in_window_and_cluster() {
        let g = ring(16, LinkProfile::default());
        let w = Workload {
            pattern: TrafficPattern::Uniform,
            flows: 600,
            spread: SimTime::from_millis(100),
            ..base()
        };
        let flows =
            synthesize_arrivals(&g, &w, &ArrivalModel::Diurnal { periods: 1, trough_pct: 5 });
        let lo = w.start;
        let hi = w.start + w.spread;
        assert!(flows.iter().all(|f| f.start >= lo && f.start < hi));
        // One peak at the window's start (cos peaks at phase 0): the first
        // quarter must hold well over a quarter of the starts.
        let q1 = w.start + SimTime::from_micros(w.spread.as_micros() / 4);
        let early = flows.iter().filter(|f| f.start < q1).count();
        assert!(early * 10 > flows.len() * 3, "load clusters at the peak, got {early}/600");
    }
}
