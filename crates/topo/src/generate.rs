//! Parametric topology generators.
//!
//! Every generator returns a [`GenTopology`]: a [`SimTopology`] plus the
//! host list and a display name. Construction is fully deterministic — the
//! random Waxman generator draws from the vendored seeded [`rand`] shim, so
//! equal parameters always give byte-identical topologies.

use std::collections::BTreeMap;

use netkat::Loc;
use netsim::{LinkSpec, SimTime, SimTopology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First generated host id: keeps host ids disjoint from switch ids for any
/// realistically sized topology (the largest supported fat-tree has
/// `5·64²/4 = 5120` switches).
pub const HOST_BASE: u64 = 10_000;

/// Latency/capacity profile applied uniformly to a class of links.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkProfile {
    /// Propagation latency.
    pub latency: SimTime,
    /// Capacity in bytes per second; `None` = infinite.
    pub capacity: Option<u64>,
}

impl LinkProfile {
    /// A profile with the given latency and infinite capacity.
    pub fn new(latency: SimTime) -> LinkProfile {
        LinkProfile { latency, capacity: None }
    }

    /// Sets the capacity (builder style).
    pub fn with_capacity(mut self, bytes_per_sec: u64) -> LinkProfile {
        self.capacity = Some(bytes_per_sec);
        self
    }

    fn link(&self, src: Loc, dst: Loc) -> LinkSpec {
        LinkSpec { src, dst, latency: self.latency, capacity: self.capacity }
    }
}

impl Default for LinkProfile {
    /// 50 µs, infinite capacity — the latency the hand-built case-study
    /// topologies use.
    fn default() -> LinkProfile {
        LinkProfile::new(SimTime::from_micros(50))
    }
}

/// Per-tier link profiles for hierarchical (fat-tree) topologies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TierProfile {
    /// Latency of host attachment links.
    pub host_latency: SimTime,
    /// Edge ↔ aggregation links.
    pub edge_agg: LinkProfile,
    /// Aggregation ↔ core links.
    pub agg_core: LinkProfile,
}

impl Default for TierProfile {
    /// 10 µs host links, 20 µs edge↔agg, 50 µs agg↔core, all uncapped.
    fn default() -> TierProfile {
        TierProfile {
            host_latency: SimTime::from_micros(10),
            edge_agg: LinkProfile::new(SimTime::from_micros(20)),
            agg_core: LinkProfile::new(SimTime::from_micros(50)),
        }
    }
}

/// A generated topology: the simulation topology, its hosts, and a name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GenTopology {
    name: String,
    topo: SimTopology,
    hosts: Vec<u64>,
}

impl GenTopology {
    fn new(name: String, topo: SimTopology) -> GenTopology {
        let hosts = topo.hosts().map(|(h, _)| h).collect();
        GenTopology { name, topo, hosts }
    }

    /// Wraps an existing (e.g. hand-built) topology so routing and workload
    /// synthesis can run on it too.
    pub fn from_sim(name: impl Into<String>, topo: SimTopology) -> GenTopology {
        GenTopology::new(name.into(), topo)
    }

    /// A display name, e.g. `fat-tree(4)`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulation topology.
    pub fn sim(&self) -> &SimTopology {
        &self.topo
    }

    /// Consumes the wrapper, returning the simulation topology.
    pub fn into_sim(self) -> SimTopology {
        self.topo
    }

    /// The host ids, in ascending order.
    pub fn hosts(&self) -> &[u64] {
        &self.hosts
    }

    /// A host's attachment location.
    pub fn attachment(&self, host: u64) -> Option<Loc> {
        self.topo.attachment(host)
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.topo.switches().len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of directed inter-switch links.
    pub fn link_count(&self) -> usize {
        self.topo.links().len()
    }
}

/// A linear chain of `n` switches, one host each.
///
/// Ports: 1 = toward the next switch, 2 = toward the previous, 3 = host.
/// Hosts are `HOST_BASE + i` for switch `i`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linear(n: u64, profile: LinkProfile) -> GenTopology {
    assert!(n >= 1, "linear(n) needs n >= 1");
    let mut topo = SimTopology::new(1..=n);
    for sw in 1..=n {
        topo = topo.host(HOST_BASE + sw, Loc::new(sw, 3));
        if sw < n {
            topo = topo.bilink(
                Loc::new(sw, 1),
                Loc::new(sw + 1, 2),
                profile.latency,
                profile.capacity,
            );
        }
    }
    GenTopology::new(format!("linear({n})"), topo)
}

/// A ring of `n` switches, one host each.
///
/// Uses the Section 5.2 ring conventions: port 1 = clockwise neighbour,
/// port 2 = counterclockwise, port 3 = host; link `i` connects switch `i`'s
/// port 1 to switch `i+1`'s port 2 (wrapping). Hosts are `HOST_BASE + i`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ring(n: u64, profile: LinkProfile) -> GenTopology {
    assert!(n >= 2, "ring(n) needs n >= 2");
    let mut topo = SimTopology::new(1..=n);
    for sw in 1..=n {
        topo = topo.host(HOST_BASE + sw, Loc::new(sw, 3));
        let next = sw % n + 1;
        topo = topo.bilink(Loc::new(sw, 1), Loc::new(next, 2), profile.latency, profile.capacity);
    }
    GenTopology::new(format!("ring({n})"), topo)
}

/// A `rows × cols` grid (mesh) of switches, one host each.
///
/// Switch at row `r`, column `c` (0-based) has id `r·cols + c + 1`.
/// Ports: 1 = north, 2 = south, 3 = east, 4 = west, 5 = host.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: u64, cols: u64, profile: LinkProfile) -> GenTopology {
    assert!(rows >= 1 && cols >= 1, "grid needs both dimensions >= 1");
    mesh(rows, cols, false, profile)
}

/// A `rows × cols` torus: the grid with wrap-around links in both
/// dimensions.
///
/// Same id/port conventions as [`grid`].
///
/// # Panics
///
/// Panics if either dimension is `< 2` (wrap-around would self-loop).
pub fn torus(rows: u64, cols: u64, profile: LinkProfile) -> GenTopology {
    assert!(rows >= 2 && cols >= 2, "torus needs both dimensions >= 2");
    mesh(rows, cols, true, profile)
}

const NORTH: u64 = 1;
const SOUTH: u64 = 2;
const EAST: u64 = 3;
const WEST: u64 = 4;

fn mesh(rows: u64, cols: u64, wrap: bool, profile: LinkProfile) -> GenTopology {
    let id = |r: u64, c: u64| r * cols + c + 1;
    let n = rows * cols;
    let mut topo = SimTopology::new(1..=n);
    for r in 0..rows {
        for c in 0..cols {
            let sw = id(r, c);
            topo = topo.host(HOST_BASE + sw, Loc::new(sw, 5));
            // Eastward edge (wrapping if a torus).
            if c + 1 < cols || wrap && cols > 1 {
                let e = id(r, (c + 1) % cols);
                topo = topo.bilink(
                    Loc::new(sw, EAST),
                    Loc::new(e, WEST),
                    profile.latency,
                    profile.capacity,
                );
            }
            // Southward edge.
            if r + 1 < rows || wrap && rows > 1 {
                let s = id((r + 1) % rows, c);
                topo = topo.bilink(
                    Loc::new(sw, SOUTH),
                    Loc::new(s, NORTH),
                    profile.latency,
                    profile.capacity,
                );
            }
        }
    }
    let kind = if wrap { "torus" } else { "grid" };
    GenTopology::new(format!("{kind}({rows}x{cols})"), topo)
}

/// A `k`-ary fat-tree (Al-Fares et al.): `k` pods of `k/2` edge and `k/2`
/// aggregation switches plus `(k/2)²` core switches — `5k²/4` switches in
/// total — and `k³/4` hosts, `k/2` per edge switch.
///
/// Ids: cores first (`1..=(k/2)²`), then per pod the aggregation switches
/// followed by the edge switches. Edge and aggregation switches use ports
/// `1..=k/2` for their up-links and `k/2+1..=k` for their down-links; core
/// switch ports `1..=k` lead to pods `0..k` in order.
///
/// # Panics
///
/// Panics unless `k` is even and `>= 2`.
pub fn fat_tree(k: u64, profile: TierProfile) -> GenTopology {
    assert!(k >= 2 && k % 2 == 0, "fat_tree(k) needs even k >= 2");
    let half = k / 2;
    let cores = half * half;
    let agg_id = |p: u64, a: u64| 1 + cores + p * k + a;
    let edge_id = |p: u64, e: u64| 1 + cores + p * k + half + e;
    let mut topo = SimTopology::new(1..=cores + k * k).with_host_latency(profile.host_latency);
    let mut links = Vec::new();
    for p in 0..k {
        for e in 0..half {
            // Edge up-links: edge port 1+a ↔ agg down port half+1+e.
            for a in 0..half {
                let up = Loc::new(edge_id(p, e), 1 + a);
                let down = Loc::new(agg_id(p, a), half + 1 + e);
                links.push(profile.edge_agg.link(up, down));
                links.push(profile.edge_agg.link(down, up));
            }
            // Hosts on edge down ports.
            for s in 0..half {
                let h = HOST_BASE + (p * half + e) * half + s;
                topo = topo.host(h, Loc::new(edge_id(p, e), half + 1 + s));
            }
        }
        // Aggregation up-links: agg a serves cores [a·half, (a+1)·half).
        for a in 0..half {
            for i in 0..half {
                let core = 1 + a * half + i;
                let up = Loc::new(agg_id(p, a), 1 + i);
                let down = Loc::new(core, 1 + p);
                links.push(profile.agg_core.link(up, down));
                links.push(profile.agg_core.link(down, up));
            }
        }
    }
    GenTopology::new(format!("fat-tree({k})"), topo.extend_links(links))
}

/// Parameters of the [`waxman`] random-graph generator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WaxmanParams {
    /// RNG seed: equal seeds give identical topologies.
    pub seed: u64,
    /// Edge density knob (`0 < α ≤ 1`): scales every edge probability.
    pub alpha: f64,
    /// Distance decay knob (`0 < β ≤ 1`): larger values keep long edges
    /// likely.
    pub beta: f64,
    /// Profile applied to every generated link.
    pub profile: LinkProfile,
}

impl Default for WaxmanParams {
    fn default() -> WaxmanParams {
        WaxmanParams { seed: 1, alpha: 0.4, beta: 0.4, profile: LinkProfile::default() }
    }
}

/// A seeded Waxman-style random graph over `n` switches, one host each.
///
/// Switches are placed uniformly on a 1000×1000 plane; each pair is linked
/// with probability `α·exp(−d / (β·L))` where `d` is their distance and `L`
/// the plane diagonal. The result is then made connected by deterministic
/// bridge edges between components. Ports are allocated densely per switch
/// (`1..`), with the host on the last port.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn waxman(n: u64, params: WaxmanParams) -> GenTopology {
    assert!(n >= 1, "waxman(n) needs n >= 1");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0..1_000u64) as f64, rng.gen_range(0..1_000u64) as f64))
        .collect();
    let diagonal = (2.0f64).sqrt() * 1_000.0;
    // Accept undirected edges with the Waxman probability.
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let (xi, yi) = points[i as usize];
            let (xj, yj) = points[j as usize];
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let p = params.alpha * (-d / (params.beta * diagonal)).exp();
            let threshold = (p * 1_000_000.0) as u64;
            if rng.gen_range(0..1_000_000u64) < threshold {
                edges.push((i + 1, j + 1));
            }
        }
    }
    // Bridge components so every generated graph is usable as a network:
    // link each component's lowest switch to switch 1's component.
    let mut comp: Vec<u64> = (0..=n).collect();
    fn find(comp: &mut [u64], x: u64) -> u64 {
        let mut root = x;
        while comp[root as usize] != root {
            root = comp[root as usize];
        }
        let mut at = x;
        while comp[at as usize] != root {
            let next = comp[at as usize];
            comp[at as usize] = root;
            at = next;
        }
        root
    }
    for &(a, b) in &edges {
        let (ra, rb) = (find(&mut comp, a), find(&mut comp, b));
        comp[ra.max(rb) as usize] = ra.min(rb);
    }
    for sw in 2..=n {
        let (r1, rs) = (find(&mut comp, 1), find(&mut comp, sw));
        if rs != r1 {
            edges.push((1, sw));
            comp[rs as usize] = r1;
        }
    }
    edges.sort_unstable();
    // Dense per-switch port allocation, host on the last port.
    let mut next_port: BTreeMap<u64, u64> = (1..=n).map(|s| (s, 1)).collect();
    let alloc = |sw: u64, ports: &mut BTreeMap<u64, u64>| {
        let p = ports[&sw];
        ports.insert(sw, p + 1);
        p
    };
    let mut topo = SimTopology::new(1..=n);
    for (a, b) in edges {
        let pa = alloc(a, &mut next_port);
        let pb = alloc(b, &mut next_port);
        topo = topo.bilink(
            Loc::new(a, pa),
            Loc::new(b, pb),
            params.profile.latency,
            params.profile.capacity,
        );
    }
    for sw in 1..=n {
        let p = alloc(sw, &mut next_port);
        topo = topo.host(HOST_BASE + sw, Loc::new(sw, p));
    }
    GenTopology::new(format!("waxman({n},seed={})", params.seed), topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shape() {
        let g = linear(5, LinkProfile::default());
        assert_eq!(g.switch_count(), 5);
        assert_eq!(g.host_count(), 5);
        assert_eq!(g.link_count(), 8);
        assert_eq!(g.attachment(HOST_BASE + 3), Some(Loc::new(3, 3)));
        assert_eq!(g.name(), "linear(5)");
    }

    #[test]
    fn ring_shape() {
        let g = ring(6, LinkProfile::default());
        assert_eq!(g.switch_count(), 6);
        assert_eq!(g.link_count(), 12);
        // Clockwise port 1 of switch 6 wraps to switch 1's port 2.
        let l = g.sim().link_from(Loc::new(6, 1)).expect("wrap link");
        assert_eq!(l.dst, Loc::new(1, 2));
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(3, 4, LinkProfile::default());
        assert_eq!(g.switch_count(), 12);
        // Undirected edges: 3·3 horizontal + 2·4 vertical = 17 → 34 links.
        assert_eq!(g.link_count(), 34);
        let t = torus(3, 4, LinkProfile::default());
        // Torus: every switch has degree 4 → 2·12 undirected → 48 directed.
        assert_eq!(t.link_count(), 48);
    }

    #[test]
    fn fat_tree_counts() {
        for k in [2u64, 4, 6, 8] {
            let g = fat_tree(k, TierProfile::default());
            assert_eq!(g.switch_count() as u64, 5 * k * k / 4, "fat-tree({k}) switches");
            assert_eq!(g.host_count() as u64, k * k * k / 4, "fat-tree({k}) hosts");
            // Directed links: k³/2 edge↔agg + k³/2 agg↔core.
            assert_eq!(g.link_count() as u64, k * k * k, "fat-tree({k}) links");
        }
    }

    #[test]
    fn fat_tree_core_wiring_is_a_clean_bipartite_round_robin() {
        let g = fat_tree(4, TierProfile::default());
        // Every core switch has exactly k links (one per pod).
        let adj = g.sim().switch_adjacency();
        for core in 1..=4u64 {
            assert_eq!(adj[&core].len(), 4, "core {core} degree");
        }
    }

    #[test]
    fn waxman_is_seed_deterministic_and_connected() {
        let p = WaxmanParams::default();
        let a = waxman(24, p);
        let b = waxman(24, p);
        assert_eq!(a, b, "same seed, same topology");
        let c = waxman(24, WaxmanParams { seed: 2, ..p });
        assert_ne!(a, c, "different seed, different graph");
        // Connectivity: every switch routes to switch 1.
        let next = a.sim().next_hop_ports(1);
        assert_eq!(next.len(), 23);
    }
}
