//! Workload synthesis: seeded traffic matrices over generated topologies.
//!
//! A [`Workload`] describes *what* traffic to offer (pattern, flow count,
//! rate, sizes); [`synthesize`] turns it into concrete
//! [`UdpFlowSpec`]s — the existing `netsim::traffic` scheduling primitive —
//! and [`schedule`] injects them into an engine. All sampling comes from the
//! vendored deterministic RNG, so equal seeds give byte-identical traffic.

use netsim::traffic::{udp_flow_datagrams, UdpFlowSpec};
use netsim::{DataPlane, Engine, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::generate::GenTopology;

/// The shape of a synthetic traffic matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficPattern {
    /// Each flow's source and destination are independent uniform draws
    /// (distinct from each other) — uniform all-to-all load.
    Uniform,
    /// A few destinations absorb most flows: `hotspots` seeded targets
    /// receive `bias_pct`% of the traffic; the rest is uniform.
    Hotspot {
        /// Number of hotspot destination hosts.
        hotspots: usize,
        /// Percentage (0–100) of flows aimed at a hotspot.
        bias_pct: u8,
    },
    /// A seeded permutation: every host sends one flow to a distinct
    /// partner (a derangement, so nobody talks to itself). Ignores
    /// [`Workload::flows`] — the flow count is the host count.
    Permutation,
}

/// A parametric workload over a generated topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Workload {
    /// The traffic matrix shape.
    pub pattern: TrafficPattern,
    /// RNG seed; equal seeds give identical flows.
    pub seed: u64,
    /// Number of flows (ignored for [`TrafficPattern::Permutation`]).
    pub flows: usize,
    /// Datagrams per flow.
    pub packets_per_flow: u64,
    /// Gap between a flow's consecutive datagrams.
    pub interval: SimTime,
    /// Datagram payload size in bytes.
    pub size: u32,
    /// Earliest flow start.
    pub start: SimTime,
    /// Flow starts are jittered uniformly over `[start, start + spread)`.
    pub spread: SimTime,
}

impl Default for Workload {
    /// 64 uniform flows of twenty 512-byte datagrams at 1 ms spacing,
    /// starting within the first 10 ms.
    fn default() -> Workload {
        Workload {
            pattern: TrafficPattern::Uniform,
            seed: 1,
            flows: 64,
            packets_per_flow: 20,
            interval: SimTime::from_millis(1),
            size: 512,
            start: SimTime::ZERO,
            spread: SimTime::from_millis(10),
        }
    }
}

/// Synthesizes the workload's concrete flows over a topology's hosts.
///
/// Flow ids are `0..` in synthesis order. Sources and destinations are
/// always distinct hosts of `gen`.
///
/// # Panics
///
/// Panics if the topology has fewer than two hosts.
pub fn synthesize(gen: &GenTopology, w: &Workload) -> Vec<UdpFlowSpec> {
    let hosts = gen.hosts();
    assert!(hosts.len() >= 2, "workload synthesis needs at least two hosts");
    let mut rng = StdRng::seed_from_u64(w.seed);
    let pairs: Vec<(u64, u64)> = match w.pattern {
        TrafficPattern::Uniform => (0..w.flows)
            .map(|_| {
                let s = *hosts.choose(&mut rng).expect("nonempty");
                let mut d = *hosts.choose(&mut rng).expect("nonempty");
                while d == s {
                    d = *hosts.choose(&mut rng).expect("nonempty");
                }
                (s, d)
            })
            .collect(),
        TrafficPattern::Hotspot { hotspots, bias_pct } => {
            let mut targets = hosts.to_vec();
            targets.shuffle(&mut rng);
            targets.truncate(hotspots.clamp(1, hosts.len()));
            (0..w.flows)
                .map(|_| {
                    let s = *hosts.choose(&mut rng).expect("nonempty");
                    let hot = rng.gen_range(0..100u64) < u64::from(bias_pct.min(100));
                    // Fall back to the full pool when the hotspot pool has
                    // no host other than the source (a lone hotspot can be
                    // the source itself; redrawing would never terminate).
                    let pool =
                        if hot && targets.iter().any(|&t| t != s) { &targets } else { hosts };
                    let mut d = *pool.choose(&mut rng).expect("nonempty");
                    while d == s {
                        d = *pool.choose(&mut rng).expect("nonempty");
                    }
                    (s, d)
                })
                .collect()
        }
        TrafficPattern::Permutation => {
            // A seeded derangement: shuffle, then send to the next host in
            // the shuffled cycle — never yourself, everyone exactly once.
            let mut order = hosts.to_vec();
            order.shuffle(&mut rng);
            (0..order.len()).map(|i| (order[i], order[(i + 1) % order.len()])).collect()
        }
    };
    pairs
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst))| {
            let jitter = if w.spread == SimTime::ZERO {
                SimTime::ZERO
            } else {
                SimTime::from_micros(rng.gen_range(0..w.spread.as_micros()))
            };
            let start = w.start + jitter;
            let duration = SimTime::from_micros(w.interval.as_micros() * w.packets_per_flow);
            UdpFlowSpec {
                flow: i as u64,
                src,
                dst,
                start,
                end: start + duration,
                interval: w.interval,
                size: w.size,
            }
        })
        .collect()
}

/// Schedules synthesized flows on an engine in **one** batched queue fill:
/// the event slab and queue are pre-sized for the whole workload up front,
/// and the datagrams stream straight from the flow specs (never
/// materialized as a side buffer). Returns the total datagram count.
pub fn schedule<D: DataPlane>(engine: &mut Engine<D>, flows: &[UdpFlowSpec]) -> u64 {
    let total: u64 = flows.iter().map(UdpFlowSpec::datagram_count).sum();
    engine.reserve_events(total as usize);
    engine.inject_batch(flows.iter().flat_map(udp_flow_datagrams));
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ring, LinkProfile};

    #[test]
    fn synthesis_is_seed_deterministic() {
        let g = ring(8, LinkProfile::default());
        let w = Workload::default();
        assert_eq!(synthesize(&g, &w), synthesize(&g, &w));
        let other = Workload { seed: 2, ..w };
        assert_ne!(synthesize(&g, &w), synthesize(&g, &other));
    }

    #[test]
    fn uniform_flows_have_distinct_endpoints() {
        let g = ring(4, LinkProfile::default());
        let flows = synthesize(&g, &Workload { flows: 100, ..Workload::default() });
        assert_eq!(flows.len(), 100);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn permutation_is_a_derangement() {
        let g = ring(9, LinkProfile::default());
        let w = Workload { pattern: TrafficPattern::Permutation, ..Workload::default() };
        let flows = synthesize(&g, &w);
        assert_eq!(flows.len(), 9, "one flow per host");
        assert!(flows.iter().all(|f| f.src != f.dst));
        let mut sources: Vec<u64> = flows.iter().map(|f| f.src).collect();
        let mut dests: Vec<u64> = flows.iter().map(|f| f.dst).collect();
        sources.sort_unstable();
        dests.sort_unstable();
        assert_eq!(sources, g.hosts(), "every host sends once");
        assert_eq!(dests, g.hosts(), "every host receives once");
    }

    #[test]
    fn single_hotspot_with_full_bias_terminates() {
        // Regression: with one hotspot, a flow whose source *is* the
        // hotspot used to redraw forever from a one-element pool.
        let g = ring(4, LinkProfile::default());
        let w = Workload {
            pattern: TrafficPattern::Hotspot { hotspots: 1, bias_pct: 100 },
            flows: 200,
            ..Workload::default()
        };
        let flows = synthesize(&g, &w);
        assert_eq!(flows.len(), 200);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn hotspot_bias_concentrates_traffic() {
        let g = ring(16, LinkProfile::default());
        let w = Workload {
            pattern: TrafficPattern::Hotspot { hotspots: 2, bias_pct: 90 },
            flows: 200,
            ..Workload::default()
        };
        let flows = synthesize(&g, &w);
        // Count flows into the two most popular destinations.
        let mut by_dst = std::collections::BTreeMap::<u64, usize>::new();
        for f in &flows {
            *by_dst.entry(f.dst).or_default() += 1;
        }
        let mut counts: Vec<usize> = by_dst.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top2: usize = counts.iter().take(2).sum();
        assert!(top2 > 120, "two hotspots absorb most of 200 flows, got {top2}");
    }

    #[test]
    fn jitter_stays_in_the_spread_window() {
        let g = ring(4, LinkProfile::default());
        let w = Workload {
            start: SimTime::from_millis(5),
            spread: SimTime::from_millis(2),
            ..Workload::default()
        };
        for f in synthesize(&g, &w) {
            assert!(f.start >= SimTime::from_millis(5) && f.start < SimTime::from_millis(7));
        }
    }
}
