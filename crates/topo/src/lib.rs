//! # edn-topo — parametric topology & workload generation
//!
//! The paper's evaluation runs on tiny hand-built topologies (one firewall
//! switch, a 4-switch ring). This crate is the scale unlock: it *generates*
//! topologies — fat-tree(k), grid/torus(m,n), ring(n), linear(n), and
//! seeded Waxman-style random graphs — as [`SimTopology`](netsim::SimTopology)
//! values with per-tier link profiles, synthesizes shortest-path forwarding
//! state for them, and layers seeded traffic matrices (uniform all-to-all,
//! hotspot, permutation) on top of the `netsim::traffic` scheduling
//! primitives. Everything is deterministic given the parameters and seed,
//! so scale benchmarks reproduce byte-for-byte.
//!
//! ```
//! use edn_topo::{fat_tree, shortest_path_config, synthesize, schedule,
//!                TierProfile, TrafficPattern, Workload};
//! use netsim::SimTime;
//!
//! // A 16-host fat-tree with all-pairs shortest-path forwarding…
//! let topo = fat_tree(4, TierProfile::default());
//! assert_eq!(topo.switch_count(), 20); // 5k²/4
//! assert_eq!(topo.host_count(), 16);   // k³/4
//! let config = shortest_path_config(&topo);
//! assert_eq!(config.rule_count(), 20 * 16);
//!
//! // …and a seeded permutation traffic matrix across it.
//! let workload =
//!     Workload { pattern: TrafficPattern::Permutation, seed: 7, ..Workload::default() };
//! let flows = synthesize(&topo, &workload);
//! assert_eq!(flows.len(), 16);
//! ```

#![warn(missing_docs)]

mod generate;
mod mobility;
mod partition;
mod route;
mod stream;
mod workload;

pub use generate::{
    fat_tree, grid, linear, ring, torus, waxman, GenTopology, LinkProfile, TierProfile,
    WaxmanParams, HOST_BASE,
};
pub use mobility::{
    free_port, mobile_twin, rehome, rehomed_rules, with_mobile_twin, MOBILE_TWIN_OFFSET,
};
pub use netsim::Partition;
pub use partition::{partition, partition_sim};
pub use route::{
    all_hosts_connected, config_from_rules, rules_toward, shortest_path_config, shortest_path_rules,
};
pub use stream::{attach_stream, synthesize_arrivals, ArrivalModel};
pub use workload::{schedule, synthesize, TrafficPattern, Workload};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Fat-tree(k) has exactly `5k²/4` switches, `k³/4` hosts, and every
        /// host pair is connected.
        #[test]
        fn fat_tree_invariants(half in 1u64..=4) {
            let k = 2 * half;
            let g = fat_tree(k, TierProfile::default());
            prop_assert_eq!(g.switch_count() as u64, 5 * k * k / 4);
            prop_assert_eq!(g.host_count() as u64, k * k * k / 4);
            prop_assert!(all_hosts_connected(&g));
        }

        /// Rings and grids are connected, and their shortest-path configs
        /// carry one rule per (switch, host) pair.
        #[test]
        fn flat_generators_are_connected(n in 2u64..=12) {
            for g in [ring(n, LinkProfile::default()), linear(n, LinkProfile::default())] {
                prop_assert!(all_hosts_connected(&g), "{} disconnected", g.name());
                let config = shortest_path_config(&g);
                prop_assert_eq!(config.rule_count(), (n * n) as usize);
            }
        }

        /// Torus routes never exceed the half-perimeter bound.
        #[test]
        fn torus_diameter_bound(rows in 2u64..=5, cols in 2u64..=5) {
            let g = torus(rows, cols, LinkProfile::default());
            let switches: Vec<u64> = g.sim().switches().to_vec();
            for &dst in &switches {
                for &src in &switches {
                    if src == dst { continue; }
                    let path = g.sim().route(src, dst).expect("torus is connected");
                    prop_assert!(
                        path.len() as u64 <= rows / 2 + cols / 2,
                        "route {src}->{dst} took {} hops", path.len()
                    );
                }
            }
        }

        /// Waxman graphs are connected (bridged) and seed-deterministic for
        /// any parameters.
        #[test]
        fn waxman_connected_and_deterministic(n in 2u64..=24, seed in 0u64..=5) {
            let params = WaxmanParams { seed, ..WaxmanParams::default() };
            let g = waxman(n, params);
            prop_assert!(all_hosts_connected(&g));
            prop_assert_eq!(&g, &waxman(n, params));
        }

        /// Workload synthesis only ever names hosts of the topology.
        #[test]
        fn workloads_stay_on_topology_hosts(n in 2u64..=10, seed in 0u64..=3) {
            let g = ring(n, LinkProfile::default());
            for pattern in [
                TrafficPattern::Uniform,
                TrafficPattern::Hotspot { hotspots: 2, bias_pct: 80 },
                TrafficPattern::Permutation,
            ] {
                let w = Workload { pattern, seed, flows: 16, ..Workload::default() };
                for f in synthesize(&g, &w) {
                    prop_assert!(g.hosts().contains(&f.src));
                    prop_assert!(g.hosts().contains(&f.dst));
                    prop_assert!(f.src != f.dst);
                }
            }
        }
    }
}
