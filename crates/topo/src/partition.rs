//! Topology partitioning for the sharded simulator.
//!
//! A thin, generator-aware wrapper over [`netsim::Partition`]: the greedy
//! BFS edge-cut partitioner that gives every switch and host exactly one
//! owning shard, enumerates the cut (cross-shard) links, and derives the
//! conservative-synchronization lookahead. Deterministic for a given
//! topology and shard count, so sharded benchmark runs reproduce exactly.

use netsim::{Partition, SimTopology};

use crate::generate::GenTopology;

/// Partitions a generated topology into (at most) `shards` shards.
///
/// See [`netsim::Partition::compute`] for the algorithm and guarantees:
/// every switch and host is owned by exactly one shard, hosts follow
/// their attachment switch, `shards` is clamped to the switch count, and
/// `shards <= 1` is the identity partition.
pub fn partition(gen: &GenTopology, shards: u32) -> Partition {
    partition_sim(gen.sim(), shards)
}

/// [`partition`] over a raw [`SimTopology`].
pub fn partition_sim(topo: &SimTopology, shards: u32) -> Partition {
    Partition::compute(topo, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{fat_tree, ring, waxman, LinkProfile, TierProfile, WaxmanParams};
    use proptest::prelude::*;

    /// Every switch and host of `gen` is owned by exactly one shard, and
    /// the shard ids are within range.
    fn assert_total_ownership(gen: &GenTopology, p: &Partition) {
        let k = p.shard_count();
        let mut owned = 0usize;
        for s in 0..k {
            for &sw in p.members(s) {
                assert_eq!(p.owner_of(sw), Some(s), "membership and ownership agree");
                owned += 1;
            }
        }
        assert_eq!(owned, gen.switch_count(), "every switch appears in exactly one member list");
        for &sw in gen.sim().switches() {
            let o = p.owner_of(sw).expect("switch owned");
            assert!(o < k);
        }
        for (h, loc) in gen.sim().hosts() {
            assert_eq!(p.owner_of(h), p.owner_of(loc.sw), "hosts follow their attachment switch");
        }
    }

    /// `cut_links` is exactly the set of links whose endpoints differ in
    /// owner.
    fn assert_cut_links_exact(gen: &GenTopology, p: &Partition) {
        let cut: std::collections::BTreeSet<u32> = p.cut_links().iter().copied().collect();
        for (i, l) in gen.sim().links().iter().enumerate() {
            let crosses = p.owner_of(l.src.sw) != p.owner_of(l.dst.sw);
            assert_eq!(
                cut.contains(&(i as u32)),
                crosses,
                "link {i} ({}->{}) cut-classification wrong",
                l.src.sw,
                l.dst.sw
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ring partitions: total ownership, exact cut enumeration, and
        /// K=1 identity.
        #[test]
        fn ring_partitions_are_total_and_cut_exact(n in 2u64..24, k in 1u32..9) {
            let gen = ring(n, LinkProfile::default());
            let p = partition(&gen, k);
            prop_assert!(p.shard_count() >= 1 && p.shard_count() <= k.max(1));
            prop_assert!(p.shard_count() as u64 <= n);
            assert_total_ownership(&gen, &p);
            assert_cut_links_exact(&gen, &p);
            // No shard is empty once clamped.
            for s in 0..p.shard_count() {
                prop_assert!(!p.members(s).is_empty(), "shard {s} is empty");
            }
        }

        /// K=1 partitioning is the identity: one shard owning everything,
        /// no cut links.
        #[test]
        fn single_shard_partition_is_identity(n in 2u64..24) {
            let gen = ring(n, LinkProfile::default());
            let p = partition(&gen, 1);
            prop_assert_eq!(p.shard_count(), 1);
            prop_assert!(p.cut_links().is_empty());
            prop_assert_eq!(p.members(0).len() as u64, n);
            for &sw in gen.sim().switches() {
                prop_assert_eq!(p.owner_of(sw), Some(0));
            }
        }

        /// Fat-trees: ownership total, cuts exact, shards balanced to
        /// within the BFS greedy bound (ceil(n/k) per shard).
        #[test]
        fn fat_tree_partitions_balance(half in 1u64..=3, k in 1u32..7) {
            let gen = fat_tree(2 * half, TierProfile::default());
            let p = partition(&gen, k);
            assert_total_ownership(&gen, &p);
            assert_cut_links_exact(&gen, &p);
            let bound = gen.switch_count().div_ceil(p.shard_count() as usize);
            for s in 0..p.shard_count() {
                prop_assert!(p.members(s).len() <= bound, "shard {} over target", s);
            }
        }

        /// Seeded random graphs (possibly disconnected): ownership stays
        /// total and cuts exact.
        #[test]
        fn waxman_partitions_are_total(n in 2u64..20, seed in 0u64..500, k in 1u32..6) {
            let gen = waxman(n, WaxmanParams { seed, ..WaxmanParams::default() });
            let p = partition(&gen, k);
            assert_total_ownership(&gen, &p);
            assert_cut_links_exact(&gen, &p);
        }
    }
}
