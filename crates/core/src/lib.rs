//! # Event-driven consistent updates
//!
//! The semantic core of *Event-Driven Network Programming* (McClurg, Hojjat,
//! Foster, Černý — PLDI 2016): network traces and the happens-before
//! relation (Definition 1), event-driven consistent updates (Definition 2),
//! event structures (Definitions 3–4), network event structures
//! (Definition 5), correct network traces (Definition 6), event-driven
//! transition systems (Definition 7) with their conversion to NESs
//! (Section 3.1), and the locality restrictions of Section 2.
//!
//! The crate is a *checker* as much as a model: given any recorded network
//! trace — e.g. from the `netsim` simulator driven by the `nes-runtime`
//! implementation strategy — [`check_correct`] decides whether the run obeys
//! the paper's consistency condition, with precise diagnostics when not.
//!
//! ```
//! use edn_core::{Config, Event, EventId, EventSet, EventStructure,
//!                NetworkEventStructure, TraceBuilder, check_correct};
//! use netkat::{Loc, Packet, Pred};
//!
//! // A one-event NES whose configurations are both empty: every quiet
//! // trace is trivially correct.
//! let e0 = EventId::new(0);
//! let es = EventStructure::new(
//!     vec![Event::new(e0, Pred::True, Loc::new(4, 1))],
//!     [EventSet::singleton(e0)],
//! );
//! let nes = NetworkEventStructure::new(es, [
//!     (EventSet::empty(), Config::new()),
//!     (EventSet::singleton(e0), Config::new()),
//! ])?;
//! let ntr = TraceBuilder::new().build()?;
//! assert!(check_correct(&ntr, &nes, None).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod config;
mod correctness;
mod estructure;
mod ets;
mod event;
mod happens;
mod locality;
mod nes;
mod observe;
mod online;
mod trace;
mod update;

pub use config::{Config, ConfigDelta};
pub use correctness::{
    check_correct, sequence_allowed, sequence_to_update, CausalOccurrences, CorrectnessViolation,
};
pub use estructure::EventStructure;
pub use ets::{Ets, EtsError};
pub use event::{Event, EventId, EventSet};
pub use happens::HappensBefore;
pub use locality::{locally_determined, minimally_inconsistent};
pub use nes::{NesError, NetworkEventStructure};
pub use observe::{LeafKind, TraceObserver};
pub use online::{OnlineChecker, OnlineHandle, OnlineViolation};
pub use trace::{
    LocatedPacket, NetworkTrace, TraceBuilder, TraceMode, TraceParts, TraceStructureError,
};
pub use update::{
    check_update, first_occurrences, LiteralOccurrences, OccurrenceSemantics, UpdateSequence,
    UpdateViolation,
};
