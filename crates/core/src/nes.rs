//! Network event structures (Definition 5).

use std::collections::BTreeMap;
use std::fmt;

use crate::config::Config;
use crate::estructure::EventStructure;
use crate::event::{Event, EventId, EventSet};
use crate::locality;

/// Errors in NES construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NesError {
    /// A reachable event-set of the event structure has no configuration.
    MissingConfig(EventSet),
}

impl fmt::Display for NesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NesError::MissingConfig(s) => {
                write!(f, "event-set {s} has no configuration assigned")
            }
        }
    }
}

impl std::error::Error for NesError {}

/// A network event structure `(E, con, ⊢, g)`: an event structure plus a map
/// `g` from event-sets to network configurations.
///
/// # Examples
///
/// ```
/// use edn_core::{Config, Event, EventId, EventSet, EventStructure, NetworkEventStructure};
/// use netkat::{Loc, Pred};
/// let e0 = EventId::new(0);
/// let es = EventStructure::new(
///     vec![Event::new(e0, Pred::True, Loc::new(4, 1))],
///     [EventSet::singleton(e0)],
/// );
/// let g = [
///     (EventSet::empty(), Config::new()),
///     (EventSet::singleton(e0), Config::new()),
/// ];
/// let nes = NetworkEventStructure::new(es, g)?;
/// assert_eq!(nes.event_sets().len(), 2);
/// # Ok::<(), edn_core::NesError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetworkEventStructure {
    es: EventStructure,
    g: BTreeMap<EventSet, Config>,
}

impl NetworkEventStructure {
    /// Creates an NES, validating that `g` covers every reachable event-set.
    ///
    /// # Errors
    ///
    /// Returns [`NesError::MissingConfig`] if a reachable event-set of the
    /// structure has no configuration.
    pub fn new<I: IntoIterator<Item = (EventSet, Config)>>(
        es: EventStructure,
        g: I,
    ) -> Result<NetworkEventStructure, NesError> {
        let g: BTreeMap<EventSet, Config> = g.into_iter().collect();
        for s in es.event_sets() {
            if !g.contains_key(&s) {
                return Err(NesError::MissingConfig(s));
            }
        }
        Ok(NetworkEventStructure { es, g })
    }

    /// The underlying event structure.
    pub fn structure(&self) -> &EventStructure {
        &self.es
    }

    /// The events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        self.es.events()
    }

    /// The configuration `g(X)` for event-set `X`.
    ///
    /// # Panics
    ///
    /// Panics if `X` is not a reachable event-set (construction guarantees
    /// coverage of reachable sets).
    pub fn config(&self, x: EventSet) -> &Config {
        self.g.get(&x).unwrap_or_else(|| panic!("event-set {x} has no configuration"))
    }

    /// The initial configuration `g(∅)`.
    pub fn initial_config(&self) -> &Config {
        self.config(EventSet::empty())
    }

    /// The reachable event-sets (Definition 4).
    pub fn event_sets(&self) -> Vec<EventSet> {
        self.es.event_sets()
    }

    /// All allowed event sequences up to `max_len` (see
    /// [`EventStructure::allowed_sequences`]).
    pub fn allowed_sequences(&self, max_len: usize) -> Vec<Vec<EventId>> {
        self.es.allowed_sequences(max_len)
    }

    /// Whether the NES is locally-determined (Section 2), searching
    /// minimally-inconsistent sets up to size `max_size`.
    pub fn is_locally_determined(&self, max_size: usize) -> bool {
        locality::locally_determined(&self.es, max_size)
    }

    /// Total rule count over all configurations (for the optimizer and the
    /// evaluation tables).
    pub fn total_rules(&self) -> usize {
        self.g.values().map(Config::rule_count).sum()
    }
}

impl fmt::Display for NetworkEventStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.es)?;
        for (s, c) in &self.g {
            writeln!(f, "g({s}) = configuration with {} rules", c.rule_count())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Loc, Pred};

    fn one_event_structure() -> EventStructure {
        let e0 = EventId::new(0);
        EventStructure::new(
            vec![Event::new(e0, Pred::True, Loc::new(4, 1))],
            [EventSet::singleton(e0)],
        )
    }

    #[test]
    fn construction_requires_total_g() {
        let es = one_event_structure();
        let err = NetworkEventStructure::new(es.clone(), [(EventSet::empty(), Config::new())])
            .unwrap_err();
        assert_eq!(err, NesError::MissingConfig(EventSet::singleton(EventId::new(0))));
        let ok = NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), Config::new()),
                (EventSet::singleton(EventId::new(0)), Config::new()),
            ],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn config_lookup() {
        let es = one_event_structure();
        let mut c1 = Config::new();
        c1.add_host(7, Loc::new(1, 1));
        let nes = NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), Config::new()),
                (EventSet::singleton(EventId::new(0)), c1.clone()),
            ],
        )
        .unwrap();
        assert_eq!(nes.initial_config(), &Config::new());
        assert_eq!(nes.config(EventSet::singleton(EventId::new(0))), &c1);
    }

    #[test]
    fn locality_delegates() {
        let es = one_event_structure();
        let nes = NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), Config::new()),
                (EventSet::singleton(EventId::new(0)), Config::new()),
            ],
        )
        .unwrap();
        assert!(nes.is_locally_determined(4));
    }
}
