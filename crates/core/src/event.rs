//! Events and event-sets.
//!
//! An event `(ϕ, sw, pt)` models the arrival of a packet satisfying `ϕ` at
//! location `sw:pt` (Section 2 of the paper). Event-sets are represented as
//! 64-bit bitsets, which bounds a network event structure at 64 events —
//! ample for every workload in the paper (the largest, the bandwidth cap,
//! uses 12).

use std::fmt;

use netkat::{Loc, Packet, Pred};

/// Identifier of an event within a [`crate::EventStructure`].
///
/// Must be below 64 (enforced by [`EventId::new`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u8);

impl EventId {
    /// Maximum number of distinct events.
    pub const MAX_EVENTS: usize = 64;

    /// Creates an event identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 64`.
    pub fn new(id: usize) -> EventId {
        assert!(id < Self::MAX_EVENTS, "event id {id} out of range (max 63)");
        EventId(id as u8)
    }

    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An event `(ϕ, sw, pt)`: a packet satisfying `pred` arrives at `loc`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// The event's identifier (its index in the event structure).
    pub id: EventId,
    /// The predicate over packet header fields.
    pub pred: Pred,
    /// The location (switch and port) at which the event can occur.
    pub loc: Loc,
}

impl Event {
    /// Creates an event.
    pub fn new(id: EventId, pred: Pred, loc: Loc) -> Event {
        Event { id, pred, loc }
    }

    /// Returns `true` if a packet at `loc` matches this event
    /// (`lp ⊨ e` in the paper): same location, predicate satisfied.
    pub fn matches(&self, packet: &Packet, loc: Loc) -> bool {
        self.loc == loc && self.pred.eval(packet)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}=({}, {})", self.id, self.pred, self.loc)
    }
}

/// A set of events, represented as a bitset over [`EventId`]s.
///
/// # Examples
///
/// ```
/// use edn_core::{EventId, EventSet};
/// let a = EventSet::from_iter([EventId::new(0), EventId::new(3)]);
/// let b = EventSet::singleton(EventId::new(3));
/// assert!(b.is_subset(a));
/// assert_eq!(a.union(b), a);
/// assert_eq!(a.len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EventSet(u64);

impl EventSet {
    /// The empty event-set.
    pub const EMPTY: EventSet = EventSet(0);

    /// The empty event-set.
    pub fn empty() -> EventSet {
        EventSet::EMPTY
    }

    /// The singleton `{e}`.
    pub fn singleton(e: EventId) -> EventSet {
        EventSet(1 << e.0)
    }

    /// Returns `true` if `e ∈ self`.
    pub fn contains(self, e: EventId) -> bool {
        self.0 & (1 << e.0) != 0
    }

    /// Adds `e`, returning the extended set.
    pub fn insert(self, e: EventId) -> EventSet {
        EventSet(self.0 | (1 << e.0))
    }

    /// Removes `e`, returning the shrunk set.
    pub fn remove(self, e: EventId) -> EventSet {
        EventSet(self.0 & !(1 << e.0))
    }

    /// Set union.
    pub fn union(self, other: EventSet) -> EventSet {
        EventSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: EventSet) -> EventSet {
        EventSet(self.0 & other.0)
    }

    /// Set difference `self ∖ other`.
    pub fn difference(self, other: EventSet) -> EventSet {
        EventSet(self.0 & !other.0)
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset(self, other: EventSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if `self ⊂ other` strictly.
    pub fn is_proper_subset(self, other: EventSet) -> bool {
        self != other && self.is_subset(other)
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of events in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the members in increasing id order.
    ///
    /// Skips from set bit to set bit, so iterating the (common, hot-path)
    /// empty or near-empty set costs a few instructions rather than a
    /// 64-step scan.
    pub fn iter(self) -> impl Iterator<Item = EventId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            Some(EventId(i))
        })
    }

    /// The raw bitset, for carrying in a packet's digest field.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a set from raw digest bits.
    pub fn from_bits(bits: u64) -> EventSet {
        EventSet(bits)
    }

    /// Enumerates all subsets of `self` (including itself and the empty
    /// set). Intended for small sets.
    pub fn subsets(self) -> Vec<EventSet> {
        let members: Vec<EventId> = self.iter().collect();
        let mut out = Vec::with_capacity(1 << members.len());
        for mask in 0u64..(1 << members.len()) {
            let mut s = EventSet::empty();
            for (i, &e) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s = s.insert(e);
                }
            }
            out.push(s);
        }
        out
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> EventSet {
        iter.into_iter().fold(EventSet::empty(), EventSet::insert)
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::Field;

    #[test]
    fn event_matching_requires_location_and_predicate() {
        let e = Event::new(EventId::new(0), Pred::test(Field::IpDst, 4), Loc::new(4, 1));
        let pk = Packet::new().with(Field::IpDst, 4);
        assert!(e.matches(&pk, Loc::new(4, 1)));
        assert!(!e.matches(&pk, Loc::new(4, 2)));
        assert!(!e.matches(&Packet::new().with(Field::IpDst, 5), Loc::new(4, 1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn event_id_bounds_checked() {
        EventId::new(64);
    }

    #[test]
    fn set_algebra() {
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let e5 = EventId::new(5);
        let s = EventSet::from_iter([e0, e1]);
        assert!(s.contains(e0) && s.contains(e1) && !s.contains(e5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(e0), EventSet::singleton(e1));
        assert!(EventSet::singleton(e1).is_proper_subset(s));
        assert!(!s.is_proper_subset(s));
        assert_eq!(s.union(EventSet::singleton(e5)).len(), 3);
        assert_eq!(s.intersection(EventSet::singleton(e1)), EventSet::singleton(e1));
        assert_eq!(s.difference(EventSet::singleton(e1)), EventSet::singleton(e0));
    }

    #[test]
    fn bits_round_trip() {
        let s = EventSet::from_iter([EventId::new(3), EventId::new(63)]);
        assert_eq!(EventSet::from_bits(s.bits()), s);
    }

    #[test]
    fn subsets_enumeration() {
        let s = EventSet::from_iter([EventId::new(0), EventId::new(2)]);
        let subs = s.subsets();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&EventSet::empty()));
        assert!(subs.contains(&s));
    }

    #[test]
    fn iter_is_sorted() {
        let s = EventSet::from_iter([EventId::new(7), EventId::new(2), EventId::new(40)]);
        let ids: Vec<usize> = s.iter().map(EventId::index).collect();
        assert_eq!(ids, vec![2, 7, 40]);
    }

    #[test]
    fn display() {
        let s = EventSet::from_iter([EventId::new(0), EventId::new(2)]);
        assert_eq!(s.to_string(), "{e0,e2}");
        assert_eq!(EventSet::empty().to_string(), "{}");
    }
}
