//! Network configurations as relations on located packets.
//!
//! A configuration `C` forwards packets within switches (per-switch flow
//! tables) and across links (including host attachment links), following the
//! paper's convention that `C` also captures link behaviour. `Traces(C)` is
//! decided by [`Config::admits_trace`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use netkat::{Field, FlowTable, Loc, TableDelta};

use crate::trace::LocatedPacket;

/// Trace-membership NFA state bit: the packet sits at a host.
pub(crate) const ST_AT_HOST: u8 = 1;
/// Trace-membership NFA state bit: the packet just crossed a link into a
/// switch and has not been processed yet.
pub(crate) const ST_INGRESS: u8 = 2;
/// Trace-membership NFA state bit: the packet was processed by a switch and
/// sits at an output port.
pub(crate) const ST_EGRESS: u8 = 4;

/// A network configuration: per-switch tables plus the (directed) links.
///
/// # Examples
///
/// ```
/// use edn_core::Config;
/// use netkat::{ActionSet, Action, Field, FlowTable, Loc, Match, Rule};
/// let table = FlowTable::from_rules([Rule::new(
///     Match::new().with(Field::Port, 2),
///     ActionSet::single(Action::assign(Field::Port, 1)),
/// )]);
/// let mut cfg = Config::new();
/// cfg.install(1, table);
/// cfg.add_link(Loc::new(1, 1), Loc::new(4, 1));
/// cfg.add_host(100, Loc::new(1, 2));
/// assert!(cfg.is_host(100));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Config {
    tables: BTreeMap<u64, FlowTable>,
    links: BTreeSet<(Loc, Loc)>,
    hosts: BTreeSet<u64>,
}

impl Config {
    /// Creates an empty configuration (no switches, no links).
    pub fn new() -> Config {
        Config::default()
    }

    /// Installs (replaces) the flow table of `switch`.
    pub fn install(&mut self, switch: u64, table: FlowTable) {
        self.tables.insert(switch, table);
    }

    /// The table installed on `switch` (empty tables drop everything).
    pub fn table(&self, switch: u64) -> Option<&FlowTable> {
        self.tables.get(&switch)
    }

    /// Adds a directed link.
    pub fn add_link(&mut self, src: Loc, dst: Loc) {
        self.links.insert((src, dst));
    }

    /// Declares `node` (attached at `loc`) to be a host, adding both
    /// directions of its attachment link. By convention the host side of the
    /// attachment is port 0.
    pub fn add_host(&mut self, node: u64, attached: Loc) {
        self.hosts.insert(node);
        self.links.insert((Loc::new(node, 0), attached));
        self.links.insert((attached, Loc::new(node, 0)));
    }

    /// Returns `true` if `node` is a host.
    pub fn is_host(&self, node: u64) -> bool {
        self.hosts.contains(&node)
    }

    /// The set of host nodes.
    pub fn hosts(&self) -> impl Iterator<Item = u64> + '_ {
        self.hosts.iter().copied()
    }

    /// The directed links.
    pub fn links(&self) -> impl Iterator<Item = (Loc, Loc)> + '_ {
        self.links.iter().copied()
    }

    /// Switches carrying tables.
    pub fn switches(&self) -> impl Iterator<Item = u64> + '_ {
        self.tables.keys().copied()
    }

    /// Total rule count across all switches.
    pub fn rule_count(&self) -> usize {
        self.tables.values().map(FlowTable::len).sum()
    }

    /// The one-step relation: all located packets `C` maps `lp` to.
    ///
    /// A step is either a within-switch hop (table application, rewriting
    /// the port and possibly headers) or a link hop (location rewrite with
    /// fields preserved). Host nodes never apply tables.
    pub fn step(&self, lp: &LocatedPacket) -> Vec<LocatedPacket> {
        let mut out = Vec::new();
        // Link hops from this exact location.
        for &(src, dst) in &self.links {
            if src == lp.loc {
                out.push(LocatedPacket::new(lp.packet.clone(), dst));
            }
        }
        // Switch hop.
        if !self.is_host(lp.loc.sw) {
            if let Some(table) = self.tables.get(&lp.loc.sw) {
                let mut pk = lp.packet.clone();
                pk.set_loc(lp.loc);
                for mut outpk in table.apply(&pk) {
                    let pt = outpk.get(Field::Port).unwrap_or(lp.loc.pt);
                    let loc = Loc::new(lp.loc.sw, pt);
                    outpk.unset(Field::Switch);
                    outpk.unset(Field::Port);
                    out.push(LocatedPacket::new(outpk, loc));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Returns `true` if `C(from, to)` holds.
    pub fn admits(&self, from: &LocatedPacket, to: &LocatedPacket) -> bool {
        self.step(from).contains(to)
    }

    /// Decides membership of a packet trace in `Traces(C)`.
    ///
    /// The trace must start at a host and every consecutive pair must be
    /// related by `C`. Because a located packet `(pkt, sw:pt)` is ambiguous
    /// between "in the input queue" and "in the output queue" of the port
    /// (cf. `qm_in`/`qm_out` in Fig. 7), membership is decided by a small
    /// NFA over queue contexts: link hops lead into input queues, switch
    /// hops into output queues.
    ///
    /// With `allow_prefix`, a trace that stops where `C` would continue is
    /// accepted (packets still in flight when a recording ends); without
    /// it, the trace must *end*: at a host, in an input queue the switch's
    /// table drops, or in an output queue with no attached link.
    pub fn admits_trace(&self, trace: &[LocatedPacket], allow_prefix: bool) -> bool {
        let Some(first) = trace.first() else { return true };
        let mut state = self.start_state(first);
        if state == 0 {
            return false;
        }
        for w in trace.windows(2) {
            state = self.step_state(state, &w[0], &w[1]);
            if state == 0 {
                return false;
            }
        }
        if allow_prefix {
            return true;
        }
        self.accepts_end(state, trace.last().expect("nonempty"))
    }

    /// The NFA state of a trace's first located packet (a set of
    /// [`ST_AT_HOST`]/[`ST_INGRESS`]/[`ST_EGRESS`] bits; `0` = rejected).
    /// Exposed crate-internally so the online checker can run the same
    /// automaton one hop at a time, bit-for-bit with [`admits_trace`].
    pub(crate) fn start_state(&self, first: &LocatedPacket) -> u8 {
        if self.is_host(first.loc.sw) {
            ST_AT_HOST
        } else {
            0
        }
    }

    /// One transition of the trace-membership NFA: the state set after the
    /// hop `a → b`, given the state set at `a`.
    pub(crate) fn step_state(&self, prev: u8, a: &LocatedPacket, b: &LocatedPacket) -> u8 {
        let mut next = 0;
        if prev & (ST_AT_HOST | ST_EGRESS) != 0
            && a.packet == b.packet
            && self.links.contains(&(a.loc, b.loc))
        {
            next |= if self.is_host(b.loc.sw) { ST_AT_HOST } else { ST_INGRESS };
        }
        if prev & ST_INGRESS != 0
            && a.loc.sw == b.loc.sw
            && !self.is_host(a.loc.sw)
            && self.switch_outputs(a).contains(b)
        {
            next |= ST_EGRESS;
        }
        next
    }

    /// Whether a trace *ending* in `state` at `last` is complete (the
    /// `allow_prefix == false` acceptance of [`admits_trace`]).
    pub(crate) fn accepts_end(&self, state: u8, last: &LocatedPacket) -> bool {
        state & ST_AT_HOST != 0
            || (state & ST_INGRESS != 0 && self.switch_outputs(last).is_empty())
            || (state & ST_EGRESS != 0 && !self.links.iter().any(|&(src, _)| src == last.loc))
    }

    /// The within-switch (table) outputs for a located packet.
    fn switch_outputs(&self, lp: &LocatedPacket) -> Vec<LocatedPacket> {
        let mut out = Vec::new();
        if self.is_host(lp.loc.sw) {
            return out;
        }
        if let Some(table) = self.tables.get(&lp.loc.sw) {
            let mut pk = lp.packet.clone();
            pk.set_loc(lp.loc);
            for mut outpk in table.apply(&pk) {
                let pt = outpk.get(Field::Port).unwrap_or(lp.loc.pt);
                let loc = Loc::new(lp.loc.sw, pt);
                outpk.unset(Field::Switch);
                outpk.unset(Field::Port);
                out.push(LocatedPacket::new(outpk, loc));
            }
        }
        out
    }
}

/// The minimal edit script turning one [`Config`] into a successor: the
/// OpenFlow-style mod batch an update campaign pushes, instead of whole
/// per-switch table swaps.
///
/// Produced by [`Config::diff`]; applied by [`Config::apply_delta`]. Per
/// switch, the table edit is a single contiguous [`TableDelta`] splice; a
/// switch gaining its first table diffs against the empty table, and a
/// switch losing its table entirely is additionally listed in
/// `removed_switches` (its splice removes every rule).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConfigDelta {
    /// Per-switch rule splices, for every switch whose table changes.
    pub tables: BTreeMap<u64, TableDelta>,
    /// Switches whose tables are uninstalled outright (their entry in
    /// `tables` removes all rules).
    pub removed_switches: BTreeSet<u64>,
    /// Directed links present only in the successor.
    pub links_added: BTreeSet<(Loc, Loc)>,
    /// Directed links present only in the predecessor.
    pub links_removed: BTreeSet<(Loc, Loc)>,
    /// Hosts present only in the successor.
    pub hosts_added: BTreeSet<u64>,
    /// Hosts present only in the predecessor.
    pub hosts_removed: BTreeSet<u64>,
}

impl ConfigDelta {
    /// Returns `true` if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
            && self.removed_switches.is_empty()
            && self.links_added.is_empty()
            && self.links_removed.is_empty()
            && self.hosts_added.is_empty()
            && self.hosts_removed.is_empty()
    }

    /// Switches whose installed rules change — the switches an incremental
    /// compiler must touch (everything else keeps its table verbatim).
    pub fn affected_switches(&self) -> impl Iterator<Item = u64> + '_ {
        self.tables.keys().copied()
    }

    /// Total OpenFlow-style rule mods (deletes + adds) across all switches.
    pub fn rule_mods(&self) -> usize {
        self.tables.values().map(TableDelta::mods).sum()
    }
}

impl Config {
    /// The minimal delta from this configuration to `new`.
    ///
    /// `self.apply_delta(&self.diff(new))` reproduces `new` exactly —
    /// pinned by unit tests and by the delta-equivalence suite, which also
    /// drives [`CompiledTable::patch`](netkat::CompiledTable::patch)
    /// through these per-switch splices.
    pub fn diff(&self, new: &Config) -> ConfigDelta {
        let mut delta = ConfigDelta::default();
        let empty = FlowTable::new();
        let switches: BTreeSet<u64> =
            self.tables.keys().chain(new.tables.keys()).copied().collect();
        for sw in switches {
            let old_t = self.tables.get(&sw);
            let new_t = new.tables.get(&sw);
            if old_t == new_t {
                continue;
            }
            let table_delta = old_t.unwrap_or(&empty).diff(new_t.unwrap_or(&empty));
            if new_t.is_none() {
                delta.removed_switches.insert(sw);
            }
            // `old == Some(empty)` vs `new == None` still counts as an
            // uninstall even though the splice itself is empty.
            delta.tables.insert(sw, table_delta);
        }
        delta.links_added = new.links.difference(&self.links).copied().collect();
        delta.links_removed = self.links.difference(&new.links).copied().collect();
        delta.hosts_added = new.hosts.difference(&self.hosts).copied().collect();
        delta.hosts_removed = self.hosts.difference(&new.hosts).copied().collect();
        delta
    }

    /// Applies a delta produced by [`Config::diff`], turning this
    /// configuration into the successor it was diffed against.
    ///
    /// # Panics
    ///
    /// Panics if a table splice does not fit the installed table (the delta
    /// belongs to a different predecessor).
    pub fn apply_delta(&mut self, delta: &ConfigDelta) {
        for (&sw, table_delta) in &delta.tables {
            if delta.removed_switches.contains(&sw) {
                self.tables.remove(&sw);
                continue;
            }
            let mut table = self.tables.remove(&sw).unwrap_or_default();
            table.splice(table_delta);
            self.tables.insert(sw, table);
        }
        for link in &delta.links_removed {
            self.links.remove(link);
        }
        self.links.extend(delta.links_added.iter().copied());
        for host in &delta.hosts_removed {
            self.hosts.remove(host);
        }
        self.hosts.extend(delta.hosts_added.iter().copied());
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (sw, t) in &self.tables {
            writeln!(f, "switch {sw}:")?;
            write!(f, "{t}")?;
        }
        for (a, b) in &self.links {
            writeln!(f, "link {a} -> {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Action, ActionSet, Match, Packet, Rule};

    /// Topology: host 100 -- 1:2, link 1:1 <-> 4:1, host 104 -- 4:2.
    /// Switch 1 forwards pt2 -> pt1; switch 4 forwards pt1 -> pt2.
    fn two_switch_config() -> Config {
        let fwd = |from: u64, to: u64| {
            FlowTable::from_rules([Rule::new(
                Match::new().with(Field::Port, from),
                ActionSet::single(Action::assign(Field::Port, to)),
            )])
        };
        let mut c = Config::new();
        c.install(1, fwd(2, 1));
        c.install(4, fwd(1, 2));
        c.add_link(Loc::new(1, 1), Loc::new(4, 1));
        c.add_link(Loc::new(4, 1), Loc::new(1, 1));
        c.add_host(100, Loc::new(1, 2));
        c.add_host(104, Loc::new(4, 2));
        c
    }

    fn lp(pk: &Packet, sw: u64, pt: u64) -> LocatedPacket {
        LocatedPacket::new(pk.clone(), Loc::new(sw, pt))
    }

    #[test]
    fn step_through_switch_and_link() {
        let c = two_switch_config();
        let pk = Packet::new().with(Field::IpDst, 4);
        // At switch 1 ingress (from host): table hop to 1:1.
        let at_ingress = lp(&pk, 1, 2);
        let next = c.step(&at_ingress);
        assert!(next.contains(&lp(&pk, 1, 1)), "switch hop, got {next:?}");
        // At 1:1: link hop to 4:1.
        let at_egress = lp(&pk, 1, 1);
        assert!(c.step(&at_egress).contains(&lp(&pk, 4, 1)));
    }

    #[test]
    fn full_trace_is_admitted() {
        let c = two_switch_config();
        let pk = Packet::new();
        let trace = vec![
            lp(&pk, 100, 0), // at host
            lp(&pk, 1, 2),   // attachment link
            lp(&pk, 1, 1),   // switch hop
            lp(&pk, 4, 1),   // link
            lp(&pk, 4, 2),   // switch hop
            lp(&pk, 104, 0), // delivery
        ];
        assert!(c.admits_trace(&trace, false));
        assert!(c.admits_trace(&trace[..3], true), "prefix allowed");
        assert!(!c.admits_trace(&trace[..3], false), "prefix not complete");
    }

    #[test]
    fn trace_must_start_at_host() {
        let c = two_switch_config();
        let pk = Packet::new();
        assert!(!c.admits_trace(&[lp(&pk, 1, 2), lp(&pk, 1, 1)], true));
    }

    #[test]
    fn dropped_packet_trace_is_complete() {
        let c = two_switch_config();
        let pk = Packet::new();
        // Arrives at switch 1 port 3: no rule matches, packet dropped.
        let trace = vec![lp(&pk, 100, 0), lp(&pk, 1, 2)];
        // 1:2 has a table hop available, so stopping there is a prefix...
        assert!(!c.admits_trace(&trace, false));
        // ...but a packet at a port with no matching rule and no link is
        // complete. Craft: switch 1, port 5 has no rule (table matches only
        // pt=2) and no link.
        let mut c2 = c.clone();
        let t = FlowTable::from_rules([Rule::new(
            Match::new().with(Field::Port, 2),
            ActionSet::single(Action::assign(Field::Port, 5)),
        )]);
        c2.install(1, t);
        let trace2 = vec![lp(&pk, 100, 0), lp(&pk, 1, 2), lp(&pk, 1, 5)];
        assert!(c2.admits_trace(&trace2, false));
    }

    #[test]
    fn wrong_hop_is_rejected() {
        let c = two_switch_config();
        let pk = Packet::new();
        // Teleporting from 1:2 to 4:2 is not admitted.
        assert!(!c.admits_trace(&[lp(&pk, 100, 0), lp(&pk, 1, 2), lp(&pk, 4, 2)], true));
        // Field change across a link is not admitted.
        let changed = Packet::new().with(Field::Vlan, 9);
        assert!(!c.admits(&lp(&pk, 1, 1), &lp(&changed, 4, 1)));
    }

    #[test]
    fn multicast_step_produces_both() {
        let mut c = Config::new();
        let t = FlowTable::from_rules([Rule::new(
            Match::new(),
            ActionSet::from_iter([Action::assign(Field::Port, 1), Action::assign(Field::Port, 3)]),
        )]);
        c.install(7, t);
        let pk = Packet::new();
        let out = c.step(&lp(&pk, 7, 2));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn hosts_do_not_forward() {
        let c = two_switch_config();
        let pk = Packet::new();
        // Host 100 has a link to 1:2 but no table; only the link hop exists.
        let out = c.step(&lp(&pk, 100, 0));
        assert_eq!(out, vec![lp(&pk, 1, 2)]);
    }

    #[test]
    fn diff_of_identical_configs_is_empty() {
        let c = two_switch_config();
        let delta = c.diff(&c.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.rule_mods(), 0);
        assert_eq!(delta.affected_switches().count(), 0);
    }

    #[test]
    fn diff_apply_round_trips_table_edits() {
        let old = two_switch_config();
        // Successor: prepend a drop rule on switch 1 (the firewall-style
        // edit) and uninstall switch 4; links and hosts unchanged.
        let mut new = old.clone();
        let firewall = Rule::new(Match::new().with(Field::IpSrc, 66), ActionSet::drop());
        let mut t1 = FlowTable::from_rules([firewall]);
        for r in old.table(1).unwrap().iter() {
            t1.push(r.clone());
        }
        new.install(1, t1);
        new.tables.remove(&4);

        let delta = old.diff(&new);
        assert!(delta.affected_switches().any(|sw| sw == 1));
        assert!(delta.removed_switches.contains(&4));
        assert_eq!(delta.tables[&1].mods(), 1, "one prepended rule");
        assert_eq!(delta.tables[&4].removed, old.table(4).unwrap().len());
        assert_eq!(delta.rule_mods(), 2);
        let mut patched = old.clone();
        patched.apply_delta(&delta);
        assert_eq!(patched, new);
    }

    #[test]
    fn diff_tracks_links_and_hosts() {
        let old = two_switch_config();
        let mut new = old.clone();
        new.add_link(Loc::new(1, 9), Loc::new(4, 9));
        new.add_host(105, Loc::new(4, 3));
        let delta = old.diff(&new);
        assert!(delta.links_added.contains(&(Loc::new(1, 9), Loc::new(4, 9))));
        assert!(delta.hosts_added.contains(&105));
        assert!(delta.links_removed.is_empty() && delta.hosts_removed.is_empty());
        let mut patched = old.clone();
        patched.apply_delta(&delta);
        assert_eq!(patched, new);
        // And the reverse direction removes them again.
        let back = new.diff(&old);
        assert!(back.hosts_removed.contains(&105));
        let mut reverted = new.clone();
        reverted.apply_delta(&back);
        assert_eq!(reverted, old);
    }

    #[test]
    fn diff_against_fresh_switch_installs_from_empty() {
        let old = Config::new();
        let mut new = Config::new();
        new.install(3, FlowTable::from_rules([Rule::drop_all()]));
        let delta = old.diff(&new);
        assert_eq!(delta.tables[&3].start, 0);
        assert_eq!(delta.tables[&3].inserted.len(), 1);
        assert!(delta.removed_switches.is_empty());
        let mut patched = old;
        patched.apply_delta(&delta);
        assert_eq!(patched, new);
    }
}
