//! Streaming observation of a network trace as it is produced.
//!
//! A [`TraceObserver`] receives the same per-packet processing steps that a
//! [`TraceBuilder`](crate::TraceBuilder) records, but *incrementally*, while
//! the run is still executing — including under
//! [`TraceMode::StatsOnly`](crate::TraceMode), where no trace is retained.
//! The engine additionally tells the observer when a node can no longer gain
//! children ([`TraceObserver::retire`]), which is what lets an online checker
//! discharge its happens-before obligations and drop state for trace
//! prefixes in bounded memory.
//!
//! Callback protocol (per node index `idx`, which matches the indices a
//! `TraceBuilder` would assign):
//!
//! 1. [`record`](TraceObserver::record) introduces node `idx` with its trace
//!    parent (if any). Indices are introduced in strictly increasing order.
//! 2. Zero or more [`edge`](TraceObserver::edge) calls add controller-induced
//!    causal edges *into* `idx`. They arrive after `record(idx)` but before
//!    the next `record`.
//! 3. An optional [`cause`](TraceObserver::cause) call marks `idx` as the
//!    cause of in-flight controller notifications; future [`edge`] calls may
//!    reference it as their source long after it was recorded.
//! 4. Exactly one of:
//!    - [`leaf`](TraceObserver::leaf) — `idx` ends its packet's path
//!      (delivered to a host, terminated by the configuration, or stalled
//!      in-flight at the run's end), or
//!    - further `record` calls naming `idx` as parent.
//! 5. [`retire`](TraceObserver::retire) — `idx` will gain no more children.
//! 6. [`finish`](TraceObserver::finish) — the run is over; any node that
//!    never received a `leaf` is an in-flight prefix.
//!
//! [`edge`]: TraceObserver::edge

use netkat::{Loc, Packet};

/// How a packet path ends at a trace node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeafKind {
    /// The packet reached a host.
    Delivered,
    /// The configuration produced no outputs (dropped / filtered): the path
    /// is complete according to the data plane.
    Terminated,
    /// The packet was still in flight (queued, link down, tail-dropped) when
    /// observation stopped; the path is a prefix of a longer trace.
    Stalled,
}

/// A consumer of streaming trace events. Callbacks arrive in the engine's
/// dispatch order: `record` (with the causal parent already reported),
/// then any `edge`/`cause`/`leaf` refinements, then `retire` once a node
/// can have no further children; `finish` closes the stream.
pub trait TraceObserver {
    /// Node `idx` was recorded: `packet` observed at `loc`, extending the
    /// path of `parent` (or starting a fresh path when `None`).
    fn record(&mut self, idx: usize, packet: &Packet, loc: Loc, parent: Option<usize>);

    /// A controller-induced causal edge `from → to` (both already recorded).
    fn edge(&mut self, from: usize, to: usize);

    /// Node `idx` is the cause of controller notifications now in flight;
    /// later [`edge`](TraceObserver::edge) calls may use it as their source.
    fn cause(&mut self, idx: usize);

    /// Node `idx` ends its packet's path.
    fn leaf(&mut self, idx: usize, kind: LeafKind);

    /// Node `idx` will gain no more children; its state may be dropped.
    fn retire(&mut self, idx: usize);

    /// The run is over; no further callbacks will arrive.
    fn finish(&mut self);

    /// Folds this observer's metrics into `reg` — called by the engine
    /// while assembling the run's registry, after
    /// [`finish`](TraceObserver::finish). The default contributes
    /// nothing.
    fn contribute_metrics(&self, reg: &mut edn_obs::Registry) {
        let _ = reg;
    }

    /// Hands the observer the engine's flight recorder so it can record
    /// its own transitions (an online checker logs event firings and the
    /// violation itself). The default discards it.
    fn attach_flight_recorder(&mut self, recorder: edn_obs::FlightRecorder) {
        let _ = recorder;
    }
}
