//! Event-driven transition systems (Definition 7) and their conversion to
//! network event structures (Section 3.1).
//!
//! An ETS is a graph whose vertices carry configurations and whose edges
//! carry events. The conversion collects the event-sets along all paths from
//! the initial vertex (`W(T)`, `F(T)`), checks the two well-formedness
//! conditions of Section 3.1 (unique configuration per event-set,
//! finite-completeness), and builds the NES via Winskel's Theorem 1.1.12.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::config::Config;
use crate::estructure::EventStructure;
use crate::event::{Event, EventId, EventSet};
use crate::nes::{NesError, NetworkEventStructure};

/// An event-driven transition system `(V, D, v₀)`.
#[derive(Clone, Debug)]
pub struct Ets {
    /// The events usable on edges, indexed by [`EventId`].
    pub events: Vec<Event>,
    /// Vertex labels: each vertex's configuration.
    pub configs: Vec<Config>,
    /// Edges `(from, event, to)`.
    pub edges: Vec<(usize, EventId, usize)>,
    /// The initial vertex.
    pub initial: usize,
}

/// Errors in ETS well-formedness or conversion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EtsError {
    /// The ETS has a cycle; this paper (and this implementation) handles
    /// loop-free systems — loops require event renaming (Section 3.1).
    HasCycle,
    /// An edge references a vertex that does not exist.
    DanglingEdge {
        /// The edge index.
        edge: usize,
    },
    /// Two paths collecting the same event-set end at vertices with
    /// different configurations (violates condition 1 of Section 3.1).
    AmbiguousConfig {
        /// The offending event-set.
        set: EventSet,
    },
    /// `F(T)` is not finite-complete (violates condition 2 of Section 3.1):
    /// `a` and `b` have an upper bound in `F(T)` but `a ∪ b ∉ F(T)`.
    NotFiniteComplete {
        /// First set.
        a: EventSet,
        /// Second set.
        b: EventSet,
    },
    /// NES construction failed.
    Nes(NesError),
}

impl fmt::Display for EtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtsError::HasCycle => write!(f, "the transition system has a cycle (loop-free required)"),
            EtsError::DanglingEdge { edge } => write!(f, "edge {edge} references a missing vertex"),
            EtsError::AmbiguousConfig { set } => {
                write!(f, "event-set {set} is reached by paths ending in different configurations")
            }
            EtsError::NotFiniteComplete { a, b } => write!(
                f,
                "family is not finite-complete: {a} and {b} have an upper bound but their union is missing (cf. Fig. 3(c))"
            ),
            EtsError::Nes(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EtsError {}

impl From<NesError> for EtsError {
    fn from(e: NesError) -> EtsError {
        EtsError::Nes(e)
    }
}

impl Ets {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.configs.len()
    }

    /// Checks structural sanity: edges in range, no cycles.
    ///
    /// # Errors
    ///
    /// [`EtsError::DanglingEdge`] or [`EtsError::HasCycle`].
    pub fn validate(&self) -> Result<(), EtsError> {
        for (i, &(a, _, b)) in self.edges.iter().enumerate() {
            if a >= self.vertex_count() || b >= self.vertex_count() {
                return Err(EtsError::DanglingEdge { edge: i });
            }
        }
        // Cycle detection by DFS colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.vertex_count()];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.vertex_count()];
        for &(a, _, b) in &self.edges {
            adj[a].push(b);
        }
        fn dfs(v: usize, adj: &[Vec<usize>], colour: &mut [Colour]) -> bool {
            colour[v] = Colour::Grey;
            for &w in &adj[v] {
                match colour[w] {
                    Colour::Grey => return false,
                    Colour::White => {
                        if !dfs(w, adj, colour) {
                            return false;
                        }
                    }
                    Colour::Black => {}
                }
            }
            colour[v] = Colour::Black;
            true
        }
        for v in 0..self.vertex_count() {
            if colour[v] == Colour::White && !dfs(v, &adj, &mut colour) {
                return Err(EtsError::HasCycle);
            }
        }
        Ok(())
    }

    /// Computes `F(T)` with the endpoint vertex of each member's paths,
    /// checking condition 1 (unique configuration per event-set).
    ///
    /// # Errors
    ///
    /// Structural errors, or [`EtsError::AmbiguousConfig`].
    pub fn family(&self) -> Result<BTreeMap<EventSet, usize>, EtsError> {
        self.validate()?;
        let mut adj: Vec<Vec<(EventId, usize)>> = vec![Vec::new(); self.vertex_count()];
        for &(a, e, b) in &self.edges {
            adj[a].push((e, b));
        }
        // DFS over paths from the initial vertex; the graph is a DAG so this
        // terminates. Worst case exponential in path count, fine for program
        // sized systems.
        let mut family: BTreeMap<EventSet, usize> = BTreeMap::new();
        let mut stack = vec![(self.initial, EventSet::empty())];
        let mut seen: BTreeSet<(usize, EventSet)> = BTreeSet::new();
        while let Some((v, set)) = stack.pop() {
            if !seen.insert((v, set)) {
                continue;
            }
            match family.get(&set) {
                Some(&u) if self.configs[u] != self.configs[v] => {
                    return Err(EtsError::AmbiguousConfig { set });
                }
                Some(_) => {}
                None => {
                    family.insert(set, v);
                }
            }
            for &(e, w) in &adj[v] {
                stack.push((w, set.insert(e)));
            }
        }
        Ok(family)
    }

    /// Checks condition 2 of Section 3.1: `F(T)` is finite-complete.
    ///
    /// Pairwise closure suffices: any finite bounded family closes under
    /// union by induction on pairs.
    pub fn check_finite_complete(family: &BTreeMap<EventSet, usize>) -> Result<(), EtsError> {
        let sets: Vec<EventSet> = family.keys().copied().collect();
        for (i, &a) in sets.iter().enumerate() {
            for &b in &sets[i + 1..] {
                let union = a.union(b);
                let bounded = sets.iter().any(|&u| union.is_subset(u));
                if bounded && !family.contains_key(&union) {
                    return Err(EtsError::NotFiniteComplete { a, b });
                }
            }
        }
        Ok(())
    }

    /// Converts the ETS to a network event structure (Section 3.1).
    ///
    /// # Errors
    ///
    /// Any [`EtsError`]: structural problems, condition 1 or 2 violations,
    /// or a missing configuration.
    pub fn to_nes(&self) -> Result<NetworkEventStructure, EtsError> {
        let family = self.family()?;
        Self::check_finite_complete(&family)?;
        let es = EventStructure::new(self.events.clone(), family.keys().copied());
        let g = family.iter().map(|(&set, &v)| (set, self.configs[v].clone()));
        Ok(NetworkEventStructure::new(es, g)?)
    }
}

impl fmt::Display for Ets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ETS: {} vertices, initial {}", self.vertex_count(), self.initial)?;
        for &(a, e, b) in &self.edges {
            writeln!(f, "  v{a} --{}--> v{b}", self.events[e.index()])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Loc, Pred};

    fn ev(i: usize, sw: u64) -> Event {
        Event::new(EventId::new(i), Pred::True, Loc::new(sw, 1))
    }

    fn cfg(marker: u64) -> Config {
        // Distinct configs distinguished by a marker host.
        let mut c = Config::new();
        c.add_host(marker, Loc::new(1, 1));
        c
    }

    /// Figure 3(a): diamond with compatible events.
    #[test]
    fn diamond_converts() {
        let ets = Ets {
            events: vec![ev(0, 1), ev(1, 2)],
            configs: vec![cfg(0), cfg(1), cfg(2), cfg(3)],
            edges: vec![
                (0, EventId::new(0), 1),
                (0, EventId::new(1), 2),
                (1, EventId::new(1), 3),
                (2, EventId::new(0), 3),
            ],
            initial: 0,
        };
        let nes = ets.to_nes().unwrap();
        assert_eq!(nes.event_sets().len(), 4);
        assert!(nes.structure().verify_axioms());
    }

    /// Figure 3(b): conflict — two events, no joint event-set.
    #[test]
    fn conflict_converts_without_joint_set() {
        let ets = Ets {
            events: vec![ev(0, 1), ev(1, 1)],
            configs: vec![cfg(0), cfg(1), cfg(2)],
            edges: vec![(0, EventId::new(0), 1), (0, EventId::new(1), 2)],
            initial: 0,
        };
        let nes = ets.to_nes().unwrap();
        assert_eq!(nes.event_sets().len(), 3);
        let both = EventSet::from_iter([EventId::new(0), EventId::new(1)]);
        assert!(!nes.structure().consistent(both));
    }

    /// Figure 3(c): violates finite-completeness — {e1} and {e3} are below
    /// {e1,e4,e3} but {e1,e3} is not an event-set.
    #[test]
    fn fig3c_fails_finite_completeness() {
        // Vertices: 0 --e0--> 1 --e1--> 2 --e2--> 3; 0 --e2--> 4.
        // Path sets: {}, {e0}, {e0,e1}, {e0,e1,e2}, {e2}.
        // {e0} and {e2} are bounded by {e0,e1,e2} but {e0,e2} is missing.
        let ets = Ets {
            events: vec![ev(0, 1), ev(1, 2), ev(2, 3)],
            configs: vec![cfg(0), cfg(1), cfg(2), cfg(3), cfg(4)],
            edges: vec![
                (0, EventId::new(0), 1),
                (1, EventId::new(1), 2),
                (2, EventId::new(2), 3),
                (0, EventId::new(2), 4),
            ],
            initial: 0,
        };
        let err = ets.to_nes().unwrap_err();
        assert!(matches!(err, EtsError::NotFiniteComplete { .. }), "got {err:?}");
    }

    #[test]
    fn ambiguous_config_detected() {
        // Two orders of the diamond land in different configurations.
        let ets = Ets {
            events: vec![ev(0, 1), ev(1, 2)],
            configs: vec![cfg(0), cfg(1), cfg(2), cfg(3), cfg(4)],
            edges: vec![
                (0, EventId::new(0), 1),
                (0, EventId::new(1), 2),
                (1, EventId::new(1), 3),
                (2, EventId::new(0), 4), // same set {e0,e1}, different config
            ],
            initial: 0,
        };
        let err = ets.to_nes().unwrap_err();
        assert!(matches!(err, EtsError::AmbiguousConfig { .. }), "got {err:?}");
    }

    #[test]
    fn same_set_same_config_is_fine() {
        // Diamond where both orders reach configs that are *equal*.
        let ets = Ets {
            events: vec![ev(0, 1), ev(1, 2)],
            configs: vec![cfg(0), cfg(1), cfg(2), cfg(3), cfg(3)],
            edges: vec![
                (0, EventId::new(0), 1),
                (0, EventId::new(1), 2),
                (1, EventId::new(1), 3),
                (2, EventId::new(0), 4),
            ],
            initial: 0,
        };
        assert!(ets.to_nes().is_ok());
    }

    #[test]
    fn cycle_rejected() {
        let ets = Ets {
            events: vec![ev(0, 1), ev(1, 1)],
            configs: vec![cfg(0), cfg(1)],
            edges: vec![(0, EventId::new(0), 1), (1, EventId::new(1), 0)],
            initial: 0,
        };
        assert_eq!(ets.validate(), Err(EtsError::HasCycle));
    }

    #[test]
    fn dangling_edge_rejected() {
        let ets = Ets {
            events: vec![ev(0, 1)],
            configs: vec![cfg(0)],
            edges: vec![(0, EventId::new(0), 5)],
            initial: 0,
        };
        assert_eq!(ets.validate(), Err(EtsError::DanglingEdge { edge: 0 }));
    }

    /// A chain ETS (the firewall / bandwidth-cap shape).
    #[test]
    fn chain_converts_to_linear_family() {
        let ets = Ets {
            events: vec![ev(0, 4), ev(1, 4)],
            configs: vec![cfg(0), cfg(1), cfg(2)],
            edges: vec![(0, EventId::new(0), 1), (1, EventId::new(1), 2)],
            initial: 0,
        };
        let nes = ets.to_nes().unwrap();
        let sets = nes.event_sets();
        assert_eq!(sets.len(), 3);
        // e1 is enabled only after e0.
        assert!(!nes.structure().enabled(EventSet::empty(), EventId::new(1)));
        assert!(nes.structure().enabled(EventSet::singleton(EventId::new(0)), EventId::new(1)));
    }
}
