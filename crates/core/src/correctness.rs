//! Correct network traces with respect to an NES (Definition 6).
//!
//! A trace is correct when either no event matches and every packet trace is
//! processed by `g(∅)`, or some sequence `e₀ ⋯ eₙ` allowed by the NES makes
//! the trace correct for the induced event-driven consistent update
//! `g(∅) →e₀ g({e₀}) →e₁ ⋯`.

use std::fmt;

use crate::event::{Event, EventId, EventSet};
use crate::happens::HappensBefore;
use crate::nes::NetworkEventStructure;
use crate::trace::{LocatedPacket, NetworkTrace};
use crate::update::{check_update, OccurrenceSemantics, UpdateSequence, UpdateViolation};

/// The causal occurrence semantics induced by an NES: a matching arrival is
/// an occurrence of `e` only if some set of events enabling `e` has already
/// occurred *and* those occurrences happened-before the arrival — i.e. the
/// switch could have heard about them (Section 2's locality principle, and
/// exactly the condition under which the SWITCH rule of Fig. 7 fires `e`).
#[derive(Clone, Copy, Debug)]
pub struct CausalOccurrences<'a> {
    nes: &'a NetworkEventStructure,
}

impl<'a> CausalOccurrences<'a> {
    /// Creates the semantics for an NES.
    pub fn new(nes: &'a NetworkEventStructure) -> CausalOccurrences<'a> {
        CausalOccurrences { nes }
    }
}

impl OccurrenceSemantics for CausalOccurrences<'_> {
    fn is_occurrence(
        &self,
        hb: &HappensBefore,
        j: usize,
        event: &Event,
        prior: &[(EventId, usize)],
    ) -> bool {
        let fired: EventSet = prior.iter().map(|&(e, _)| e).collect();
        let index_of = |e: EventId| prior.iter().find(|&&(p, _)| p == e).map(|&(_, k)| k);
        // ∃Y in the family with event ∈ Y whose other members have all
        // occurred happens-before j.
        self.nes.structure().family().any(|y| {
            y.contains(event.id)
                && y.remove(event.id).is_subset(fired)
                && y.remove(event.id).iter().all(|x| index_of(x).is_some_and(|k| hb.before(k, j)))
        })
    }
}

/// Default bound on the length of allowed sequences searched.
const DEFAULT_MAX_EVENTS: usize = 16;

/// Why a trace is not correct with respect to an NES.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CorrectnessViolation {
    /// No event matched, but some packet trace is outside `Traces(g(∅))`.
    InitialConfigViolation {
        /// The offending packet trace.
        trace: usize,
    },
    /// No allowed event sequence makes the trace correct. Carries the
    /// violation observed for the most faithful candidate sequence (the one
    /// whose first-occurrence computation got furthest).
    NoAllowedSequence {
        /// The best candidate sequence tried.
        best_sequence: Vec<EventId>,
        /// Its violation.
        violation: UpdateViolation,
    },
}

impl fmt::Display for CorrectnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrectnessViolation::InitialConfigViolation { trace } => write!(
                f,
                "no event occurred but packet trace {trace} is not a trace of the initial configuration"
            ),
            CorrectnessViolation::NoAllowedSequence { best_sequence, violation } => write!(
                f,
                "no allowed event sequence explains the trace; best candidate {best_sequence:?} fails with: {violation}"
            ),
        }
    }
}

impl std::error::Error for CorrectnessViolation {}

/// Checks Definition 6: is `ntr` correct with respect to `nes`?
///
/// `hint`, if given, is an event sequence tried first (runtimes know the
/// order in which events actually fired); all allowed sequences up to an
/// internal length bound are tried otherwise.
///
/// # Errors
///
/// Returns a [`CorrectnessViolation`] describing the failure.
pub fn check_correct(
    ntr: &NetworkTrace,
    nes: &NetworkEventStructure,
    hint: Option<&[EventId]>,
) -> Result<(), CorrectnessViolation> {
    // Branch 1: no fireable event matches anywhere, and g(∅) processes
    // everything. Matches of events not enabled at ∅ are not occurrences
    // (cf. the SWITCH rule's E′ computation).
    let erased: Vec<LocatedPacket> =
        ntr.packets().iter().map(LocatedPacket::erase_virtual).collect();
    let empty = crate::event::EventSet::empty();
    let any_event_matches = erased.iter().any(|lp| {
        nes.events().iter().any(|e| {
            e.matches(&lp.packet, lp.loc)
                && nes.structure().enabled(empty, e.id)
                && nes.structure().consistent(empty.insert(e.id))
        })
    });
    if !any_event_matches {
        let c0 = nes.initial_config();
        for t in 0..ntr.traces().len() {
            let trace: Vec<LocatedPacket> =
                ntr.traces()[t].iter().map(|&j| erased[j].clone()).collect();
            if !c0.admits_trace(&trace, !ntr.trace_is_terminated(t)) {
                return Err(CorrectnessViolation::InitialConfigViolation { trace: t });
            }
        }
        return Ok(());
    }

    // Branch 2: search allowed sequences. A hint from a *misbehaving*
    // system may not even be allowed by the NES (e.g. two conflicting
    // events both fired); such sequences have no induced update and are
    // skipped.
    let mut candidates: Vec<Vec<EventId>> = Vec::new();
    if let Some(h) = hint {
        if sequence_allowed(nes, h) {
            candidates.push(h.to_vec());
        }
    }
    for seq in nes.allowed_sequences(DEFAULT_MAX_EVENTS) {
        if !seq.is_empty() && hint != Some(seq.as_slice()) {
            candidates.push(seq);
        }
    }

    let occ = CausalOccurrences::new(nes);
    let mut best: Option<(Vec<EventId>, UpdateViolation)> = None;
    for seq in candidates {
        let update = sequence_to_update(nes, &seq);
        // Events still fireable once `seq` has run: not yet occurred,
        // enabled at the final event-set, and consistent to add.
        let final_set: EventSet = seq.iter().copied().collect();
        let residual: Vec<_> = nes
            .events()
            .iter()
            .filter(|e| {
                !final_set.contains(e.id)
                    && nes.structure().enabled(final_set, e.id)
                    && nes.structure().consistent(final_set.insert(e.id))
            })
            .cloned()
            .collect();
        match check_update(ntr, &update, &residual, &occ) {
            Ok(()) => return Ok(()),
            Err(v) => {
                let rank = violation_rank(&v);
                let replace = match &best {
                    None => true,
                    Some((_, bv)) => rank > violation_rank(bv),
                };
                if replace {
                    best = Some((seq, v));
                }
            }
        }
    }
    let (best_sequence, violation) =
        best.unwrap_or((Vec::new(), UpdateViolation::NoFirstOccurrences { failed_at: Some(0) }));
    Err(CorrectnessViolation::NoAllowedSequence { best_sequence, violation })
}

/// Returns `true` if `seq` is a sequence allowed by the NES (each step
/// enabled and consistent).
pub fn sequence_allowed(nes: &NetworkEventStructure, seq: &[EventId]) -> bool {
    let mut set = EventSet::empty();
    for &e in seq {
        if !nes.structure().enabled(set, e) || !nes.structure().consistent(set.insert(e)) {
            return false;
        }
        set = set.insert(e);
    }
    true
}

/// Builds the update `g(∅) →e₀ g({e₀}) →e₁ ⋯` for an event sequence.
///
/// # Panics
///
/// Panics if the sequence is not allowed by the NES (check with
/// [`sequence_allowed`] first).
pub fn sequence_to_update(nes: &NetworkEventStructure, seq: &[EventId]) -> UpdateSequence {
    let mut configs = Vec::with_capacity(seq.len() + 1);
    let mut events = Vec::with_capacity(seq.len());
    let mut set = crate::event::EventSet::empty();
    configs.push(nes.config(set).clone());
    for &e in seq {
        set = set.insert(e);
        configs.push(nes.config(set).clone());
        events.push(nes.structure().event(e).clone());
    }
    UpdateSequence::new(configs, events)
}

/// Orders violations by how far the check got, to report the most
/// informative failure.
fn violation_rank(v: &UpdateViolation) -> u8 {
    match v {
        UpdateViolation::NoFirstOccurrences { .. } => 0,
        UpdateViolation::Inconsistent { .. } => 1,
        UpdateViolation::TooEarly { .. } | UpdateViolation::TooLate { .. } => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::estructure::EventStructure;
    use crate::event::{Event, EventSet};
    use crate::trace::TraceBuilder;
    use netkat::{Action, ActionSet, Field, FlowTable, Loc, Match, Packet, Pred, Rule};

    /// One switch (1), hosts 100 (pt 2) and 101 (pt 3).
    /// g(∅): 2->3 only. g({e0}): both directions.
    /// e0 = arrival of a packet for 101 at 1:2 (ip_dst keeps the event from
    /// matching reply traffic leaving via 1:2).
    fn firewall_like_nes() -> NetworkEventStructure {
        let base = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(100, Loc::new(1, 2));
            c.add_host(101, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let c0 = base(vec![fwd(2, 3)]);
        let c1 = base(vec![fwd(2, 3), fwd(3, 2)]);
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 101), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(es, [(EventSet::empty(), c0), (EventSet::singleton(e0), c1)])
            .unwrap()
    }

    fn fwd_pk() -> Packet {
        Packet::new().with(Field::IpDst, 101)
    }

    fn reply_pk() -> Packet {
        Packet::new().with(Field::IpDst, 100)
    }

    fn push_transit(b: &mut TraceBuilder, pk: &Packet, hops: &[(u64, u64)]) {
        let mut parent = None;
        for &(sw, pt) in hops {
            parent = Some(b.push(pk.clone(), Loc::new(sw, pt), parent));
        }
    }

    #[test]
    fn quiet_network_checks_against_initial_config() {
        let nes = firewall_like_nes();
        let mut b = TraceBuilder::new();
        // Reply-direction packet dropped at 1:3: a complete g(∅) trace (no
        // rule matches port 3). No event matched.
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3)]);
        let ntr = b.build().unwrap();
        assert!(check_correct(&ntr, &nes, None).is_ok());
    }

    #[test]
    fn quiet_network_violation_detected() {
        let nes = firewall_like_nes();
        let mut b = TraceBuilder::new();
        // Reply-direction packet *delivered* without any event: impossible
        // under g(∅), and no allowed sequence has a first occurrence.
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3), (1, 2), (100, 0)]);
        let ntr = b.build().unwrap();
        let err = check_correct(&ntr, &nes, None).unwrap_err();
        assert_eq!(err, CorrectnessViolation::InitialConfigViolation { trace: 0 });
    }

    #[test]
    fn triggered_update_is_correct() {
        let nes = firewall_like_nes();
        let mut b = TraceBuilder::new();
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3), (1, 2), (100, 0)]);
        let ntr = b.build().unwrap();
        assert!(check_correct(&ntr, &nes, None).is_ok());
        // With an explicit hint too.
        assert!(check_correct(&ntr, &nes, Some(&[EventId::new(0)])).is_ok());
    }

    #[test]
    fn premature_reply_is_a_violation() {
        let nes = firewall_like_nes();
        let mut b = TraceBuilder::new();
        // Reply delivered BEFORE the trigger: too early.
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3), (1, 2), (100, 0)]);
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        let ntr = b.build().unwrap();
        let err = check_correct(&ntr, &nes, None).unwrap_err();
        match err {
            CorrectnessViolation::NoAllowedSequence { violation, .. } => {
                assert!(
                    matches!(
                        violation,
                        UpdateViolation::TooEarly { .. }
                            | UpdateViolation::NoFirstOccurrences { .. }
                    ),
                    "got {violation:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequence_to_update_builds_chain() {
        let nes = firewall_like_nes();
        let u = sequence_to_update(&nes, &[EventId::new(0)]);
        assert_eq!(u.configs.len(), 2);
        assert_eq!(u.events.len(), 1);
        assert_eq!(&u.configs[0], nes.initial_config());
    }
}
