//! Locality restrictions for incompatible events (Section 2).
//!
//! A set of events is *inconsistent* when `con` rejects it, and
//! *minimally-inconsistent* when all proper subsets are consistent. An NES
//! is *locally-determined* when every minimally-inconsistent set lives
//! entirely on one switch — the clean condition that makes it efficiently
//! implementable (Lemma 1 shows what goes wrong otherwise).

use crate::estructure::EventStructure;
use crate::event::EventSet;

/// Enumerates the minimally-inconsistent sets of size ≤ `max_size`.
///
/// Real programs have small conflict sets (size 2 in all the paper's
/// examples); `max_size` bounds the search.
pub fn minimally_inconsistent(es: &EventStructure, max_size: usize) -> Vec<EventSet> {
    let ids: Vec<_> = es.events().iter().map(|e| e.id).collect();
    let mut found: Vec<EventSet> = Vec::new();
    // Enumerate subsets by increasing size so minimality reduces to "no
    // found set is a subset".
    for size in 1..=max_size.min(ids.len()) {
        for combo in combinations(ids.len(), size) {
            let set: EventSet = combo.iter().map(|&i| ids[i]).collect();
            if es.consistent(set) {
                continue;
            }
            if found.iter().any(|f| f.is_subset(set)) {
                continue; // not minimal
            }
            found.push(set);
        }
    }
    found
}

/// Checks the locally-determined condition: every minimally-inconsistent set
/// (searched up to `max_size`) has all its events at the same switch.
pub fn locally_determined(es: &EventStructure, max_size: usize) -> bool {
    minimally_inconsistent(es, max_size).iter().all(|set| {
        let mut switches = set.iter().map(|e| es.event(e).loc.sw);
        match switches.next() {
            None => true,
            Some(first) => switches.all(|sw| sw == first),
        }
    })
}

/// All `size`-element index combinations of `0..n`, lexicographic.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(size);
    fn rec(n: usize, size: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(n, size, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(n, size, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId};
    use netkat::{Loc, Pred};

    fn ev(i: usize, sw: u64) -> Event {
        Event::new(EventId::new(i), Pred::True, Loc::new(sw, 1))
    }

    /// The paper's program P1: conflicting events at *different* switches
    /// (s2 and s4) — not locally determined.
    #[test]
    fn p1_is_not_locally_determined() {
        let es = EventStructure::new(
            vec![ev(0, 2), ev(1, 4)],
            [EventSet::singleton(EventId::new(0)), EventSet::singleton(EventId::new(1))],
        );
        let minimal = minimally_inconsistent(&es, 4);
        assert_eq!(minimal, vec![EventSet::from_iter([EventId::new(0), EventId::new(1)])]);
        assert!(!locally_determined(&es, 4));
    }

    /// The paper's program P2: conflicting events at the *same* switch (s2)
    /// — locally determined.
    #[test]
    fn p2_is_locally_determined() {
        let es = EventStructure::new(
            vec![ev(0, 2), ev(1, 2)],
            [EventSet::singleton(EventId::new(0)), EventSet::singleton(EventId::new(1))],
        );
        assert!(locally_determined(&es, 4));
    }

    /// Compatible events are never inconsistent, so locality holds trivially.
    #[test]
    fn compatible_events_are_local() {
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let es = EventStructure::new(
            vec![ev(0, 1), ev(1, 9)],
            [EventSet::singleton(e0), EventSet::singleton(e1), EventSet::from_iter([e0, e1])],
        );
        assert!(minimally_inconsistent(&es, 4).is_empty());
        assert!(locally_determined(&es, 4));
    }

    /// Minimality: with {e0,e1} inconsistent, the superset {e0,e1,e2} is
    /// inconsistent but not minimal.
    #[test]
    fn supersets_are_not_minimal() {
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let e2 = EventId::new(2);
        let es = EventStructure::new(
            vec![ev(0, 1), ev(1, 1), ev(2, 3)],
            [
                EventSet::singleton(e0),
                EventSet::singleton(e1),
                EventSet::from_iter([e0, e2]),
                EventSet::from_iter([e1, e2]),
            ],
        );
        let minimal = minimally_inconsistent(&es, 4);
        assert_eq!(minimal, vec![EventSet::from_iter([e0, e1])]);
        // e0/e1 conflict at the same switch 1, e2 elsewhere is irrelevant.
        assert!(locally_determined(&es, 4));
    }

    /// A three-way conflict whose pairs are all fine: {a,b,c} minimal.
    #[test]
    fn three_way_minimal_conflict() {
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let e2 = EventId::new(2);
        let es = EventStructure::new(
            vec![ev(0, 5), ev(1, 5), ev(2, 5)],
            [
                EventSet::from_iter([e0, e1]),
                EventSet::from_iter([e0, e2]),
                EventSet::from_iter([e1, e2]),
            ],
        );
        let minimal = minimally_inconsistent(&es, 4);
        assert_eq!(minimal, vec![EventSet::from_iter([e0, e1, e2])]);
        assert!(locally_determined(&es, 4));
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 0).len(), 1);
    }
}
