//! Event structures (Definitions 3 and 4), Winskel-style.
//!
//! Following Theorem 1.1.12 of Winskel's *Event Structures*, an event
//! structure is represented by its *family of configurations* `F`: the
//! consistency predicate is "contained in some member of `F`" (subset-closed
//! by construction) and the enabling relation is derived from `F`.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::event::{Event, EventId, EventSet};

/// An event structure `(E, con, ⊢)` represented by a family of event-sets.
///
/// # Examples
///
/// ```
/// use edn_core::{Event, EventId, EventSet, EventStructure};
/// use netkat::{Loc, Pred};
/// let e0 = EventId::new(0);
/// let e1 = EventId::new(1);
/// let events = vec![
///     Event::new(e0, Pred::True, Loc::new(1, 1)),
///     Event::new(e1, Pred::True, Loc::new(1, 2)),
/// ];
/// // e1 only after e0; {e0, e1} consistent.
/// let family = [
///     EventSet::empty(),
///     EventSet::singleton(e0),
///     EventSet::from_iter([e0, e1]),
/// ];
/// let es = EventStructure::new(events, family);
/// assert!(es.enabled(EventSet::empty(), e0));
/// assert!(!es.enabled(EventSet::empty(), e1));
/// assert!(es.enabled(EventSet::singleton(e0), e1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventStructure {
    events: Vec<Event>,
    family: BTreeSet<EventSet>,
}

impl EventStructure {
    /// Creates an event structure from its events and family of event-sets.
    ///
    /// The empty set is always added to the family (it is a configuration of
    /// every event structure).
    ///
    /// # Panics
    ///
    /// Panics if `events` are not numbered `0..n` in order, or a family
    /// member mentions an unknown event.
    pub fn new<I: IntoIterator<Item = EventSet>>(events: Vec<Event>, family: I) -> EventStructure {
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.id.index(), i, "events must be numbered consecutively");
        }
        let mut fam: BTreeSet<EventSet> = family.into_iter().collect();
        fam.insert(EventSet::empty());
        let universe: EventSet = events.iter().map(|e| e.id).collect();
        for s in &fam {
            assert!(s.is_subset(universe), "family member {s} mentions unknown events");
        }
        EventStructure { events: events.clone(), family: fam }
    }

    /// The events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with identifier `id`.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// The family of event-sets this structure was built from.
    pub fn family(&self) -> impl Iterator<Item = EventSet> + '_ {
        self.family.iter().copied()
    }

    /// The consistency predicate: `con(X)` iff `X ⊆ Y` for some family
    /// member `Y`. Subset-closure (the axiom of Definition 3) is immediate.
    pub fn consistent(&self, x: EventSet) -> bool {
        self.family.iter().any(|&y| x.is_subset(y))
    }

    /// The enabling relation: `X ⊢ e` iff `X` is consistent and some
    /// `Y ∈ F` with `e ∈ Y` has `Y ∖ {e} ⊆ X`.
    ///
    /// Monotonicity in `X` (the axiom of Definition 3) is immediate.
    pub fn enabled(&self, x: EventSet, e: EventId) -> bool {
        self.consistent(x) && self.family.iter().any(|&y| y.contains(e) && y.remove(e).is_subset(x))
    }

    /// All *event-sets* of the structure (Definition 4): consistent sets
    /// reachable from `∅` via the enabling relation, found by BFS.
    pub fn event_sets(&self) -> Vec<EventSet> {
        let universe: EventSet = self.events.iter().map(|e| e.id).collect();
        let mut seen = BTreeSet::from([EventSet::empty()]);
        let mut queue = VecDeque::from([EventSet::empty()]);
        while let Some(x) = queue.pop_front() {
            for e in universe.difference(x).iter() {
                let next = x.insert(e);
                if !seen.contains(&next) && self.enabled(x, e) && self.consistent(next) {
                    seen.insert(next);
                    queue.push_back(next);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// All event sequences `e₀ e₁ ⋯` allowed by the structure (Section 2,
    /// "Correct Network Traces"), up to `max_len` events, including the
    /// empty sequence.
    ///
    /// Intended for the small structures of real programs; the output grows
    /// factorially with the width of the structure.
    pub fn allowed_sequences(&self, max_len: usize) -> Vec<Vec<EventId>> {
        let universe: EventSet = self.events.iter().map(|e| e.id).collect();
        let mut out = vec![Vec::new()];
        let mut frontier: Vec<(EventSet, Vec<EventId>)> = vec![(EventSet::empty(), Vec::new())];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (x, seq) in &frontier {
                for e in universe.difference(*x).iter() {
                    let nx = x.insert(e);
                    if self.enabled(*x, e) && self.consistent(nx) {
                        let mut ns = seq.clone();
                        ns.push(e);
                        out.push(ns.clone());
                        next.push((nx, ns));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// Checks the axioms of Definition 3 on the materialized event-sets:
    /// `con` is subset-closed and `⊢` is monotone. Both hold by construction;
    /// this is a test oracle.
    pub fn verify_axioms(&self) -> bool {
        let sets = self.event_sets();
        for &x in &sets {
            for sub in x.subsets() {
                if self.consistent(x) && !self.consistent(sub) {
                    return false;
                }
            }
            for &y in &sets {
                if x.is_subset(y) {
                    for e in self.events.iter().map(|e| e.id) {
                        if self.enabled(x, e) && self.consistent(y) && !self.enabled(y, e) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for EventStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events:")?;
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        writeln!(f, "family:")?;
        for s in &self.family {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Loc, Pred};

    fn ev(i: usize, sw: u64) -> Event {
        Event::new(EventId::new(i), Pred::True, Loc::new(sw, 1))
    }

    /// Figure 3(a): two compatible events in any order.
    fn diamond() -> EventStructure {
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        EventStructure::new(
            vec![ev(0, 1), ev(1, 2)],
            [EventSet::singleton(e0), EventSet::singleton(e1), EventSet::from_iter([e0, e1])],
        )
    }

    /// Figure 3(b): two incompatible events (only one may occur).
    fn conflict() -> EventStructure {
        EventStructure::new(
            vec![ev(0, 1), ev(1, 1)],
            [EventSet::singleton(EventId::new(0)), EventSet::singleton(EventId::new(1))],
        )
    }

    #[test]
    fn diamond_event_sets() {
        let es = diamond();
        assert_eq!(es.event_sets().len(), 4);
        assert!(es.consistent(EventSet::from_iter([EventId::new(0), EventId::new(1)])));
        assert!(es.verify_axioms());
    }

    #[test]
    fn conflict_event_sets() {
        let es = conflict();
        let sets = es.event_sets();
        assert_eq!(sets.len(), 3); // {}, {e0}, {e1}
        assert!(!es.consistent(EventSet::from_iter([EventId::new(0), EventId::new(1)])));
        assert!(es.verify_axioms());
    }

    #[test]
    fn causal_chain_enabling() {
        // e1 requires e0.
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let es = EventStructure::new(
            vec![ev(0, 1), ev(1, 2)],
            [EventSet::singleton(e0), EventSet::from_iter([e0, e1])],
        );
        assert!(es.enabled(EventSet::empty(), e0));
        assert!(!es.enabled(EventSet::empty(), e1));
        assert!(es.enabled(EventSet::singleton(e0), e1));
        // Monotone: a larger consistent set still enables e1.
        assert_eq!(es.event_sets().len(), 3);
    }

    #[test]
    fn allowed_sequences_of_diamond() {
        let es = diamond();
        let seqs = es.allowed_sequences(4);
        // ε, e0, e1, e0e1, e1e0.
        assert_eq!(seqs.len(), 5);
        assert!(seqs.contains(&vec![EventId::new(0), EventId::new(1)]));
        assert!(seqs.contains(&vec![EventId::new(1), EventId::new(0)]));
    }

    #[test]
    fn allowed_sequences_of_conflict_exclude_both() {
        let es = conflict();
        let seqs = es.allowed_sequences(4);
        assert_eq!(seqs.len(), 3); // ε, e0, e1
        assert!(!seqs.iter().any(|s| s.len() == 2));
    }

    #[test]
    fn enabling_requires_consistency_of_source() {
        let es = conflict();
        let both = EventSet::from_iter([EventId::new(0), EventId::new(1)]);
        assert!(!es.enabled(both, EventId::new(0)));
    }

    #[test]
    #[should_panic(expected = "numbered consecutively")]
    fn misnumbered_events_panic() {
        EventStructure::new(vec![ev(1, 1)], []);
    }

    #[test]
    #[should_panic(expected = "unknown events")]
    fn family_with_unknown_event_panics() {
        EventStructure::new(vec![ev(0, 1)], [EventSet::singleton(EventId::new(5))]);
    }
}
