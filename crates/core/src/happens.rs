//! The happens-before relation on located packets (Definition 1).
//!
//! `≺ₙₜᵣ` is the least partial order that respects the total order induced
//! by the global sequence at each switch and within each packet trace. It is
//! computed once per trace as a transitive closure over the *immediate*
//! predecessor edges (latest earlier occurrence at the same switch, plus the
//! predecessor within each packet trace), which generate the same closure.

use crate::trace::NetworkTrace;

/// A growable bitset over trace indices.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct IndexSet {
    words: Vec<u64>,
}

impl IndexSet {
    fn with_capacity(n: usize) -> IndexSet {
        IndexSet { words: vec![0; n.div_ceil(64)] }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: usize) -> bool {
        self.words.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    fn union_with(&mut self, other: &IndexSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// The happens-before partial order `≺ₙₜᵣ` of a network trace.
///
/// # Examples
///
/// ```
/// use edn_core::{HappensBefore, TraceBuilder};
/// use netkat::{Loc, Packet};
/// let mut b = TraceBuilder::new();
/// let h = b.push(Packet::new(), Loc::new(100, 0), None);
/// let s1 = b.push(Packet::new(), Loc::new(1, 1), Some(h));
/// let s2 = b.push(Packet::new(), Loc::new(2, 1), Some(s1));
/// let ntr = b.build().unwrap();
/// let hb = HappensBefore::of(&ntr);
/// assert!(hb.before(h, s2));     // same packet trace
/// assert!(!hb.before(s2, s1));   // order is strict and antisymmetric
/// ```
#[derive(Clone, Debug)]
pub struct HappensBefore {
    /// `ancestors[i]` = the set of indices `j` with `lpⱼ ≺ lpᵢ`.
    ancestors: Vec<IndexSet>,
}

impl HappensBefore {
    /// Computes the relation for a network trace.
    pub fn of(ntr: &NetworkTrace) -> HappensBefore {
        let n = ntr.len();
        let mut ancestors: Vec<IndexSet> = (0..n).map(|_| IndexSet::with_capacity(n)).collect();

        // Immediate predecessor at the same switch.
        use std::collections::HashMap;
        let mut last_at_switch: HashMap<u64, usize> = HashMap::new();
        let mut switch_pred: Vec<Option<usize>> = vec![None; n];
        for (i, pred) in switch_pred.iter_mut().enumerate() {
            let sw = ntr.packet(i).loc.sw;
            *pred = last_at_switch.insert(sw, i);
        }

        // Immediate predecessor within each packet trace.
        let mut trace_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in ntr.traces() {
            for w in t.windows(2) {
                trace_preds[w[1]].push(w[0]);
            }
        }
        // Out-of-band causal edges (controller messages).
        for &(from, to) in ntr.extra_edges() {
            trace_preds[to].push(from);
        }

        for i in 0..n {
            let mut preds: Vec<usize> = trace_preds[i].clone();
            if let Some(p) = switch_pred[i] {
                preds.push(p);
            }
            preds.sort_unstable();
            preds.dedup();
            // Indices only point backwards, so ancestors of predecessors are
            // already complete.
            let mut acc = IndexSet::with_capacity(n);
            for p in preds {
                acc.insert(p);
                let (left, right) = ancestors.split_at_mut(i);
                let _ = right;
                acc.union_with(&left[p]);
            }
            ancestors[i] = acc;
        }

        HappensBefore { ancestors }
    }

    /// Returns `true` if `lp_a ≺ lp_b` (strictly).
    pub fn before(&self, a: usize, b: usize) -> bool {
        self.ancestors.get(b).is_some_and(|s| s.contains(a))
    }

    /// Returns `true` if every index of `indices` happens strictly before `k`.
    pub fn all_before<I: IntoIterator<Item = usize>>(&self, indices: I, k: usize) -> bool {
        indices.into_iter().all(|i| self.before(i, k))
    }

    /// Returns `true` if `k` happens strictly before every index of `indices`.
    pub fn all_after<I: IntoIterator<Item = usize>>(&self, indices: I, k: usize) -> bool {
        indices.into_iter().all(|i| self.before(k, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use netkat::{Loc, Packet};

    /// Two packets through disjoint switches are unordered; packets through a
    /// shared switch are ordered by the global sequence.
    #[test]
    fn same_switch_orders_unrelated_packets() {
        let mut b = TraceBuilder::new();
        // Packet A: host 100 -> switch 1 -> switch 4
        let a0 = b.push(Packet::new(), Loc::new(100, 0), None);
        let a1 = b.push(Packet::new(), Loc::new(1, 1), Some(a0));
        let a2 = b.push(Packet::new(), Loc::new(4, 1), Some(a1));
        // Packet B: host 101 -> switch 4 (processed after A's visit)
        let b0 = b.push(Packet::new(), Loc::new(101, 0), None);
        let b1 = b.push(Packet::new(), Loc::new(4, 2), Some(b0));
        let ntr = b.build().unwrap();
        let hb = HappensBefore::of(&ntr);
        // a2 and b1 are both at switch 4: ordered by position.
        assert!(hb.before(a2, b1));
        assert!(!hb.before(b1, a2));
        // a1 (switch 1) is unrelated to b0 (host 101)...
        assert!(!hb.before(a1, b0));
        assert!(!hb.before(b0, a1));
        // ...but a1 ≺ b1 transitively through switch 4? No: a1 ≺ a2 ≺ b1.
        assert!(hb.before(a1, b1));
    }

    #[test]
    fn strictness_and_antisymmetry() {
        let mut b = TraceBuilder::new();
        let x = b.push(Packet::new(), Loc::new(1, 1), None);
        let y = b.push(Packet::new(), Loc::new(1, 2), Some(x));
        let ntr = b.build().unwrap();
        let hb = HappensBefore::of(&ntr);
        assert!(!hb.before(x, x));
        assert!(hb.before(x, y));
        assert!(!hb.before(y, x));
    }

    #[test]
    fn transitivity_across_traces_via_switch() {
        let mut b = TraceBuilder::new();
        // trace 1 visits switch 2 then stops; trace 2 starts at switch 2
        // later and moves to switch 3.
        let p0 = b.push(Packet::new(), Loc::new(2, 1), None);
        let q0 = b.push(Packet::new(), Loc::new(2, 2), None);
        let q1 = b.push(Packet::new(), Loc::new(3, 1), Some(q0));
        let ntr = b.build().unwrap();
        let hb = HappensBefore::of(&ntr);
        // p0 ≺ q0 (same switch), q0 ≺ q1 (same trace) ⇒ p0 ≺ q1.
        assert!(hb.before(p0, q1));
    }

    #[test]
    fn all_before_and_all_after() {
        let mut b = TraceBuilder::new();
        let x = b.push(Packet::new(), Loc::new(1, 1), None);
        let y = b.push(Packet::new(), Loc::new(1, 2), Some(x));
        let z = b.push(Packet::new(), Loc::new(9, 1), None);
        let ntr = b.build().unwrap();
        let hb = HappensBefore::of(&ntr);
        assert!(hb.all_before([x], y));
        assert!(hb.all_after([y], x));
        assert!(!hb.all_before([x, z], y)); // z unordered w.r.t. y
    }

    /// Partial-order sanity on a random-ish braid of traces.
    #[test]
    fn closure_is_a_partial_order() {
        let mut b = TraceBuilder::new();
        let mut idx = Vec::new();
        let mut prev: Option<usize> = None;
        for i in 0..10u64 {
            let cur = b.push(Packet::new(), Loc::new(i % 3, 0), prev.filter(|_| i % 4 != 0));
            prev = Some(cur);
            idx.push(cur);
        }
        let ntr = b.build().unwrap();
        let hb = HappensBefore::of(&ntr);
        let n = ntr.len();
        for i in 0..n {
            assert!(!hb.before(i, i), "irreflexive");
            for j in 0..n {
                if hb.before(i, j) {
                    assert!(!hb.before(j, i), "antisymmetric");
                    for k in 0..n {
                        if hb.before(j, k) {
                            assert!(hb.before(i, k), "transitive");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod controller_causality_tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use netkat::{Loc, Packet};

    /// Out-of-band causal edges (controller messages) extend the order: a
    /// trigger at switch 1 happens-before later processing at switch 9 even
    /// though no packet ever travelled between them.
    #[test]
    fn extra_edges_extend_the_order() {
        let mut b = TraceBuilder::new();
        let trigger = b.push(Packet::new(), Loc::new(1, 1), None);
        let far = b.push(Packet::new(), Loc::new(9, 1), None);
        let later_far = b.push(Packet::new(), Loc::new(9, 2), None);
        // Without the edge, switch 1 and switch 9 are causally unrelated.
        let ntr = b.clone().build().unwrap();
        let hb = HappensBefore::of(&ntr);
        assert!(!hb.before(trigger, far));
        assert!(!hb.before(trigger, later_far));
        // With a controller push between trigger and `later_far`:
        b.add_causal_edge(trigger, later_far);
        let ntr = b.build().unwrap();
        let hb = HappensBefore::of(&ntr);
        assert!(hb.before(trigger, later_far), "controller edge orders them");
        // ...and the same-switch chain extends it: `far` precedes
        // `later_far` at switch 9, but the controller edge does not reach
        // backwards.
        assert!(hb.before(far, later_far));
        assert!(!hb.before(trigger, far));
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_causal_edges_are_rejected() {
        let mut b = TraceBuilder::new();
        let first = b.push(Packet::new(), Loc::new(1, 1), None);
        let second = b.push(Packet::new(), Loc::new(2, 1), None);
        b.add_causal_edge(second, first);
    }
}
