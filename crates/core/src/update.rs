//! Event-driven consistent updates (Definition 2).
//!
//! An update `(U, E)` is a sequence `C₀ →e₀ C₁ →e₁ ⋯ →eₙ Cₙ₊₁` together
//! with the universe of events `E`. A network trace is *correct* with
//! respect to it when every packet trace is processed by a single
//! configuration, packets entirely before the i-th event's first occurrence
//! use a preceding configuration, and packets entirely after it use a
//! following one.

use std::fmt;

use crate::config::Config;
use crate::event::{Event, EventId};
use crate::happens::HappensBefore;
use crate::trace::{LocatedPacket, NetworkTrace};

/// Decides which event-matching arrivals constitute event *occurrences*.
///
/// Read literally, Definition 2 counts every match. But the paper's
/// implementation — correctly, per its locality principle — fires an event
/// only at a switch that has *heard about* the events enabling it, and a
/// packet matching an event whose prerequisites have not causally reached
/// that switch is not an occurrence (the `E′` computation of the SWITCH
/// rule). This trait lets the checker choose between the literal reading
/// ([`LiteralOccurrences`]) and the causal one (built from an NES in
/// `correctness`).
pub trait OccurrenceSemantics {
    /// Is the matching arrival at global index `j` an occurrence of
    /// `event`, given the occurrences `prior` (event, index) observed so
    /// far?
    fn is_occurrence(
        &self,
        hb: &HappensBefore,
        j: usize,
        event: &Event,
        prior: &[(EventId, usize)],
    ) -> bool;
}

/// The literal reading of Definition 2: every match is an occurrence.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiteralOccurrences;

impl OccurrenceSemantics for LiteralOccurrences {
    fn is_occurrence(
        &self,
        _: &HappensBefore,
        _: usize,
        _: &Event,
        _: &[(EventId, usize)],
    ) -> bool {
        true
    }
}

/// An update sequence `C₀ →e₀ C₁ →e₁ ⋯ →eₙ Cₙ₊₁`.
#[derive(Clone, Debug)]
pub struct UpdateSequence {
    /// `n + 2` configurations.
    pub configs: Vec<Config>,
    /// `n + 1` events, with `events[i]` labelling `Cᵢ → Cᵢ₊₁`.
    pub events: Vec<Event>,
}

impl UpdateSequence {
    /// Creates an update sequence.
    ///
    /// # Panics
    ///
    /// Panics unless `configs.len() == events.len() + 1`.
    pub fn new(configs: Vec<Config>, events: Vec<Event>) -> UpdateSequence {
        assert_eq!(
            configs.len(),
            events.len() + 1,
            "an update C0 -e0-> ... -en-> Cn+1 needs one more config than events"
        );
        UpdateSequence { configs, events }
    }
}

/// Why a trace fails Definition 2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UpdateViolation {
    /// The first-occurrence sequence `FO(ntr, U)` does not exist.
    NoFirstOccurrences {
        /// Index of the first event in `U` without a valid occurrence, or
        /// `None` if a stray event match after the last occurrence breaks it.
        failed_at: Option<usize>,
    },
    /// A packet trace is not processed entirely by any configuration.
    Inconsistent {
        /// The packet trace index in `T`.
        trace: usize,
    },
    /// A packet trace entirely before event `i`'s occurrence was processed
    /// by a configuration later than `Cᵢ` (the update happened too early).
    TooEarly {
        /// The packet trace index.
        trace: usize,
        /// The event position in `U`.
        event: usize,
    },
    /// A packet trace entirely after event `i`'s occurrence was processed by
    /// a configuration earlier than `Cᵢ₊₁` (the update happened too late).
    TooLate {
        /// The packet trace index.
        trace: usize,
        /// The event position in `U`.
        event: usize,
    },
}

impl fmt::Display for UpdateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateViolation::NoFirstOccurrences { failed_at: Some(i) } => {
                write!(f, "event {i} of the update sequence never occurs in the trace")
            }
            UpdateViolation::NoFirstOccurrences { failed_at: None } => {
                write!(f, "an event of the universe occurs after the final first-occurrence")
            }
            UpdateViolation::Inconsistent { trace } => {
                write!(f, "packet trace {trace} is not processed by any single configuration")
            }
            UpdateViolation::TooEarly { trace, event } => write!(
                f,
                "packet trace {trace} precedes event {event} but used a later configuration"
            ),
            UpdateViolation::TooLate { trace, event } => write!(
                f,
                "packet trace {trace} follows event {event} but used an earlier configuration"
            ),
        }
    }
}

impl std::error::Error for UpdateViolation {}

/// Computes `FO(ntr, U)`: the first-occurrence indices `k₀ < ⋯ < kₙ`.
///
/// Returns the violation if they do not exist: some event has no occurrence
/// in its window, the triggering packet was not processed by the immediately
/// preceding configuration, or one of `residual` matches after `kₙ`.
///
/// `residual` lists the events whose occurrence after the final
/// first-occurrence invalidates the trace. Callers working from an NES
/// should pass only the events still *fireable* once the sequence has run
/// (not yet occurred, enabled, and consistent to add): an arrival matching
/// an already-consumed or conflicting event does not constitute an event
/// occurrence (cf. the `E′` computation in the SWITCH rule of Fig. 7).
pub fn first_occurrences(
    ntr: &NetworkTrace,
    update: &UpdateSequence,
    residual: &[Event],
    occ: &dyn OccurrenceSemantics,
) -> Result<Vec<usize>, UpdateViolation> {
    let hb = HappensBefore::of(ntr);
    first_occurrences_with_hb(ntr, &hb, update, residual, occ)
}

fn first_occurrences_with_hb(
    ntr: &NetworkTrace,
    hb: &HappensBefore,
    update: &UpdateSequence,
    residual: &[Event],
    occ: &dyn OccurrenceSemantics,
) -> Result<Vec<usize>, UpdateViolation> {
    let erased: Vec<LocatedPacket> =
        ntr.packets().iter().map(LocatedPacket::erase_virtual).collect();
    let occurs = |j: usize, e: &Event, prior: &[(EventId, usize)]| {
        e.matches(&erased[j].packet, erased[j].loc) && occ.is_occurrence(hb, j, e, prior)
    };

    let mut ks: Vec<usize> = Vec::with_capacity(update.events.len());
    let mut prior: Vec<(EventId, usize)> = Vec::new();
    let mut prev: isize = -1;
    for (i, e) in update.events.iter().enumerate() {
        let start = (prev + 1) as usize;
        let Some(k) = (start..erased.len()).find(|&j| occurs(j, e, &prior)) else {
            return Err(UpdateViolation::NoFirstOccurrences { failed_at: Some(i) });
        };
        // The triggering packet must be processed by the immediately
        // preceding configuration: ∃t ∈ ntr↓k with ntr↓t ∈ Traces(Cᵢ).
        let triggered_ok = ntr.traces_through(k).into_iter().any(|t| {
            let trace: Vec<LocatedPacket> =
                ntr.traces()[t].iter().map(|&j| erased[j].clone()).collect();
            update.configs[i].admits_trace(&trace, !ntr.trace_is_terminated(t))
        });
        if !triggered_ok {
            return Err(UpdateViolation::NoFirstOccurrences { failed_at: Some(i) });
        }
        ks.push(k);
        prior.push((e.id, k));
        prev = k as isize;
    }
    // No still-fireable event may occur after k_n.
    let kn = ks.last().copied().map(|k| k as isize).unwrap_or(-1);
    for j in ((kn + 1) as usize)..erased.len() {
        if residual.iter().any(|e| occurs(j, e, &prior)) {
            return Err(UpdateViolation::NoFirstOccurrences { failed_at: None });
        }
    }
    Ok(ks)
}

/// Checks a network trace against Definition 2.
///
/// Virtual runtime fields (tag, digest) are erased before matching events
/// and checking `Traces(C)` membership, since abstract configurations do not
/// mention them. Packet traces still in flight are treated as prefixes.
/// `residual` is documented at [`first_occurrences`].
///
/// # Errors
///
/// Returns the first [`UpdateViolation`] found.
pub fn check_update(
    ntr: &NetworkTrace,
    update: &UpdateSequence,
    residual: &[Event],
    occ: &dyn OccurrenceSemantics,
) -> Result<(), UpdateViolation> {
    let hb = HappensBefore::of(ntr);
    let ks = first_occurrences_with_hb(ntr, &hb, update, residual, occ)?;
    let erased: Vec<LocatedPacket> =
        ntr.packets().iter().map(LocatedPacket::erase_virtual).collect();

    // Which configurations admit each packet trace. A trace that ended in a
    // recorded drop must be a *complete* trace of the configuration; one
    // still in flight at the end of the recording only needs to be a prefix.
    let n_traces = ntr.traces().len();
    let mut admitted: Vec<Vec<bool>> = Vec::with_capacity(n_traces);
    for t in 0..n_traces {
        let trace: Vec<LocatedPacket> =
            ntr.traces()[t].iter().map(|&j| erased[j].clone()).collect();
        let allow_prefix = !ntr.trace_is_terminated(t);
        admitted
            .push(update.configs.iter().map(|c| c.admits_trace(&trace, allow_prefix)).collect());
    }

    for (t, admitted_t) in admitted.iter().enumerate() {
        // Condition 1: some configuration processes the whole trace.
        if !admitted_t.iter().any(|&a| a) {
            return Err(UpdateViolation::Inconsistent { trace: t });
        }
        for (i, &k) in ks.iter().enumerate() {
            let idxs = || ntr.traces()[t].iter().copied();
            // Condition 2: entirely before eᵢ ⇒ processed by C₀..Cᵢ.
            if hb.all_before(idxs(), k) && !admitted_t[..=i].iter().any(|&a| a) {
                return Err(UpdateViolation::TooEarly { trace: t, event: i });
            }
            // Condition 3: entirely after eᵢ ⇒ processed by Cᵢ₊₁..Cₙ₊₁.
            if hb.all_after(idxs(), k) && !admitted_t[i + 1..].iter().any(|&a| a) {
                return Err(UpdateViolation::TooLate { trace: t, event: i });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::trace::TraceBuilder;
    use netkat::{Action, ActionSet, Field, FlowTable, Loc, Match, Packet, Pred, Rule};

    /// A one-link world: host 100 -- 1:2, host 101 -- 1:3, switch 1.
    /// C0: pt2 -> pt3 only. C1: pt2 -> pt3 and pt3 -> pt2.
    fn configs() -> (Config, Config) {
        let base = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(100, Loc::new(1, 2));
            c.add_host(101, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let c0 = base(vec![fwd(2, 3)]);
        let c1 = base(vec![fwd(2, 3), fwd(3, 2)]);
        (c0, c1)
    }

    /// Arrival of a packet for host 101 at 1:2 — the predicate keeps the
    /// event from matching *egress* occurrences of reply traffic at 1:2,
    /// exactly like the paper's `(dst=H4, 4:1)` events.
    fn trigger_event() -> Event {
        Event::new(EventId::new(0), Pred::test(Field::IpDst, 101), Loc::new(1, 2))
    }

    fn fwd_pk() -> Packet {
        Packet::new().with(Field::IpDst, 101)
    }

    fn reply_pk() -> Packet {
        Packet::new().with(Field::IpDst, 100)
    }

    fn push_transit(b: &mut TraceBuilder, pk: &Packet, hops: &[(u64, u64)]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut parent = None;
        for &(sw, pt) in hops {
            let i = b.push(pk.clone(), Loc::new(sw, pt), parent);
            parent = Some(i);
            out.push(i);
        }
        out
    }

    #[test]
    fn correct_single_update_passes() {
        let (c0, c1) = configs();
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0, c1], vec![e.clone()]);
        let mut b = TraceBuilder::new();
        // Forward flow triggers the event at 1:2; delivered to host 101.
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        // Reply flow afterwards, allowed by C1.
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3), (1, 2), (100, 0)]);
        let ntr = b.build().unwrap();
        // The single event has fired, so nothing remains fireable.
        let ks = first_occurrences(&ntr, &update, &[], &LiteralOccurrences).unwrap();
        assert_eq!(ks, vec![1]);
        assert!(check_update(&ntr, &update, &[], &LiteralOccurrences).is_ok());
    }

    #[test]
    fn residual_event_match_after_kn_fails_fo() {
        let (c0, c1) = configs();
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0, c1], vec![e.clone()]);
        let mut b = TraceBuilder::new();
        // Two forward flows: the second matches the event again after k0.
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        let ntr = b.build().unwrap();
        // If the event is still considered fireable, FO does not exist...
        let err = first_occurrences(&ntr, &update, &[e], &LiteralOccurrences).unwrap_err();
        assert_eq!(err, UpdateViolation::NoFirstOccurrences { failed_at: None });
        // ...but once consumed (the NES-aware residual), the trace is fine.
        assert!(check_update(&ntr, &update, &[], &LiteralOccurrences).is_ok());
    }

    #[test]
    fn dropped_reply_is_a_legal_prefix() {
        let (c0, c1) = configs();
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0, c1], vec![e.clone()]);
        let mut b = TraceBuilder::new();
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        // Reply arrives at 1:3 afterwards and stops there: a complete C0
        // trace (no rule for pt 3) and a C1 prefix — either reading is
        // consistent with Definition 2.
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3)]);
        let ntr = b.build().unwrap();
        assert!(check_update(&ntr, &update, &[], &LiteralOccurrences).is_ok());
    }

    #[test]
    fn forbidden_flow_before_event_is_too_early() {
        let (c0, c1) = configs();
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0.clone(), c1], vec![e.clone()]);
        let mut b = TraceBuilder::new();
        // The reply path is used *before* any packet from 100 arrives —
        // i.e. the network behaved like C1 too early...
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3), (1, 2), (100, 0)]);
        // ...then the trigger fires.
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        let ntr = b.build().unwrap();
        let err = check_update(&ntr, &update, &[], &LiteralOccurrences).unwrap_err();
        assert_eq!(err, UpdateViolation::TooEarly { trace: 0, event: 0 });
    }

    #[test]
    fn missing_event_fails_fo() {
        let (c0, c1) = configs();
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0, c1], vec![e.clone()]);
        let mut b = TraceBuilder::new();
        push_transit(&mut b, &reply_pk(), &[(101, 0), (1, 3)]);
        let ntr = b.build().unwrap();
        let err = first_occurrences(&ntr, &update, &[e], &LiteralOccurrences).unwrap_err();
        assert_eq!(err, UpdateViolation::NoFirstOccurrences { failed_at: Some(0) });
    }

    #[test]
    fn trace_outside_every_config_is_inconsistent() {
        // C0 forwards 2->3; C1 forwards 2->4. A packet hopping 2->5 is
        // admitted by neither.
        let mk = |out: u64| {
            let mut c = Config::new();
            c.install(
                1,
                FlowTable::from_rules([Rule::new(
                    Match::new().with(Field::Port, 2),
                    ActionSet::single(Action::assign(Field::Port, out)),
                )]),
            );
            c.add_host(100, Loc::new(1, 2));
            c.add_host(101, Loc::new(1, 3));
            c
        };
        let (c0, c1) = (mk(3), mk(4));
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0, c1], vec![e]);
        let mut b = TraceBuilder::new();
        // Trigger packet: legal C0 transit.
        push_transit(&mut b, &fwd_pk(), &[(100, 0), (1, 2), (1, 3), (101, 0)]);
        // Rogue packet: hops to a port neither config produces.
        push_transit(&mut b, &reply_pk(), &[(100, 0), (1, 2), (1, 5)]);
        let ntr = b.build().unwrap();
        let err = check_update(&ntr, &update, &[], &LiteralOccurrences).unwrap_err();
        assert_eq!(err, UpdateViolation::Inconsistent { trace: 1 });
    }

    #[test]
    fn multicast_fork_paths_check_independently() {
        // Definition 2 constrains *packet traces* (root-to-leaf paths): a
        // fork whose branches are each admitted by some configuration
        // passes, even though no single configuration multicasts.
        let mk = |out: u64| {
            let mut c = Config::new();
            c.install(
                1,
                FlowTable::from_rules([Rule::new(
                    Match::new().with(Field::Port, 2),
                    ActionSet::single(Action::assign(Field::Port, out)),
                )]),
            );
            c.add_host(100, Loc::new(1, 2));
            c
        };
        let (c0, c1) = (mk(3), mk(4));
        let e = trigger_event();
        let update = UpdateSequence::new(vec![c0, c1], vec![e]);
        let mut b = TraceBuilder::new();
        let pk = fwd_pk();
        let h = b.push(pk.clone(), Loc::new(100, 0), None);
        let at1 = b.push(pk.clone(), Loc::new(1, 2), Some(h));
        b.push(pk.clone(), Loc::new(1, 3), Some(at1));
        b.push(pk.clone(), Loc::new(1, 4), Some(at1));
        let ntr = b.build().unwrap();
        assert!(check_update(&ntr, &update, &[], &LiteralOccurrences).is_ok());
    }

    #[test]
    #[should_panic(expected = "one more config")]
    fn mismatched_lengths_panic() {
        let (c0, _) = configs();
        UpdateSequence::new(vec![c0], vec![trigger_event()]);
    }
}
