//! Online checking of Definition 6 over a streaming trace.
//!
//! [`OnlineChecker`] is a [`TraceObserver`] that consumes the per-packet
//! processing steps of a run *while it executes* and produces the same
//! accept/reject verdict as the post-hoc [`check_correct`](crate::check_correct)
//! — without ever materializing the trace. Memory is bounded by the number of
//! packets *in flight* (plus small per-switch and per-event state), not by
//! the length of the run, so a `TraceMode::StatsOnly`-priced run of tens of
//! millions of events can still be verified.
//!
//! # How it works
//!
//! Every condition of Definitions 2 and 6 is restructured around two facts:
//!
//! 1. **Packet traces are totally ordered by `≺`** (each record is a trace
//!    child of its predecessor), so "every node of trace `t` precedes `k`"
//!    collapses to "the *leaf* of `t` precedes `k`", and "every node follows
//!    `k`" collapses to "the *root* of `t` follows `k`".
//! 2. **Happens-before ancestry is a union of predecessor masks** (trace
//!    parent, latest earlier record at the same switch, controller edges),
//!    so each live node carries small bitmasks instead of the full relation.
//!
//! Per live node the checker keeps: the NFA state of its (virtual-field
//! erased) packet path under every reachable configuration `g(X)` (one
//! 3-bit state per configuration, exactly the automaton of
//! [`Config::admits_trace`](crate::Config::admits_trace)); the set of event
//! *firings* that happened-before it; and the set of *watched* leaves that
//! happened-before it. Event firings replay the SWITCH rule greedily: an
//! unfired event fires at a record when the packet matches and some enabling
//! set has fired entirely happens-before that record. Each firing appends
//! `g(X)` to the *realized* configuration sequence — the online image of the
//! update `g(∅) →e₀ g({e₀}) →e₁ ⋯`.
//!
//! When a path ends, its admitted-configuration set `D` (which
//! configurations accept the finished path) is intersected against the
//! realized sequence: condition 1 (some configuration processes the trace)
//! becomes a pending obligation discharged by future firings; condition 2
//! (too early) is tested when a later firing sees the leaf in its
//! happens-before past; condition 3 (too late) intersects `D` with the
//! configurations realized *after* the last firing preceding the trace's
//! root. The triggering-packet side condition of first occurrences is a
//! reference-counted obligation carried from the firing node to each
//! descendant leaf. Prefixes retire as soon as the engine promises a node
//! can gain no more children.
//!
//! # Capacity
//!
//! The checker is exact while the run stays within its (generous) windows:
//! at most 64 reachable configurations, 64 event firings, and 64
//! simultaneously-watched leaves. Beyond that it returns the conservative
//! [`OnlineViolation::CapacityExceeded`] rather than guessing.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

use netkat::{Loc, Packet};

use crate::event::{Event, EventId, EventSet};
use crate::nes::NetworkEventStructure;
use crate::observe::{LeafKind, TraceObserver};
use crate::trace::LocatedPacket;

/// Why an online run is not correct (or not checkable).
///
/// The kinds mirror the post-hoc violations but are not one-to-one: the
/// online checker commits to the event sequence that actually fired, while
/// [`check_correct`](crate::check_correct) searches all allowed sequences.
/// Equivalence holds at the accept/reject level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OnlineViolation {
    /// A finished packet trace is admitted by no realized configuration
    /// (condition 1 / the initial-configuration check).
    Inconsistent,
    /// A packet trace entirely before a firing was processed only by later
    /// configurations (condition 2).
    TooEarly,
    /// A packet trace entirely after a firing was processed only by earlier
    /// configurations (condition 3).
    TooLate,
    /// No packet trace through a firing node was processed by the
    /// configuration being replaced (the first-occurrence side condition).
    TriggerUnprocessed,
    /// The run exceeded a checker window (configurations, firings, or
    /// watched leaves); the verdict is conservatively negative.
    CapacityExceeded,
}

impl OnlineViolation {
    /// A short static name for reports and flight-recorder entries.
    pub fn name(self) -> &'static str {
        match self {
            OnlineViolation::Inconsistent => "inconsistent",
            OnlineViolation::TooEarly => "too_early",
            OnlineViolation::TooLate => "too_late",
            OnlineViolation::TriggerUnprocessed => "trigger_unprocessed",
            OnlineViolation::CapacityExceeded => "capacity_exceeded",
        }
    }
}

impl fmt::Display for OnlineViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineViolation::Inconsistent => {
                write!(f, "a packet trace is admitted by no realized configuration")
            }
            OnlineViolation::TooEarly => {
                write!(f, "a packet trace preceding an event firing used a later configuration")
            }
            OnlineViolation::TooLate => {
                write!(f, "a packet trace following an event firing used an earlier configuration")
            }
            OnlineViolation::TriggerUnprocessed => write!(
                f,
                "no trace through an event firing was processed by the replaced configuration"
            ),
            OnlineViolation::CapacityExceeded => {
                write!(f, "the run exceeded an online-checker capacity window")
            }
        }
    }
}

impl std::error::Error for OnlineViolation {}

/// A live trace node: the checker's bounded per-packet-in-flight state.
struct Node {
    /// The (virtual-field erased) located packet of this record.
    lp: LocatedPacket,
    /// NFA state under each reachable configuration (0 = rejected).
    nfa: Box<[u8]>,
    /// Firing positions at strict happens-before ancestors.
    fired_anc: u64,
    /// Watch bits of pending leaves that happened-before this node.
    watch_anc: u64,
    /// Firing positions that happened-before this path's *root*.
    root_pred: u64,
    /// Whether this node starts a path (no trace parent).
    is_root: bool,
    /// Trigger obligations carried by this path (indices into `obligations`).
    trig: Vec<u32>,
    /// This node's own firing position bit (set at seal; 0 if none).
    own_fired: u64,
    /// This node's own watch bit (set if its leaf went pending; 0 if none).
    own_watch: u64,
    /// Set by [`TraceObserver::cause`]: snapshot masks at seal.
    cause_requested: bool,
    /// Set by [`TraceObserver::leaf`]: processed (and dropped) at seal.
    leafed: Option<LeafKind>,
    /// Set by [`TraceObserver::retire`] on the unsealed node.
    retired: bool,
}

/// The most recent record at a switch (or host), with its masks. Late-updated
/// when that record seals (own firing) or leafs (own watch).
struct LastAt {
    idx: usize,
    fired: u64,
    watch: u64,
}

/// A condition-1 obligation: leaf admitted by `d`, none realized yet.
struct Pending1 {
    d: u64,
    discharged: bool,
}

/// A first-occurrence trigger obligation (refcounted down the firing path).
struct Obligation {
    /// Domain index of the configuration being replaced.
    cfg: u32,
    /// Some descendant leaf was admitted by it.
    satisfied: bool,
    /// Live nodes still carrying the obligation.
    live: u32,
}

struct Inner {
    // NES-derived, fixed at construction.
    events: Vec<Event>,
    family: Vec<EventSet>,
    configs: Vec<crate::config::Config>,
    domain_index: HashMap<EventSet, u32>,

    // Firing state.
    fired_set: EventSet,
    fired_events: Vec<EventId>,
    realized_order: Vec<u32>,
    realized_mask: u64,

    // Live-trace state.
    nodes: BTreeMap<usize, Node>,
    unsealed: Option<usize>,
    last_at: HashMap<u64, LastAt>,
    cause_masks: HashMap<usize, (u64, u64)>,

    // Open obligations.
    pending1: Vec<Pending1>,
    pending3: Vec<u64>,
    obligations: Vec<Obligation>,

    verdict: Option<Result<(), OnlineViolation>>,
    finished: bool,

    // Telemetry high-waters and counters. These survive `fail`'s state
    // clear: the numbers leading *into* a violation are the interesting
    // ones.
    m_nodes_hw: u64,
    m_retired: u64,
    m_obligations_hw: u64,
    m_watch_hw: u64,
    /// The engine's flight recorder, when one was attached: event firings
    /// and the violation itself are logged as checker transitions.
    flight: Option<edn_obs::FlightRecorder>,
}

impl Inner {
    fn dead(&self) -> bool {
        self.verdict.is_some()
    }

    fn fail(&mut self, v: OnlineViolation) {
        if self.verdict.is_none() {
            self.verdict = Some(Err(v));
            if let Some(fr) = &self.flight {
                fr.record(edn_obs::FlightEvent {
                    t_us: 0,
                    seq: self.fired_events.len() as u64,
                    kind: v.name(),
                    node: 0,
                    depth: self.nodes.len() as u64,
                });
            }
        }
        self.nodes.clear();
        self.last_at.clear();
        self.cause_masks.clear();
        self.pending1.clear();
        self.pending3.clear();
        self.obligations.clear();
        self.unsealed = None;
    }

    /// Which configurations admit the node's finished path.
    fn admitted_mask(&self, node: &Node, allow_prefix: bool) -> u64 {
        let mut d = 0u64;
        for (i, cfg) in self.configs.iter().enumerate() {
            let st = node.nfa[i];
            if st != 0 && (allow_prefix || cfg.accepts_end(st, &node.lp)) {
                d |= 1 << i;
            }
        }
        d
    }

    /// The SWITCH-rule firing condition: packet matches `e`, and some family
    /// set enabling `e` has fired entirely happens-before this node.
    fn fireable(&self, e: &Event, node: &Node) -> bool {
        if self.fired_set.contains(e.id) || !e.matches(&node.lp.packet, node.lp.loc) {
            return false;
        }
        let next = self.fired_set.insert(e.id);
        if !self.family.iter().any(|&y| next.is_subset(y)) {
            return false;
        }
        self.family.iter().any(|&y| {
            y.contains(e.id)
                && y.remove(e.id).is_subset(self.fired_set)
                && y.remove(e.id).iter().all(|x| {
                    let pos = self
                        .fired_events
                        .iter()
                        .position(|&f| f == x)
                        .expect("members of fired_set have positions");
                    node.fired_anc & (1 << pos) != 0
                })
        })
    }

    /// Releases one reference of each obligation carried by a dying node.
    fn release_trig(&mut self, trig: &[u32]) {
        for &id in trig {
            let ob = &mut self.obligations[id as usize];
            ob.live -= 1;
            if ob.live == 0 && !ob.satisfied {
                self.fail(OnlineViolation::TriggerUnprocessed);
                return;
            }
        }
    }

    /// Leaf-time checks against the realized configuration sequence.
    /// `fin` marks finish-time processing (no future firings or configs).
    fn process_leaf(&mut self, node: &mut Node, kind: LeafKind, fin: bool) {
        let allow_prefix = kind != LeafKind::Terminated;
        let d = self.admitted_mask(node, allow_prefix);
        // Condition 1: some realized configuration admits the trace. Future
        // firings can still discharge it — unless the run is over.
        if d & self.realized_mask == 0 {
            if fin || d == 0 {
                self.fail(OnlineViolation::Inconsistent);
                return;
            }
            if self.pending1.len() == 64 {
                self.fail(OnlineViolation::CapacityExceeded);
                return;
            }
            node.own_watch = 1 << self.pending1.len();
            self.pending1.push(Pending1 { d, discharged: false });
            self.m_watch_hw = self.m_watch_hw.max(self.pending1.len() as u64);
        }
        // Condition 3: the trace is entirely after firing i exactly when
        // i precedes its root; only the latest such firing binds.
        if node.root_pred != 0 {
            let i_max = 63 - node.root_pred.leading_zeros() as usize;
            let suffix: u64 =
                self.realized_order[i_max + 1..].iter().map(|&c| 1u64 << c).fold(0, |a, b| a | b);
            if d & suffix == 0 {
                if fin {
                    self.fail(OnlineViolation::TooLate);
                    return;
                }
                if !self.pending3.contains(&d) {
                    if self.pending3.len() == 64 {
                        self.fail(OnlineViolation::CapacityExceeded);
                        return;
                    }
                    self.pending3.push(d);
                }
            }
        }
        // Trigger obligations riding this path.
        for &id in &node.trig {
            let ob = &mut self.obligations[id as usize];
            if d & (1 << ob.cfg) != 0 {
                ob.satisfied = true;
            }
        }
    }

    /// Seals the newest node once its controller edges have all arrived:
    /// evaluates event firing, publishes its masks, and drops it if done.
    fn seal_pending(&mut self) {
        let Some(idx) = self.unsealed.take() else { return };
        if self.dead() {
            return;
        }
        let Some(mut node) = self.nodes.remove(&idx) else { return };

        // Greedy SWITCH-rule firing: at most one event per record.
        for i in 0..self.events.len() {
            let e = self.events[i].clone();
            if !self.fireable(&e, &node) {
                continue;
            }
            if self.fired_events.len() == 64 {
                self.fail(OnlineViolation::CapacityExceeded);
                return;
            }
            // Condition 2: any watched leaf preceding this firing must have
            // been admitted by an already-realized configuration.
            let mut w = node.watch_anc;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                if !self.pending1[bit].discharged {
                    self.fail(OnlineViolation::TooEarly);
                    return;
                }
            }
            let pos = self.fired_events.len();
            let pre_cfg = *self.realized_order.last().expect("realized_order starts at g(∅)");
            self.fired_set = self.fired_set.insert(e.id);
            self.fired_events.push(e.id);
            let new_cfg = *self
                .domain_index
                .get(&self.fired_set)
                .expect("allowed firing sequences stay within reachable event-sets");
            let bit = 1u64 << new_cfg;
            self.realized_order.push(new_cfg);
            self.realized_mask |= bit;
            for p in &mut self.pending1 {
                if !p.discharged && p.d & bit != 0 {
                    p.discharged = true;
                }
            }
            self.pending3.retain(|d| d & bit == 0);
            let ob = Obligation { cfg: pre_cfg, satisfied: false, live: 1 };
            node.trig.push(self.obligations.len() as u32);
            self.obligations.push(ob);
            self.m_obligations_hw = self.m_obligations_hw.max(self.obligations.len() as u64);
            if let Some(fr) = &self.flight {
                fr.record(edn_obs::FlightEvent {
                    t_us: 0,
                    seq: pos as u64,
                    kind: "checker_fire",
                    node: new_cfg as u64,
                    depth: self.nodes.len() as u64,
                });
            }
            node.own_fired = 1 << pos;
            break;
        }

        if node.is_root {
            node.root_pred = node.fired_anc;
        }
        if let Some(kind) = node.leafed {
            self.process_leaf(&mut node, kind, false);
        }
        if self.dead() {
            return;
        }
        // Publish the sealed masks to happens-before successors.
        let fired = node.fired_anc | node.own_fired;
        let watch = node.watch_anc | node.own_watch;
        if let Some(entry) = self.last_at.get_mut(&node.lp.loc.sw) {
            if entry.idx == idx {
                entry.fired = fired;
                entry.watch = watch;
            }
        }
        if node.cause_requested {
            self.cause_masks.insert(idx, (fired, watch));
        }
        if node.leafed.is_some() || node.retired {
            self.m_retired += 1;
            self.release_trig(&node.trig);
        } else {
            self.nodes.insert(idx, node);
        }
    }
}

/// A streaming implementation of the Definition 6 check; create with
/// [`OnlineChecker::observer`], hand the observer to the engine, and read
/// the verdict from the [`OnlineHandle`] after the run.
///
/// # Examples
///
/// ```
/// use edn_core::{Config, Event, EventId, EventSet, EventStructure,
///                NetworkEventStructure, OnlineChecker, TraceObserver, LeafKind};
/// use netkat::{Loc, Packet, Pred};
/// let e0 = EventId::new(0);
/// let es = EventStructure::new(
///     vec![Event::new(e0, Pred::True, Loc::new(1, 1))],
///     [EventSet::singleton(e0)],
/// );
/// let mut c = Config::new();
/// c.add_host(100, Loc::new(1, 2));
/// let nes = NetworkEventStructure::new(
///     es,
///     [(EventSet::empty(), c.clone()), (EventSet::singleton(e0), c)],
/// ).unwrap();
/// let (mut obs, handle) = OnlineChecker::observer(&nes).unwrap();
/// obs.record(0, &Packet::new(), Loc::new(100, 0), None);
/// obs.leaf(0, LeafKind::Stalled);
/// obs.finish();
/// assert!(handle.verdict().is_ok());
/// ```
pub struct OnlineChecker {
    shared: Arc<Mutex<Inner>>,
}

/// The reader side of an [`OnlineChecker`]: call
/// [`verdict`](OnlineHandle::verdict) once the run has finished.
pub struct OnlineHandle {
    shared: Arc<Mutex<Inner>>,
}

impl OnlineChecker {
    /// Builds an online checker for `nes`, returning the observer to attach
    /// to the engine and the handle that yields the verdict.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineViolation::CapacityExceeded`] if the NES has more
    /// than 64 reachable configurations.
    pub fn observer(
        nes: &NetworkEventStructure,
    ) -> Result<(Box<dyn TraceObserver + Send>, OnlineHandle), OnlineViolation> {
        let domain = nes.event_sets();
        if domain.len() > 64 {
            return Err(OnlineViolation::CapacityExceeded);
        }
        let mut domain_index = HashMap::new();
        let mut configs = Vec::with_capacity(domain.len());
        let mut initial_idx = 0;
        for (i, &x) in domain.iter().enumerate() {
            if x.is_empty() {
                initial_idx = i as u32;
            }
            domain_index.insert(x, i as u32);
            configs.push(nes.config(x).clone());
        }
        let inner = Inner {
            events: nes.events().to_vec(),
            family: nes.structure().family().collect(),
            configs,
            domain_index,
            fired_set: EventSet::empty(),
            fired_events: Vec::new(),
            realized_order: vec![initial_idx],
            realized_mask: 1u64 << initial_idx,
            nodes: BTreeMap::new(),
            unsealed: None,
            last_at: HashMap::new(),
            cause_masks: HashMap::new(),
            pending1: Vec::new(),
            pending3: Vec::new(),
            obligations: Vec::new(),
            verdict: None,
            finished: false,
            m_nodes_hw: 0,
            m_retired: 0,
            m_obligations_hw: 0,
            m_watch_hw: 0,
            flight: None,
        };
        let shared = Arc::new(Mutex::new(inner));
        Ok((Box::new(OnlineChecker { shared: shared.clone() }), OnlineHandle { shared }))
    }
}

impl OnlineHandle {
    /// The verdict of the finished run.
    ///
    /// # Errors
    ///
    /// Returns the first [`OnlineViolation`] the checker found.
    ///
    /// # Panics
    ///
    /// Panics if the observer's `finish` has not run yet.
    pub fn verdict(&self) -> Result<(), OnlineViolation> {
        let inner = self.shared.lock().expect("online checker poisoned");
        assert!(inner.finished, "verdict() requires a finished run");
        inner.verdict.unwrap_or(Ok(()))
    }
}

impl TraceObserver for OnlineChecker {
    fn record(&mut self, idx: usize, packet: &Packet, loc: Loc, parent: Option<usize>) {
        let mut inner = self.shared.lock().expect("online checker poisoned");
        inner.seal_pending();
        if inner.dead() {
            return;
        }
        let lp = LocatedPacket::new(packet.erase_virtual(), loc);
        let mut node = match parent {
            Some(p) => {
                let pn = inner.nodes.get(&p).expect("parents outlive child records");
                let nfa = pn
                    .nfa
                    .iter()
                    .zip(&inner.configs)
                    .map(|(&st, cfg)| if st == 0 { 0 } else { cfg.step_state(st, &pn.lp, &lp) })
                    .collect();
                let node = Node {
                    lp,
                    nfa,
                    fired_anc: pn.fired_anc | pn.own_fired,
                    watch_anc: pn.watch_anc | pn.own_watch,
                    root_pred: pn.root_pred,
                    is_root: false,
                    trig: pn.trig.clone(),
                    own_fired: 0,
                    own_watch: 0,
                    cause_requested: false,
                    leafed: None,
                    retired: false,
                };
                for &id in &node.trig {
                    inner.obligations[id as usize].live += 1;
                }
                node
            }
            None => Node {
                nfa: inner.configs.iter().map(|cfg| cfg.start_state(&lp)).collect(),
                lp,
                fired_anc: 0,
                watch_anc: 0,
                root_pred: 0,
                is_root: true,
                trig: Vec::new(),
                own_fired: 0,
                own_watch: 0,
                cause_requested: false,
                leafed: None,
                retired: false,
            },
        };
        if let Some(entry) = inner.last_at.get(&node.lp.loc.sw) {
            node.fired_anc |= entry.fired;
            node.watch_anc |= entry.watch;
        }
        inner
            .last_at
            .insert(node.lp.loc.sw, LastAt { idx, fired: node.fired_anc, watch: node.watch_anc });
        inner.nodes.insert(idx, node);
        inner.m_nodes_hw = inner.m_nodes_hw.max(inner.nodes.len() as u64);
        inner.unsealed = Some(idx);
    }

    fn edge(&mut self, from: usize, to: usize) {
        let mut inner = self.shared.lock().expect("online checker poisoned");
        if inner.dead() {
            return;
        }
        debug_assert_eq!(inner.unsealed, Some(to), "edges target the unsealed node");
        if let Some(&(fired, watch)) = inner.cause_masks.get(&from) {
            if let Some(node) = inner.nodes.get_mut(&to) {
                node.fired_anc |= fired;
                node.watch_anc |= watch;
            }
        }
    }

    fn cause(&mut self, idx: usize) {
        let mut inner = self.shared.lock().expect("online checker poisoned");
        if inner.dead() {
            return;
        }
        debug_assert_eq!(inner.unsealed, Some(idx), "cause marks the unsealed node");
        if let Some(node) = inner.nodes.get_mut(&idx) {
            node.cause_requested = true;
        }
    }

    fn leaf(&mut self, idx: usize, kind: LeafKind) {
        let mut inner = self.shared.lock().expect("online checker poisoned");
        if inner.dead() {
            return;
        }
        debug_assert_eq!(inner.unsealed, Some(idx), "leaves are the unsealed node");
        if let Some(node) = inner.nodes.get_mut(&idx) {
            node.leafed = Some(kind);
        }
    }

    fn retire(&mut self, idx: usize) {
        let mut inner = self.shared.lock().expect("online checker poisoned");
        if inner.dead() {
            return;
        }
        if inner.unsealed == Some(idx) {
            if let Some(node) = inner.nodes.get_mut(&idx) {
                node.retired = true;
            }
            return;
        }
        if let Some(node) = inner.nodes.remove(&idx) {
            inner.m_retired += 1;
            inner.release_trig(&node.trig);
        }
    }

    fn finish(&mut self) {
        let mut inner = self.shared.lock().expect("online checker poisoned");
        inner.seal_pending();
        // Nodes alive at the end are stalled tips: their paths are prefixes.
        while let Some((_, mut node)) = inner.nodes.pop_first() {
            if inner.dead() {
                break;
            }
            inner.process_leaf(&mut node, LeafKind::Stalled, true);
            if inner.dead() {
                break;
            }
            inner.release_trig(&node.trig);
        }
        if !inner.dead() {
            if inner.pending1.iter().any(|p| !p.discharged) {
                inner.fail(OnlineViolation::Inconsistent);
            } else if !inner.pending3.is_empty() {
                inner.fail(OnlineViolation::TooLate);
            }
        }
        if inner.verdict.is_none() {
            inner.verdict = Some(Ok(()));
        }
        inner.finished = true;
    }

    fn contribute_metrics(&self, reg: &mut edn_obs::Registry) {
        use edn_obs::Scope;
        let inner = self.shared.lock().expect("online checker poisoned");
        reg.gauge_max(Scope::Sim, "checker.live_nodes_hw", inner.m_nodes_hw);
        reg.counter_add(Scope::Sim, "checker.retired_prefixes", inner.m_retired);
        reg.gauge_max(Scope::Sim, "checker.obligations_hw", inner.m_obligations_hw);
        reg.gauge_max(Scope::Sim, "checker.watched_leaves_hw", inner.m_watch_hw);
        reg.counter_add(Scope::Sim, "checker.fired_events", inner.fired_events.len() as u64);
    }

    fn attach_flight_recorder(&mut self, recorder: edn_obs::FlightRecorder) {
        self.shared.lock().expect("online checker poisoned").flight = Some(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::correctness::check_correct;
    use crate::estructure::EventStructure;
    use crate::trace::TraceBuilder;
    use netkat::{Action, ActionSet, Field, FlowTable, Loc, Match, Packet, Pred, Rule};

    /// The firewall fixture shared with the post-hoc checker tests: one
    /// switch (1), hosts 100 (pt 2) and 101 (pt 3); g(∅) forwards 2->3 only,
    /// g({e0}) both ways, e0 = a packet for 101 arriving at 1:2.
    fn firewall_like_nes() -> NetworkEventStructure {
        let base = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(100, Loc::new(1, 2));
            c.add_host(101, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 101), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), base(vec![fwd(2, 3)])),
                (EventSet::singleton(e0), base(vec![fwd(2, 3), fwd(3, 2)])),
            ],
        )
        .unwrap()
    }

    fn fwd_pk() -> Packet {
        Packet::new().with(Field::IpDst, 101)
    }

    fn reply_pk() -> Packet {
        Packet::new().with(Field::IpDst, 100)
    }

    /// Replays one packet's linear transit through the observer exactly the
    /// way the engine does: record each hop with its parent, retire the
    /// parent once the child is recorded, leaf at the final hop.
    fn transit(
        obs: &mut Box<dyn TraceObserver + Send>,
        next: &mut usize,
        pk: &Packet,
        hops: &[(u64, u64)],
        kind: LeafKind,
    ) {
        let mut parent = None;
        for &(sw, pt) in hops {
            let idx = *next;
            *next += 1;
            obs.record(idx, pk, Loc::new(sw, pt), parent);
            if let Some(p) = parent {
                obs.retire(p);
            }
            parent = Some(idx);
        }
        obs.leaf(parent.expect("transits are nonempty"), kind);
    }

    /// Runs the same hops through the post-hoc checker for the agreement
    /// assertion.
    fn post_hoc(nes: &NetworkEventStructure, packets: &[(Packet, &[(u64, u64)])]) -> bool {
        let mut b = TraceBuilder::new();
        for (pk, hops) in packets {
            let mut parent = None;
            for &(sw, pt) in *hops {
                parent = Some(b.push(pk.clone(), Loc::new(sw, pt), parent));
            }
        }
        check_correct(&b.build().unwrap(), nes, None).is_ok()
    }

    const DROP: &[(u64, u64)] = &[(101, 0), (1, 3)];
    const FWD: &[(u64, u64)] = &[(100, 0), (1, 2), (1, 3), (101, 0)];
    const REPLY: &[(u64, u64)] = &[(101, 0), (1, 3), (1, 2), (100, 0)];

    #[test]
    fn quiet_drop_is_consistent() {
        let nes = firewall_like_nes();
        let (mut obs, handle) = OnlineChecker::observer(&nes).unwrap();
        let mut next = 0;
        // A complete g(∅) trace: the reply-direction packet dies at 1:3.
        transit(&mut obs, &mut next, &reply_pk(), DROP, LeafKind::Terminated);
        obs.finish();
        assert_eq!(handle.verdict(), Ok(()));
        assert!(post_hoc(&nes, &[(reply_pk(), DROP)]));
    }

    #[test]
    fn delivered_reply_without_event_is_inconsistent() {
        let nes = firewall_like_nes();
        let (mut obs, handle) = OnlineChecker::observer(&nes).unwrap();
        let mut next = 0;
        transit(&mut obs, &mut next, &reply_pk(), REPLY, LeafKind::Delivered);
        obs.finish();
        assert_eq!(handle.verdict(), Err(OnlineViolation::Inconsistent));
        assert!(!post_hoc(&nes, &[(reply_pk(), REPLY)]));
    }

    #[test]
    fn triggered_update_is_correct() {
        let nes = firewall_like_nes();
        let (mut obs, handle) = OnlineChecker::observer(&nes).unwrap();
        let mut next = 0;
        transit(&mut obs, &mut next, &fwd_pk(), FWD, LeafKind::Delivered);
        transit(&mut obs, &mut next, &reply_pk(), REPLY, LeafKind::Delivered);
        obs.finish();
        assert_eq!(handle.verdict(), Ok(()));
        assert!(post_hoc(&nes, &[(fwd_pk(), FWD), (reply_pk(), REPLY)]));
    }

    #[test]
    fn premature_reply_is_too_early() {
        let nes = firewall_like_nes();
        let (mut obs, handle) = OnlineChecker::observer(&nes).unwrap();
        let mut next = 0;
        // Reply delivered BEFORE the trigger: flagged at the trigger's
        // firing, while the run is still in flight.
        transit(&mut obs, &mut next, &reply_pk(), REPLY, LeafKind::Delivered);
        transit(&mut obs, &mut next, &fwd_pk(), FWD, LeafKind::Delivered);
        obs.finish();
        assert_eq!(handle.verdict(), Err(OnlineViolation::TooEarly));
        assert!(!post_hoc(&nes, &[(reply_pk(), REPLY), (fwd_pk(), FWD)]));
    }

    #[test]
    fn stalled_prefix_is_consistent() {
        let nes = firewall_like_nes();
        let (mut obs, handle) = OnlineChecker::observer(&nes).unwrap();
        // The trigger packet makes it to the ingress and no further: the
        // event still fires, and the stalled prefix is admitted.
        obs.record(0, &fwd_pk(), Loc::new(100, 0), None);
        obs.record(1, &fwd_pk(), Loc::new(1, 2), Some(0));
        obs.retire(0);
        obs.finish();
        assert_eq!(handle.verdict(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "finished run")]
    fn verdict_before_finish_panics() {
        let nes = firewall_like_nes();
        let (_obs, handle) = OnlineChecker::observer(&nes).unwrap();
        let _ = handle.verdict();
    }
}
