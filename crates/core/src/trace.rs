//! Network traces: interleavings of packet traces (Section 2).
//!
//! A network trace is a pair `(lp₀ lp₁ ⋯, T)` of a global sequence of
//! located packets and a set `T` of increasing index sequences — the *packet
//! traces* — forming a family of trees (a packet trace forks when a
//! configuration multicasts).

use std::collections::BTreeSet;
use std::fmt;

use netkat::{Loc, Packet, PacketArena, PacketId};

/// A located packet `(pkt, sw, pt)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocatedPacket {
    /// The packet's headers.
    pub packet: Packet,
    /// The packet's location.
    pub loc: Loc,
}

impl LocatedPacket {
    /// Creates a located packet.
    pub fn new(packet: Packet, loc: Loc) -> LocatedPacket {
        LocatedPacket { packet, loc }
    }

    /// Returns a copy with virtual runtime fields (tag, digest) erased, for
    /// comparison against abstract configurations.
    pub fn erase_virtual(&self) -> LocatedPacket {
        LocatedPacket { packet: self.packet.erase_virtual(), loc: self.loc }
    }
}

impl fmt::Display for LocatedPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.packet, self.loc)
    }
}

/// Why a recorded structure fails to be a network trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceStructureError {
    /// An index is covered by no packet trace (violates condition 1).
    UncoveredIndex(usize),
    /// A packet trace is not strictly increasing.
    NotIncreasing {
        /// Which trace.
        trace: usize,
    },
    /// A packet trace references an out-of-range index.
    IndexOutOfRange {
        /// Which trace.
        trace: usize,
        /// The offending index.
        index: usize,
    },
    /// Two packet traces share indices that are not a common prefix, so the
    /// traces do not form a family of trees (violates condition 3).
    NotATree {
        /// First trace.
        a: usize,
        /// Second trace.
        b: usize,
    },
}

impl fmt::Display for TraceStructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStructureError::UncoveredIndex(i) => {
                write!(f, "located packet {i} belongs to no packet trace")
            }
            TraceStructureError::NotIncreasing { trace } => {
                write!(f, "packet trace {trace} is not strictly increasing")
            }
            TraceStructureError::IndexOutOfRange { trace, index } => {
                write!(f, "packet trace {trace} references out-of-range index {index}")
            }
            TraceStructureError::NotATree { a, b } => {
                write!(f, "packet traces {a} and {b} overlap without a common prefix")
            }
        }
    }
}

impl std::error::Error for TraceStructureError {}

/// A network trace `(lp₀ lp₁ ⋯, T)`.
///
/// Beyond the paper's structure, the trace records which global indices are
/// *terminated*: points where a packet's journey definitively ended inside
/// the network (a drop), as opposed to a packet still in flight when the
/// recording stopped. The distinction matters to the checker: a drop must
/// be a *complete* trace of some configuration, while an in-flight packet
/// only needs to be a prefix.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetworkTrace {
    packets: Vec<LocatedPacket>,
    traces: Vec<Vec<usize>>,
    terminated: BTreeSet<usize>,
    extra_edges: Vec<(usize, usize)>,
}

impl NetworkTrace {
    /// Builds a network trace from its parts.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceStructureError`] if the parts violate the structural
    /// conditions of Section 2 (coverage, monotonicity, tree-ness).
    pub fn new(
        packets: Vec<LocatedPacket>,
        traces: Vec<Vec<usize>>,
    ) -> Result<NetworkTrace, TraceStructureError> {
        let mut covered = vec![false; packets.len()];
        for (ti, t) in traces.iter().enumerate() {
            for window in t.windows(2) {
                if window[0] >= window[1] {
                    return Err(TraceStructureError::NotIncreasing { trace: ti });
                }
            }
            for &i in t {
                if i >= packets.len() {
                    return Err(TraceStructureError::IndexOutOfRange { trace: ti, index: i });
                }
                covered[i] = true;
            }
        }
        if let Some(i) = covered.iter().position(|&c| !c) {
            return Err(TraceStructureError::UncoveredIndex(i));
        }
        // Tree-ness: shared indices between two traces must be a common
        // prefix of both.
        for a in 0..traces.len() {
            for b in (a + 1)..traces.len() {
                let (ta, tb) = (&traces[a], &traces[b]);
                let shared: BTreeSet<usize> = ta
                    .iter()
                    .copied()
                    .collect::<BTreeSet<_>>()
                    .intersection(&tb.iter().copied().collect())
                    .copied()
                    .collect();
                let n = shared.len();
                let prefix_ok = ta[..n.min(ta.len())] == tb[..n.min(tb.len())]
                    && ta[..n.min(ta.len())].iter().all(|i| shared.contains(i));
                if !prefix_ok {
                    return Err(TraceStructureError::NotATree { a, b });
                }
            }
        }
        Ok(NetworkTrace { packets, traces, terminated: BTreeSet::new(), extra_edges: Vec::new() })
    }

    /// Adds an out-of-band causal edge `from ≺ to` (controller messages:
    /// the paper's CTRLRECV/CTRLSEND rules propagate knowledge between
    /// switches without a data packet, but the propagation is still a
    /// communication and therefore part of the happens-before order).
    ///
    /// # Panics
    ///
    /// Panics unless `from < to < len`.
    pub fn add_causal_edge(&mut self, from: usize, to: usize) {
        assert!(from < to && to < self.packets.len(), "causal edges point forward");
        self.extra_edges.push((from, to));
    }

    /// The out-of-band causal edges.
    pub fn extra_edges(&self) -> &[(usize, usize)] {
        &self.extra_edges
    }

    /// Marks global index `i` as a definitive end-of-journey (a drop).
    pub fn mark_terminated(&mut self, i: usize) {
        if i < self.packets.len() {
            self.terminated.insert(i);
        }
    }

    /// Returns `true` if packet trace `t` ends in a recorded drop.
    pub fn trace_is_terminated(&self, t: usize) -> bool {
        self.traces[t].last().is_some_and(|&i| self.terminated.contains(&i))
    }

    /// The global sequence of located packets.
    pub fn packets(&self) -> &[LocatedPacket] {
        &self.packets
    }

    /// The located packet at global index `i`.
    pub fn packet(&self, i: usize) -> &LocatedPacket {
        &self.packets[i]
    }

    /// Number of located packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The packet traces `T` (index sequences).
    pub fn traces(&self) -> &[Vec<usize>] {
        &self.traces
    }

    /// `ntr↓k`: the packet traces containing global index `k`.
    pub fn traces_through(&self, k: usize) -> Vec<usize> {
        (0..self.traces.len()).filter(|&t| self.traces[t].contains(&k)).collect()
    }

    /// `ntr↓t`: the located packets of packet trace `t`.
    pub fn packet_trace(&self, t: usize) -> Vec<LocatedPacket> {
        self.traces[t].iter().map(|&i| self.packets[i].clone()).collect()
    }

    /// Assembles a network trace from a parent forest: each leaf yields the
    /// packet trace running from its root. The caller promises `parents`
    /// describes a forest with every parent index strictly preceding its
    /// child — which holds by construction for simulator-recorded runs
    /// (including sharded runs merged back into one global sequence), so
    /// the quadratic revalidation of [`NetworkTrace::new`] is skipped.
    ///
    /// `terminated` indices outside the record range are ignored;
    /// `extra_edges` must point forward (`from < to < len`).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a parent does not precede its child.
    pub fn from_forest(
        packets: Vec<LocatedPacket>,
        parents: &[Option<usize>],
        terminated: BTreeSet<usize>,
        extra_edges: Vec<(usize, usize)>,
    ) -> NetworkTrace {
        debug_assert_eq!(packets.len(), parents.len());
        let mut has_child = vec![false; parents.len()];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                debug_assert!(*p < i, "parent {p} must precede child {i}");
                has_child[*p] = true;
            }
        }
        let mut traces = Vec::new();
        for (leaf, _) in has_child.iter().enumerate().filter(|&(_, &c)| !c) {
            let mut path = vec![leaf];
            let mut cur = leaf;
            while let Some(p) = parents[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            traces.push(path);
        }
        let len = packets.len();
        let terminated = terminated.into_iter().filter(|&i| i < len).collect();
        NetworkTrace { packets, traces, terminated, extra_edges }
    }
}

impl fmt::Display for NetworkTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, lp) in self.packets.iter().enumerate() {
            writeln!(f, "[{i:4}] {lp}")?;
        }
        for (t, idxs) in self.traces.iter().enumerate() {
            writeln!(f, "trace {t}: {idxs:?}")?;
        }
        Ok(())
    }
}

/// How much a [`TraceBuilder`] records.
///
/// Measurement-only sweeps don't read the trace at all, and recording it —
/// one `(id, loc)` pair plus forest bookkeeping per processing step — is
/// pure overhead there. In [`StatsOnly`](TraceMode::StatsOnly) the builder
/// degenerates to an index counter: pushes return the same indices they
/// would in [`Full`](TraceMode::Full) mode (so callers' causal bookkeeping
/// is unchanged), but nothing is stored and `build` yields an empty trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceMode {
    /// Record every processing step (the default): `build` yields the
    /// Section 2 network trace.
    #[default]
    Full,
    /// Record nothing; only run statistics survive. `build` yields an
    /// empty trace.
    StatsOnly,
}

impl TraceMode {
    /// Reads the mode from the `EDN_TRACE` environment variable (`full` or
    /// `stats`); unset means [`TraceMode::Full`].
    ///
    /// # Panics
    ///
    /// Panics if `EDN_TRACE` is set to anything else.
    pub fn from_env() -> TraceMode {
        match std::env::var("EDN_TRACE") {
            Ok(v) if v == "full" => TraceMode::Full,
            Ok(v) if v == "stats" => TraceMode::StatsOnly,
            Ok(v) => panic!("EDN_TRACE must be `full` or `stats`, got {v:?}"),
            Err(_) => TraceMode::Full,
        }
    }

    /// The label used in benchmark output (`full` / `stats`).
    pub fn label(&self) -> &'static str {
        match self {
            TraceMode::Full => "full",
            TraceMode::StatsOnly => "stats",
        }
    }
}

/// Incremental construction of a [`NetworkTrace`] as a forest.
///
/// The simulator appends one located packet per processing step, linking it
/// to the located packet it came from; root-to-leaf paths become the packet
/// traces.
///
/// Packets are interned in a [`PacketArena`] owned by the builder, and each
/// step stores only a `(PacketId, Loc)` pair — recording a hop never clones
/// a packet. The simulator shares the same arena for its in-flight packets
/// (see [`arena_mut`](TraceBuilder::arena_mut)); ids resolve back to
/// [`Packet`]s only at [`build`](TraceBuilder::build) /
/// [`recorded`](TraceBuilder::recorded) time.
///
/// # Examples
///
/// ```
/// use edn_core::TraceBuilder;
/// use netkat::{Loc, Packet};
/// let mut b = TraceBuilder::new();
/// let root = b.push(Packet::new(), Loc::new(100, 0), None);
/// let mid = b.push(Packet::new(), Loc::new(1, 1), Some(root));
/// b.push(Packet::new(), Loc::new(1, 2), Some(mid));
/// b.push(Packet::new(), Loc::new(2, 1), Some(mid)); // multicast fork
/// let ntr = b.build().unwrap();
/// assert_eq!(ntr.traces().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    arena: PacketArena,
    /// The recorded steps (empty in [`TraceMode::StatsOnly`]).
    records: Vec<(PacketId, Loc)>,
    /// Per record: the parent index (leaf/child structure is derived from
    /// this at build time, keeping the recording path to two appends).
    parents: Vec<Option<usize>>,
    terminated: BTreeSet<usize>,
    extra_edges: Vec<(usize, usize)>,
    mode: TraceMode,
    /// Indices handed out in [`TraceMode::StatsOnly`] (where `records`
    /// stays empty).
    virtual_len: usize,
}

impl TraceBuilder {
    /// Creates an empty builder recording everything.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Creates an empty builder with the given recording mode.
    ///
    /// A [`TraceMode::StatsOnly`] builder records nothing, so no id
    /// outlives the event that carries it — its arena therefore runs with
    /// [recycling](netkat::PacketArena::enable_recycling) enabled, and a
    /// refcounting driver (the simulator) keeps arena memory bounded by the
    /// packets in flight instead of every packet ever seen.
    pub fn with_mode(mode: TraceMode) -> TraceBuilder {
        let mut b = TraceBuilder { mode, ..TraceBuilder::default() };
        if mode == TraceMode::StatsOnly {
            b.arena.enable_recycling();
        }
        b
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// The packet arena ids passed to [`push_id`](TraceBuilder::push_id)
    /// must come from.
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Mutable access to the arena — the simulator interns its in-flight
    /// packets here, so trace records and event payloads share one id
    /// space.
    pub fn arena_mut(&mut self) -> &mut PacketArena {
        &mut self.arena
    }

    /// Appends a located packet; `parent` is the global index of the located
    /// packet it was produced from (`None` for a fresh injection at a host).
    ///
    /// Returns the new packet's global index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an earlier index.
    pub fn push(&mut self, packet: Packet, loc: Loc, parent: Option<usize>) -> usize {
        let id = self.arena.intern(packet);
        self.push_id(id, loc, parent)
    }

    /// [`push`](TraceBuilder::push) for a packet already interned in this
    /// builder's [`arena`](TraceBuilder::arena) — the simulator's zero-copy
    /// recording path.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an earlier index.
    pub fn push_id(&mut self, id: PacketId, loc: Loc, parent: Option<usize>) -> usize {
        let idx = self.len();
        if let Some(p) = parent {
            assert!(p < idx, "parent {p} must precede child {idx}");
        }
        if self.mode == TraceMode::StatsOnly {
            self.virtual_len += 1;
            return idx;
        }
        self.records.push((id, loc));
        self.parents.push(parent);
        idx
    }

    /// Number of packets recorded (in [`TraceMode::StatsOnly`]: counted) so
    /// far.
    pub fn len(&self) -> usize {
        match self.mode {
            TraceMode::Full => self.records.len(),
            TraceMode::StatsOnly => self.virtual_len,
        }
    }

    /// The located packet recorded at global index `i`, resolved from the
    /// arena (lets the simulator recover a packet it moved elsewhere, e.g.
    /// for a drop record, without keeping its own copy).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range — in particular for *every* index in
    /// [`TraceMode::StatsOnly`], where nothing is recorded.
    pub fn recorded(&self, i: usize) -> LocatedPacket {
        let (id, loc) = self.records[i];
        LocatedPacket::new(self.arena.get(id).clone(), loc)
    }

    /// Returns `true` if nothing has been recorded or counted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks a recorded packet as dropped (its journey ends at `i`).
    pub fn mark_terminated(&mut self, i: usize) {
        if self.mode == TraceMode::Full {
            self.terminated.insert(i);
        }
    }

    /// Records an out-of-band causal edge (see
    /// [`NetworkTrace::add_causal_edge`]).
    ///
    /// # Panics
    ///
    /// Panics unless `from < to` and both are recorded indices.
    pub fn add_causal_edge(&mut self, from: usize, to: usize) {
        assert!(from < to && to < self.len(), "causal edges point forward");
        if self.mode == TraceMode::Full {
            self.extra_edges.push((from, to));
        }
    }

    /// Finalizes into a [`NetworkTrace`]: each leaf yields the packet trace
    /// running from its root. Packet ids resolve to owned [`Packet`]s here
    /// — the only point the builder clones packets. In
    /// [`TraceMode::StatsOnly`] the result is empty.
    ///
    /// The structural conditions of Section 2 hold *by construction* for
    /// forests built through [`push`](TraceBuilder::push) — every index
    /// lies on its leaf's root path, parents strictly precede children,
    /// and two root-to-leaf paths of a forest share exactly a common
    /// prefix — so the trace is assembled directly (via
    /// [`NetworkTrace::from_forest`]) instead of going through
    /// [`NetworkTrace::new`]'s quadratic revalidation (which, at
    /// thousands of packet traces, used to dominate entire simulation
    /// runs).
    ///
    /// # Errors
    ///
    /// Infallible for forests built via [`push`](TraceBuilder::push); the
    /// `Result` is kept for API stability.
    pub fn build(self) -> Result<NetworkTrace, TraceStructureError> {
        let arena = self.arena;
        let packets = self
            .records
            .into_iter()
            .map(|(id, loc)| LocatedPacket::new(arena.get(id).clone(), loc))
            .collect();
        Ok(NetworkTrace::from_forest(packets, &self.parents, self.terminated, self.extra_edges))
    }

    /// Decomposes the builder into its raw recording state — the entry
    /// point for the sharded simulator's trace merge, which interleaves
    /// several builders' records back into one global sequence before
    /// assembling with [`NetworkTrace::from_forest`].
    pub fn into_parts(self) -> TraceParts {
        TraceParts {
            arena: self.arena,
            records: self.records,
            parents: self.parents,
            terminated: self.terminated,
            extra_edges: self.extra_edges,
            mode: self.mode,
        }
    }
}

/// The raw recording state of a [`TraceBuilder`] (see
/// [`TraceBuilder::into_parts`]): one shard's contribution to a merged
/// network trace.
#[derive(Clone, Debug)]
pub struct TraceParts {
    /// The arena the records' packet ids resolve in.
    pub arena: PacketArena,
    /// The recorded `(packet, location)` steps, in dispatch order.
    pub records: Vec<(PacketId, Loc)>,
    /// Per record: the index of the record it descends from.
    pub parents: Vec<Option<usize>>,
    /// Records marked as definitive ends-of-journey (drops).
    pub terminated: BTreeSet<usize>,
    /// Out-of-band causal edges.
    pub extra_edges: Vec<(usize, usize)>,
    /// The recording mode the builder ran under.
    pub mode: TraceMode,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(sw: u64) -> (Packet, Loc) {
        (Packet::new(), Loc::new(sw, 1))
    }

    #[test]
    fn builder_linear_trace() {
        let mut b = TraceBuilder::new();
        let (p0, l0) = lp(100);
        let r = b.push(p0, l0, None);
        let (p1, l1) = lp(1);
        let m = b.push(p1, l1, Some(r));
        let (p2, l2) = lp(2);
        b.push(p2, l2, Some(m));
        let ntr = b.build().unwrap();
        assert_eq!(ntr.len(), 3);
        assert_eq!(ntr.traces(), &[vec![0, 1, 2]]);
        assert_eq!(ntr.traces_through(1), vec![0]);
    }

    #[test]
    fn builder_fork_makes_tree() {
        let mut b = TraceBuilder::new();
        let r = b.push(Packet::new(), Loc::new(100, 0), None);
        let m = b.push(Packet::new(), Loc::new(4, 1), Some(r));
        b.push(Packet::new(), Loc::new(1, 1), Some(m));
        b.push(Packet::new(), Loc::new(2, 1), Some(m));
        let ntr = b.build().unwrap();
        assert_eq!(ntr.traces().len(), 2);
        // Both traces share the prefix [0, 1].
        assert_eq!(ntr.traces()[0][..2], [0, 1]);
        assert_eq!(ntr.traces()[1][..2], [0, 1]);
        assert_eq!(ntr.traces_through(1).len(), 2);
    }

    #[test]
    fn two_independent_injections() {
        let mut b = TraceBuilder::new();
        let a = b.push(Packet::new(), Loc::new(100, 0), None);
        let c = b.push(Packet::new(), Loc::new(101, 0), None);
        b.push(Packet::new(), Loc::new(1, 1), Some(a));
        b.push(Packet::new(), Loc::new(2, 1), Some(c));
        let ntr = b.build().unwrap();
        assert_eq!(ntr.traces().len(), 2);
        assert_eq!(ntr.traces()[0], vec![0, 2]);
        assert_eq!(ntr.traces()[1], vec![1, 3]);
    }

    #[test]
    fn built_forests_pass_full_structural_validation() {
        // `build` skips `NetworkTrace::new`'s quadratic validation because
        // pushed forests satisfy it by construction — pin that claim on a
        // forest with forks, chains, and independent roots.
        let mut b = TraceBuilder::new();
        let mut leaves = Vec::new();
        for root in 0..5u64 {
            let r = b.push(Packet::new(), Loc::new(100 + root, 0), None);
            let m = b.push(Packet::new(), Loc::new(root, 1), Some(r));
            for fork in 0..3u64 {
                let f = b.push(Packet::new(), Loc::new(root, 2 + fork), Some(m));
                leaves.push(b.push(Packet::new(), Loc::new(200 + fork, 0), Some(f)));
            }
        }
        b.mark_terminated(leaves[0]);
        b.mark_terminated(usize::MAX); // out of range: dropped, as before
        b.add_causal_edge(0, 3);
        let ntr = b.build().unwrap();
        let revalidated = NetworkTrace::new(ntr.packets().to_vec(), ntr.traces().to_vec())
            .expect("built forests satisfy the Section 2 structural conditions");
        assert_eq!(revalidated.packets(), ntr.packets());
        assert_eq!(revalidated.traces(), ntr.traces());
        assert!(ntr.trace_is_terminated(0));
        assert_eq!(ntr.extra_edges(), &[(0, 3)]);
    }

    #[test]
    fn structural_validation_rejects_uncovered() {
        let pkts = vec![
            LocatedPacket::new(Packet::new(), Loc::new(1, 1)),
            LocatedPacket::new(Packet::new(), Loc::new(2, 1)),
        ];
        let err = NetworkTrace::new(pkts, vec![vec![0]]).unwrap_err();
        assert_eq!(err, TraceStructureError::UncoveredIndex(1));
    }

    #[test]
    fn structural_validation_rejects_decreasing() {
        let pkts = vec![
            LocatedPacket::new(Packet::new(), Loc::new(1, 1)),
            LocatedPacket::new(Packet::new(), Loc::new(2, 1)),
        ];
        let err = NetworkTrace::new(pkts, vec![vec![1, 0]]).unwrap_err();
        assert_eq!(err, TraceStructureError::NotIncreasing { trace: 0 });
    }

    #[test]
    fn structural_validation_rejects_non_tree_overlap() {
        let pkts: Vec<LocatedPacket> =
            (0..4).map(|i| LocatedPacket::new(Packet::new(), Loc::new(i, 1))).collect();
        // Traces [0,2,3] and [1,2,3] share a *suffix*, not a prefix.
        let err = NetworkTrace::new(pkts, vec![vec![0, 2, 3], vec![1, 2, 3]]).unwrap_err();
        assert_eq!(err, TraceStructureError::NotATree { a: 0, b: 1 });
    }

    #[test]
    fn stats_only_counts_without_recording() {
        // Drive the same forest through both modes: StatsOnly must hand
        // out the same indices (the simulator's causal bookkeeping depends
        // on them) while storing nothing.
        let mut full = TraceBuilder::new();
        let mut stats = TraceBuilder::with_mode(TraceMode::StatsOnly);
        assert_eq!(stats.mode(), TraceMode::StatsOnly);
        for b in [&mut full, &mut stats] {
            let r = b.push(Packet::new(), Loc::new(100, 0), None);
            let m = b.push(Packet::new(), Loc::new(1, 1), Some(r));
            let f = b.push(Packet::new(), Loc::new(1, 2), Some(m));
            assert_eq!((r, m, f), (0, 1, 2));
            b.mark_terminated(f);
            b.add_causal_edge(r, f);
        }
        assert_eq!(stats.len(), full.len());
        assert!(!stats.is_empty());
        let ntr = stats.build().unwrap();
        assert!(ntr.is_empty());
        assert!(ntr.traces().is_empty());
        assert!(ntr.extra_edges().is_empty());
        assert_eq!(full.build().unwrap().len(), 3);
    }

    #[test]
    fn push_id_shares_the_arena_and_resolves_on_build() {
        let mut b = TraceBuilder::new();
        let pk = Packet::new().with(netkat::Field::IpDst, 9);
        let id = b.arena_mut().intern(pk.clone());
        let root = b.push_id(id, Loc::new(100, 0), None);
        b.push_id(id, Loc::new(1, 1), Some(root));
        assert_eq!(b.arena().len(), 1);
        assert_eq!(b.recorded(root).packet, pk);
        let ntr = b.build().unwrap();
        assert_eq!(ntr.len(), 2);
        assert_eq!(ntr.packet(1).packet, pk);
        assert_eq!(ntr.packet(1).loc, Loc::new(1, 1));
    }

    #[test]
    fn trace_mode_labels_and_default() {
        assert_eq!(TraceMode::default(), TraceMode::Full);
        assert_eq!(TraceMode::Full.label(), "full");
        assert_eq!(TraceMode::StatsOnly.label(), "stats");
        // The suite is replayed under explicit EDN_TRACE settings in CI;
        // only pin the default when the variable is unset.
        match std::env::var("EDN_TRACE") {
            Err(_) => assert_eq!(TraceMode::from_env(), TraceMode::Full),
            Ok(v) => assert_eq!(TraceMode::from_env().label(), v),
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let ntr = NetworkTrace::new(Vec::new(), Vec::new()).unwrap();
        assert!(ntr.is_empty());
        assert_eq!(TraceBuilder::new().build().unwrap(), ntr);
    }
}
