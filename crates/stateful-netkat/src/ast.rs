//! Abstract syntax of Stateful NetKAT (Fig. 4 of the paper).
//!
//! Stateful NetKAT extends NetKAT with a global vector-valued variable
//! `state`: tests `state(m) = n` and link-attached assignments
//! `(n:m) → (n:m) ⟨state(m) ← n⟩`. A program compactly denotes a collection
//! of plain NetKAT programs (one per state vector) plus the event-edges
//! between them.

use std::fmt;

use netkat::{Field, Loc, Value};

/// A state vector value `~k`.
pub type StateVec = Vec<Value>;

/// A Stateful NetKAT test (`a, b` in Fig. 4).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum STest {
    /// `true`.
    True,
    /// `false`.
    False,
    /// `x = n` over a packet field (including `pt` and `sw`).
    Field(Field, Value),
    /// `state(m) = n`.
    State(usize, Value),
    /// `a ∧ b`.
    And(Box<STest>, Box<STest>),
    /// `a ∨ b`.
    Or(Box<STest>, Box<STest>),
    /// `¬a`.
    Not(Box<STest>),
}

impl STest {
    /// Conjunction helper.
    pub fn and(self, other: STest) -> STest {
        STest::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: STest) -> STest {
        STest::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> STest {
        STest::Not(Box::new(self))
    }

    /// The test `state = ~k` (conjunction over all indices).
    pub fn state_eq(vec: &[Value]) -> STest {
        vec.iter()
            .enumerate()
            .map(|(m, &n)| STest::State(m, n))
            .reduce(STest::and)
            .unwrap_or(STest::True)
    }
}

impl fmt::Display for STest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            STest::True => write!(f, "true"),
            STest::False => write!(f, "false"),
            STest::Field(field, n) => write!(f, "{field}={n}"),
            STest::State(m, n) => write!(f, "state({m})={n}"),
            STest::And(a, b) => write!(f, "({a} & {b})"),
            STest::Or(a, b) => write!(f, "({a} | {b})"),
            STest::Not(a) => write!(f, "!{a}"),
        }
    }
}

/// A Stateful NetKAT command (`p, q` in Fig. 4).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SPolicy {
    /// A test used as a filter.
    Test(STest),
    /// Field assignment `x ← n` (modifiable fields: headers and `pt`).
    Assign(Field, Value),
    /// Union `p + q`.
    Union(Box<SPolicy>, Box<SPolicy>),
    /// Sequence `p ; q`.
    Seq(Box<SPolicy>, Box<SPolicy>),
    /// Iteration `p*`.
    Star(Box<SPolicy>),
    /// Link `(n:m) → (n:m)`.
    Link(Loc, Loc),
    /// Link with state assignment `(n:m) → (n:m) ⟨state(m₁)←n₁, …⟩`.
    ///
    /// The write list generalizes Fig. 4's single write; the concrete syntax
    /// `⟨state ← [v…]⟩` writes the whole vector.
    LinkState(Loc, Loc, Vec<(usize, Value)>),
}

impl SPolicy {
    /// The identity command.
    pub fn id() -> SPolicy {
        SPolicy::Test(STest::True)
    }

    /// The drop command.
    pub fn drop() -> SPolicy {
        SPolicy::Test(STest::False)
    }

    /// Union helper.
    pub fn union(self, other: SPolicy) -> SPolicy {
        SPolicy::Union(Box::new(self), Box::new(other))
    }

    /// Sequence helper.
    pub fn seq(self, other: SPolicy) -> SPolicy {
        SPolicy::Seq(Box::new(self), Box::new(other))
    }

    /// Union of all commands (`drop` if empty).
    pub fn union_all<I: IntoIterator<Item = SPolicy>>(ps: I) -> SPolicy {
        let mut it = ps.into_iter();
        match it.next() {
            None => SPolicy::drop(),
            Some(first) => it.fold(first, SPolicy::union),
        }
    }

    /// Sequence of all commands (`id` if empty).
    pub fn seq_all<I: IntoIterator<Item = SPolicy>>(ps: I) -> SPolicy {
        let mut it = ps.into_iter();
        match it.next() {
            None => SPolicy::id(),
            Some(first) => it.fold(first, SPolicy::seq),
        }
    }

    /// The highest `state` index mentioned anywhere, if any.
    pub fn max_state_index(&self) -> Option<usize> {
        fn test_max(t: &STest) -> Option<usize> {
            match t {
                STest::True | STest::False | STest::Field(..) => None,
                STest::State(m, _) => Some(*m),
                STest::And(a, b) | STest::Or(a, b) => test_max(a).max(test_max(b)),
                STest::Not(a) => test_max(a),
            }
        }
        match self {
            SPolicy::Test(t) => test_max(t),
            SPolicy::Assign(..) | SPolicy::Link(..) => None,
            SPolicy::LinkState(_, _, writes) => writes.iter().map(|&(m, _)| m).max(),
            SPolicy::Union(a, b) | SPolicy::Seq(a, b) => {
                a.max_state_index().max(b.max_state_index())
            }
            SPolicy::Star(a) => a.max_state_index(),
        }
    }

    /// The number of state vector slots the program needs.
    pub fn state_width(&self) -> usize {
        self.max_state_index().map_or(0, |m| m + 1)
    }

    /// All physical links mentioned by the program (for default topologies).
    pub fn links(&self) -> Vec<(Loc, Loc)> {
        let mut out = Vec::new();
        fn walk(p: &SPolicy, out: &mut Vec<(Loc, Loc)>) {
            match p {
                SPolicy::Test(_) | SPolicy::Assign(..) => {}
                SPolicy::Link(a, b) | SPolicy::LinkState(a, b, _) => out.push((*a, *b)),
                SPolicy::Union(a, b) | SPolicy::Seq(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                SPolicy::Star(a) => walk(a, out),
            }
        }
        walk(self, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

impl From<STest> for SPolicy {
    fn from(t: STest) -> SPolicy {
        SPolicy::Test(t)
    }
}

impl fmt::Display for SPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SPolicy::Test(t) => write!(f, "{t}"),
            SPolicy::Assign(field, n) => write!(f, "{field}<-{n}"),
            SPolicy::Union(a, b) => write!(f, "({a} + {b})"),
            SPolicy::Seq(a, b) => write!(f, "({a}; {b})"),
            SPolicy::Star(a) => write!(f, "({a})*"),
            SPolicy::Link(a, b) => write!(f, "({a})->({b})"),
            SPolicy::LinkState(a, b, w) => {
                write!(f, "({a})->({b})<")?;
                for (i, (m, n)) in w.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "state({m})<-{n}")?;
                }
                write!(f, ">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_width_tracks_max_index() {
        let p = SPolicy::Test(STest::State(2, 1)).seq(SPolicy::LinkState(
            Loc::new(1, 1),
            Loc::new(2, 1),
            vec![(4, 0)],
        ));
        assert_eq!(p.max_state_index(), Some(4));
        assert_eq!(p.state_width(), 5);
        assert_eq!(SPolicy::id().state_width(), 0);
    }

    #[test]
    fn state_eq_builds_conjunction() {
        let t = STest::state_eq(&[1, 2]);
        assert_eq!(t, STest::State(0, 1).and(STest::State(1, 2)));
        assert_eq!(STest::state_eq(&[]), STest::True);
    }

    #[test]
    fn links_are_collected() {
        let p = SPolicy::Link(Loc::new(1, 1), Loc::new(4, 1)).union(SPolicy::LinkState(
            Loc::new(4, 1),
            Loc::new(1, 1),
            vec![(0, 1)],
        ));
        assert_eq!(
            p.links(),
            vec![(Loc::new(1, 1), Loc::new(4, 1)), (Loc::new(4, 1), Loc::new(1, 1)),]
        );
    }

    #[test]
    fn display_round_trips_visually() {
        let p = SPolicy::Test(STest::Field(Field::Port, 2).and(STest::State(0, 0).not()))
            .seq(SPolicy::LinkState(Loc::new(1, 1), Loc::new(4, 1), vec![(0, 1)]));
        assert_eq!(p.to_string(), "((pt=2 & !state(0)=0); (1:1)->(4:1)<state(0)<-1>)");
    }

    #[test]
    fn union_all_seq_all_defaults() {
        assert_eq!(SPolicy::union_all([]), SPolicy::drop());
        assert_eq!(SPolicy::seq_all([]), SPolicy::id());
    }
}
