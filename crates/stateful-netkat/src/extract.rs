//! The two extraction functions of the Stateful NetKAT compiler.
//!
//! * [`project`] is the paper's `⟦p⟧~k` (Fig. 5): the plain NetKAT program
//!   for one value of the state vector.
//! * [`event_edges`] is the paper's `⦇p⦈~k ϕ` (Fig. 6): the event-edges a
//!   program can take out of state `~k`, collecting the conjunction of
//!   header tests seen on the way to each state-assigning link.
//!
//! One presentational deviation: Fig. 6 leaves `sw`/`pt` tests out of `ϕ`
//! (they are positional, resolved by the event's location) but lets a
//! `pt ← n` assignment insert `pt = n`. We symmetrically keep *all* location
//! fields out of event guards, matching the event predicates the paper
//! actually reports for its examples (e.g. `(dst=H4, 4:1)`).

use std::collections::BTreeSet;

use netkat::{Loc, Policy, Pred, TestConj, Value};

use crate::ast::{SPolicy, STest, StateVec};

/// Fuel for the `⊔ⱼ Fⱼ` star iteration of Fig. 6.
const STAR_FUEL: usize = 256;

/// An event-edge `(~k, (ϕ, sw, pt), ~k′)` extracted from a program.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventEdge {
    /// Source state vector.
    pub from: StateVec,
    /// The header-field guard `ϕ` of the event.
    pub guard: TestConj,
    /// The event's location: the *destination* of the annotated link.
    pub loc: Loc,
    /// The state writes, sorted by index.
    pub writes: Vec<(usize, Value)>,
    /// Target state vector.
    pub to: StateVec,
}

/// `⟦p⟧~k` (Fig. 5): the plain NetKAT program at state `~k`.
///
/// State tests become `true`/`false`; annotated links lose their annotation.
///
/// # Examples
///
/// ```
/// use stateful_netkat::{project, SPolicy, STest};
/// use netkat::{Policy, Pred};
/// let p = SPolicy::Test(STest::State(0, 1));
/// assert_eq!(project(&p, &[1]), Policy::filter(Pred::True));
/// assert_eq!(project(&p, &[0]), Policy::filter(Pred::False));
/// ```
pub fn project(p: &SPolicy, k: &[Value]) -> Policy {
    match p {
        SPolicy::Test(t) => Policy::filter(project_test(t, k)),
        SPolicy::Assign(f, n) => Policy::modify(*f, *n),
        SPolicy::Union(a, b) => project(a, k).union(project(b, k)),
        SPolicy::Seq(a, b) => project(a, k).seq(project(b, k)),
        SPolicy::Star(a) => project(a, k).star(),
        SPolicy::Link(a, b) | SPolicy::LinkState(a, b, _) => Policy::link(*a, *b),
    }
}

fn project_test(t: &STest, k: &[Value]) -> Pred {
    match t {
        STest::True => Pred::True,
        STest::False => Pred::False,
        STest::Field(f, n) => Pred::test(*f, *n),
        STest::State(m, n) => {
            if k.get(*m) == Some(n) {
                Pred::True
            } else {
                Pred::False
            }
        }
        STest::And(a, b) => project_test(a, k).and(project_test(b, k)),
        STest::Or(a, b) => project_test(a, k).or(project_test(b, k)),
        STest::Not(a) => project_test(a, k).not(),
    }
}

/// `⦇p⦈~k ϕ` (Fig. 6): the event-edges and surviving test-conjunctions.
///
/// Call with `TestConj::new()` (i.e. `ϕ = true`) at the top level.
///
/// # Errors
///
/// Returns an error message if a `*` fails to converge within an internal
/// bound (the sets grow monotonically in a finite space, so this indicates a
/// pathological program).
pub fn event_edges(
    p: &SPolicy,
    k: &StateVec,
    phi: &TestConj,
) -> Result<(BTreeSet<EventEdge>, BTreeSet<TestConj>), String> {
    match p {
        SPolicy::Test(t) => Ok((BTreeSet::new(), test_guards(t, true, k, phi))),
        SPolicy::Assign(f, n) => {
            let mut phi = phi.clone();
            if !f.is_location() {
                // (∃f : ϕ) ∧ f = n — always satisfiable after stripping.
                phi.strip(*f);
                let ok = phi.add_eq(*f, *n);
                debug_assert!(ok);
            }
            Ok((BTreeSet::new(), BTreeSet::from([phi])))
        }
        SPolicy::Union(a, b) => {
            let (da, pa) = event_edges(a, k, phi)?;
            let (db, pb) = event_edges(b, k, phi)?;
            Ok((da.union(&db).cloned().collect(), pa.union(&pb).cloned().collect()))
        }
        SPolicy::Seq(a, b) => {
            let (da, pa) = event_edges(a, k, phi)?;
            let mut d = da;
            let mut ps = BTreeSet::new();
            for phi2 in &pa {
                let (db, pb) = event_edges(b, k, phi2)?;
                d.extend(db);
                ps.extend(pb);
            }
            Ok((d, ps))
        }
        SPolicy::Star(a) => {
            // ⊔ⱼ Fⱼ: accumulate edges and conjunctions to a fixpoint.
            let mut edges = BTreeSet::new();
            let mut phis = BTreeSet::from([phi.clone()]);
            let mut frontier = phis.clone();
            for _ in 0..STAR_FUEL {
                let mut new_phis = BTreeSet::new();
                for f in &frontier {
                    let (d, ps) = event_edges(a, k, f)?;
                    edges.extend(d);
                    for p2 in ps {
                        if !phis.contains(&p2) {
                            new_phis.insert(p2);
                        }
                    }
                }
                if new_phis.is_empty() {
                    return Ok((edges, phis));
                }
                phis.extend(new_phis.iter().cloned());
                frontier = new_phis;
            }
            Err("star iteration in event extraction did not converge".to_string())
        }
        SPolicy::Link(..) => Ok((BTreeSet::new(), BTreeSet::from([phi.clone()]))),
        SPolicy::LinkState(_, dst, writes) => {
            let mut sorted = writes.clone();
            sorted.sort();
            sorted.dedup();
            let mut to = k.clone();
            for &(m, n) in &sorted {
                if to.len() <= m {
                    to.resize(m + 1, 0);
                }
                to[m] = n;
            }
            let edge =
                EventEdge { from: k.clone(), guard: phi.clone(), loc: *dst, writes: sorted, to };
            Ok((BTreeSet::from([edge]), BTreeSet::from([phi.clone()])))
        }
    }
}

/// The `P` component for tests, with negation normalized on the fly
/// (the `L¬…M` rules of Fig. 6).
fn test_guards(t: &STest, positive: bool, k: &StateVec, phi: &TestConj) -> BTreeSet<TestConj> {
    let keep = BTreeSet::from([phi.clone()]);
    let kill = BTreeSet::new();
    match (t, positive) {
        (STest::True, true) | (STest::False, false) => keep,
        (STest::True, false) | (STest::False, true) => kill,
        (STest::Field(f, _), _) if f.is_location() => keep, // Fig. 6: sw/pt → ⦇true⦈
        (STest::Field(f, n), pos) => {
            let mut phi = phi.clone();
            let ok = if pos { phi.add_eq(*f, *n) } else { phi.add_neq(*f, *n) };
            if ok {
                BTreeSet::from([phi])
            } else {
                kill
            }
        }
        (STest::State(m, n), pos) => {
            if (k.get(*m) == Some(n)) == pos {
                keep
            } else {
                kill
            }
        }
        (STest::And(a, b), true) | (STest::Or(a, b), false) => {
            // Kleisli: thread each surviving ϕ through the second conjunct.
            let mut out = BTreeSet::new();
            for phi2 in test_guards(a, positive, k, phi) {
                out.extend(test_guards(b, positive, k, &phi2));
            }
            out
        }
        (STest::Or(a, b), true) | (STest::And(a, b), false) => {
            let mut out = test_guards(a, positive, k, phi);
            out.extend(test_guards(b, positive, k, phi));
            out
        }
        (STest::Not(a), _) => test_guards(a, !positive, k, phi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::Field;
    use std::collections::BTreeMap;

    use crate::parser::parse;

    fn env() -> BTreeMap<String, Value> {
        BTreeMap::from([("H1".to_string(), 1), ("H2".to_string(), 2), ("H4".to_string(), 4)])
    }

    fn firewall() -> SPolicy {
        parse(
            "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
             + state!=[0]; (1:1)->(4:1)); pt<-2 \
             + pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2",
            &env(),
        )
        .unwrap()
    }

    #[test]
    fn firewall_projects_to_two_distinct_configs() {
        let p = firewall();
        let c0 = project(&p, &[0]);
        let c1 = project(&p, &[1]);
        assert_ne!(c0, c1);
        // In state [0] the incoming clause is dead (state=[1] is false), so
        // only one link survives meaningfully; both projections still parse
        // as link programs.
        assert!(c0.has_links());
        assert!(c1.has_links());
    }

    #[test]
    fn firewall_event_edge_from_initial_state() {
        let p = firewall();
        let (edges, _) = event_edges(&p, &vec![0], &TestConj::new()).unwrap();
        assert_eq!(edges.len(), 1);
        let e = edges.iter().next().unwrap();
        assert_eq!(e.from, vec![0]);
        assert_eq!(e.to, vec![1]);
        assert_eq!(e.loc, Loc::new(4, 1));
        // Guard is the header conjunction: ip_dst=4 (location fields kept
        // out, matching the paper's (dst=H4, 4:1)).
        assert_eq!(e.guard.eq(Field::IpDst), Some(4));
        assert_eq!(e.guard.eq(Field::Port), None);
    }

    #[test]
    fn firewall_no_edges_from_final_state() {
        let p = firewall();
        let (edges, _) = event_edges(&p, &vec![1], &TestConj::new()).unwrap();
        // state=[0] guard is false in state [1]: no more transitions.
        assert!(edges.is_empty());
    }

    #[test]
    fn assignment_strips_and_pins_header_fields() {
        let p = parse("ip_dst=H4; vlan<-7; (1:1)->(2:1)<state<-[1]>", &env()).unwrap();
        let (edges, _) = event_edges(&p, &vec![0], &TestConj::new()).unwrap();
        let e = edges.iter().next().unwrap();
        assert_eq!(e.guard.eq(Field::Vlan), Some(7));
        assert_eq!(e.guard.eq(Field::IpDst), Some(4));
        // Overwriting: a second assignment replaces the first constraint.
        let q = parse("vlan=3; vlan<-7; (1:1)->(2:1)<state<-[1]>", &env()).unwrap();
        let (edges, _) = event_edges(&q, &vec![0], &TestConj::new()).unwrap();
        assert_eq!(edges.iter().next().unwrap().guard.eq(Field::Vlan), Some(7));
    }

    #[test]
    fn contradictory_tests_kill_the_branch() {
        let p = parse("ip_dst=H4 & ip_dst=H1; (1:1)->(2:1)<state<-[1]>", &env()).unwrap();
        let (edges, phis) = event_edges(&p, &vec![0], &TestConj::new()).unwrap();
        assert!(edges.is_empty());
        assert!(phis.is_empty());
    }

    #[test]
    fn negated_or_splits_into_neqs() {
        // !(ip_dst=H1 | ip_dst=H2) = ip_dst!=1 & ip_dst!=2
        let p = parse("!(ip_dst=H1 | ip_dst=H2); (1:1)->(2:1)<state<-[1]>", &env()).unwrap();
        let (edges, _) = event_edges(&p, &vec![0], &TestConj::new()).unwrap();
        assert_eq!(edges.len(), 1);
        let g = &edges.iter().next().unwrap().guard;
        assert!(g.excludes(Field::IpDst, 1));
        assert!(g.excludes(Field::IpDst, 2));
    }

    #[test]
    fn union_collects_edges_from_both_branches() {
        let p = parse(
            "ip_dst=H1; (1:1)->(2:1)<state(0)<-1> + ip_dst=H2; (1:1)->(2:1)<state(1)<-1>",
            &env(),
        )
        .unwrap();
        let (edges, _) = event_edges(&p, &vec![0, 0], &TestConj::new()).unwrap();
        assert_eq!(edges.len(), 2);
        let tos: BTreeSet<_> = edges.iter().map(|e| e.to.clone()).collect();
        assert!(tos.contains(&vec![1, 0]));
        assert!(tos.contains(&vec![0, 1]));
    }

    #[test]
    fn star_extraction_converges() {
        let p = parse("(ip_dst=H1; vlan<-1)*; (1:1)->(2:1)<state<-[1]>", &env()).unwrap();
        let (edges, _) = event_edges(&p, &vec![0], &TestConj::new()).unwrap();
        // Two guards reach the link: the empty iteration (no constraint) and
        // ip_dst=1 & vlan=1.
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn state_writes_extend_the_vector() {
        let p = parse("(1:1)->(2:1)<state(3)<-9>", &env()).unwrap();
        let (edges, _) = event_edges(&p, &vec![0], &TestConj::new()).unwrap();
        assert_eq!(edges.iter().next().unwrap().to, vec![0, 0, 0, 9]);
    }

    #[test]
    fn projection_of_annotated_link_is_plain_link() {
        let p = parse("(1:1)->(4:1)<state<-[1]>", &env()).unwrap();
        assert_eq!(project(&p, &[0]), Policy::link(Loc::new(1, 1), Loc::new(4, 1)));
    }
}
