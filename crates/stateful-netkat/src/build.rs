//! Building ETSs (and on to NESs) from Stateful NetKAT programs.
//!
//! This is the `ETS(p)` construction at the end of Section 3.3: vertices are
//! reachable state vectors labelled with compiled configurations, edges come
//! from the event extraction of Fig. 6.

use std::collections::BTreeMap;
use std::fmt;

use edn_core::{Config, Ets, EtsError, Event, EventId};
use netkat::{compile_global, Field, Loc, NetkatError, TestConj, Value};

use crate::ast::{SPolicy, StateVec};
use crate::extract::{event_edges, project};

/// Bound on the number of reachable state vectors explored.
const MAX_STATES: usize = 4096;

/// The physical network a program runs on: switches, host attachments, and
/// inter-switch links.
///
/// # Examples
///
/// ```
/// use stateful_netkat::NetworkSpec;
/// use netkat::Loc;
/// let spec = NetworkSpec::new([1, 4])
///     .host(101, Loc::new(1, 2))
///     .host(104, Loc::new(4, 2))
///     .bilink(Loc::new(1, 1), Loc::new(4, 1));
/// assert_eq!(spec.switches, vec![1, 4]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetworkSpec {
    /// Switch identifiers.
    pub switches: Vec<u64>,
    /// Hosts: `(host id, attachment location)`.
    pub hosts: Vec<(u64, Loc)>,
    /// Directed inter-switch links.
    pub links: Vec<(Loc, Loc)>,
}

impl NetworkSpec {
    /// Creates a spec with the given switches.
    pub fn new<I: IntoIterator<Item = u64>>(switches: I) -> NetworkSpec {
        NetworkSpec { switches: switches.into_iter().collect(), ..NetworkSpec::default() }
    }

    /// Attaches a host (builder style).
    pub fn host(mut self, id: u64, attached: Loc) -> NetworkSpec {
        self.hosts.push((id, attached));
        self
    }

    /// Adds a unidirectional link (builder style).
    pub fn link(mut self, src: Loc, dst: Loc) -> NetworkSpec {
        self.links.push((src, dst));
        self
    }

    /// Adds both directions of a link (builder style).
    pub fn bilink(mut self, a: Loc, b: Loc) -> NetworkSpec {
        self.links.push((a, b));
        self.links.push((b, a));
        self
    }

    /// The configuration skeleton: links and hosts, no tables.
    pub fn base_config(&self) -> Config {
        let mut c = Config::new();
        for &(src, dst) in &self.links {
            c.add_link(src, dst);
        }
        for &(id, at) in &self.hosts {
            c.add_host(id, at);
        }
        c
    }
}

/// Errors during ETS/NES construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// NetKAT compilation of a projected configuration failed.
    Netkat(NetkatError),
    /// Event extraction failed (star divergence).
    Extraction(String),
    /// The reachable state space exceeded the exploration bound.
    StateSpaceTooLarge,
    /// More than 64 distinct events were extracted.
    TooManyEvents,
    /// The resulting transition system is ill-formed.
    Ets(EtsError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Netkat(e) => write!(f, "netkat compilation failed: {e}"),
            BuildError::Extraction(m) => write!(f, "event extraction failed: {m}"),
            BuildError::StateSpaceTooLarge => {
                write!(f, "more than {MAX_STATES} reachable state vectors")
            }
            BuildError::TooManyEvents => write!(f, "more than 64 distinct events"),
            BuildError::Ets(e) => write!(f, "ill-formed transition system: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<NetkatError> for BuildError {
    fn from(e: NetkatError) -> BuildError {
        BuildError::Netkat(e)
    }
}

impl From<EtsError> for BuildError {
    fn from(e: EtsError) -> BuildError {
        BuildError::Ets(e)
    }
}

/// Compiles `⟦p⟧~k` to a full [`Config`] on `spec`.
///
/// # Errors
///
/// Propagates NetKAT compilation errors.
pub fn project_config(p: &SPolicy, k: &[Value], spec: &NetworkSpec) -> Result<Config, BuildError> {
    let policy = project(p, k);
    let tables = compile_global(&policy, &spec.switches)?;
    let mut config = spec.base_config();
    for (sw, table) in tables.tables {
        config.install(sw, table);
    }
    Ok(config)
}

/// Builds the ETS of a program from the initial state vector `k0`
/// (Section 3.3's `ETS(p)`), restricted to reachable states.
///
/// Event identity follows the paper's renaming discipline: an edge's event
/// is identified by its `(ϕ, location, state writes)` triple, so the "same"
/// arrival writing different state values (the bandwidth cap's chain) yields
/// distinct renamed events, while one syntactic command reachable from
/// several states (the learning-switch diamond) yields a single event.
///
/// # Errors
///
/// Returns a [`BuildError`] on compilation failure, state-space explosion,
/// event overflow, or an ill-formed ETS.
pub fn build_ets(p: &SPolicy, k0: &[Value], spec: &NetworkSpec) -> Result<Ets, BuildError> {
    let width = p.state_width().max(k0.len());
    let mut initial: StateVec = k0.to_vec();
    initial.resize(width, 0);

    let mut vertex_of: BTreeMap<StateVec, usize> = BTreeMap::new();
    let mut configs: Vec<Config> = Vec::new();
    let mut order: Vec<StateVec> = Vec::new();

    let add_vertex = |k: &StateVec,
                      configs: &mut Vec<Config>,
                      order: &mut Vec<StateVec>,
                      vertex_of: &mut BTreeMap<StateVec, usize>|
     -> Result<usize, BuildError> {
        if let Some(&v) = vertex_of.get(k) {
            return Ok(v);
        }
        if vertex_of.len() >= MAX_STATES {
            return Err(BuildError::StateSpaceTooLarge);
        }
        let v = configs.len();
        configs.push(project_config(p, k, spec)?);
        order.push(k.clone());
        vertex_of.insert(k.clone(), v);
        Ok(v)
    };

    let v0 = add_vertex(&initial, &mut configs, &mut order, &mut vertex_of)?;

    type EventKey = (TestConj, Loc, Vec<(usize, Value)>);
    let mut event_of: BTreeMap<EventKey, EventId> = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut edges: Vec<(usize, EventId, usize)> = Vec::new();

    let mut frontier = vec![initial];
    while let Some(k) = frontier.pop() {
        let from = vertex_of[&k];
        let (out_edges, _) =
            event_edges(p, &k, &TestConj::new()).map_err(BuildError::Extraction)?;
        for edge in out_edges {
            let mut to_vec = edge.to.clone();
            if to_vec.len() < width {
                to_vec.resize(width, 0);
            }
            let is_new = !vertex_of.contains_key(&to_vec);
            let to = add_vertex(&to_vec, &mut configs, &mut order, &mut vertex_of)?;
            if is_new {
                frontier.push(to_vec);
            }
            let key: EventKey = (edge.guard.clone(), edge.loc, edge.writes.clone());
            let id = match event_of.get(&key) {
                Some(&id) => id,
                None => {
                    if events.len() >= EventId::MAX_EVENTS {
                        return Err(BuildError::TooManyEvents);
                    }
                    let id = EventId::new(events.len());
                    let mut guard = edge.guard.clone();
                    guard.strip(Field::Switch);
                    guard.strip(Field::Port);
                    events.push(Event::new(id, guard.to_pred(), edge.loc));
                    event_of.insert(key, id);
                    id
                }
            };
            if from != to {
                edges.push((from, id, to));
            }
        }
    }
    edges.sort();
    edges.dedup();

    let ets = Ets { events, configs, edges, initial: v0 };
    ets.validate()?;
    Ok(ets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Env;

    use crate::parser::parse;

    fn env() -> Env<String, Value> {
        Env::from([("H1".to_string(), 101), ("H2".to_string(), 102), ("H4".to_string(), 104)])
    }

    /// The Fig. 8(a) firewall topology: hosts 101 (at 1:2) and 104 (at 4:2),
    /// switches 1 and 4 joined by 1:1 <-> 4:1.
    fn firewall_spec() -> NetworkSpec {
        NetworkSpec::new([1, 4])
            .host(101, Loc::new(1, 2))
            .host(104, Loc::new(4, 2))
            .bilink(Loc::new(1, 1), Loc::new(4, 1))
    }

    fn firewall_program() -> SPolicy {
        parse(
            "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
             + state!=[0]; (1:1)->(4:1)); pt<-2 \
             + pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2",
            &env(),
        )
        .unwrap()
    }

    #[test]
    fn firewall_ets_shape() {
        let ets = build_ets(&firewall_program(), &[0], &firewall_spec()).unwrap();
        assert_eq!(ets.vertex_count(), 2);
        assert_eq!(ets.edges.len(), 1);
        assert_eq!(ets.events.len(), 1);
        let e = &ets.events[0];
        assert_eq!(e.loc, Loc::new(4, 1));
        // NES conversion succeeds and is locally determined.
        let nes = ets.to_nes().unwrap();
        assert_eq!(nes.event_sets().len(), 2);
        assert!(nes.is_locally_determined(4));
    }

    #[test]
    fn firewall_configs_differ_between_states() {
        let spec = firewall_spec();
        let p = firewall_program();
        let c0 = project_config(&p, &[0], &spec).unwrap();
        let c1 = project_config(&p, &[1], &spec).unwrap();
        assert_ne!(c0, c1);
        // In C1 switch 4 forwards replies: its table is larger.
        assert!(
            c1.table(4).map(|t| t.len()).unwrap_or(0) >= c0.table(4).map(|t| t.len()).unwrap_or(0)
        );
    }

    #[test]
    fn chain_program_renames_events() {
        // A two-step cap: same guard and location, different state writes.
        let p = parse(
            "pt=2 & ip_dst=H4; pt<-1; ( \
               state=[0]; (1:1)->(4:1)<state<-[1]> \
             + state=[1]; (1:1)->(4:1)<state<-[2]> \
             + state=[2]; (1:1)->(4:1)); pt<-2",
            &env(),
        )
        .unwrap();
        let ets = build_ets(&p, &[0], &firewall_spec()).unwrap();
        assert_eq!(ets.vertex_count(), 3);
        assert_eq!(ets.events.len(), 2, "renamed copies must be distinct events");
        let nes = ets.to_nes().unwrap();
        assert_eq!(nes.event_sets().len(), 3);
    }

    #[test]
    fn diamond_program_shares_events() {
        // Two independent one-shot events on different state slots.
        let p = parse(
            "ip_dst=H1; pt<-1; (1:1)->(4:1)<state(0)<-1>; pt<-2 \
             + ip_dst=H2; pt<-1; (1:1)->(4:1)<state(1)<-1>; pt<-2",
            &env(),
        )
        .unwrap();
        let ets = build_ets(&p, &[0, 0], &firewall_spec()).unwrap();
        // States: [0,0], [1,0], [0,1], [1,1].
        assert_eq!(ets.vertex_count(), 4);
        assert_eq!(ets.events.len(), 2, "each command is one event across all states");
        assert_eq!(ets.edges.len(), 4);
        let nes = ets.to_nes().unwrap();
        assert_eq!(nes.event_sets().len(), 4);
        assert!(nes.structure().verify_axioms());
    }

    #[test]
    fn cyclic_state_program_is_rejected() {
        let p = parse(
            "state=[0]; (1:1)->(4:1)<state<-[1]> + state=[1]; (4:1)->(1:1)<state<-[0]>",
            &env(),
        )
        .unwrap();
        let err = build_ets(&p, &[0], &firewall_spec()).unwrap_err();
        assert_eq!(err, BuildError::Ets(EtsError::HasCycle));
    }

    #[test]
    fn self_loop_writes_are_no_transitions() {
        // Writing the current value back is not a state change; the edge is
        // dropped (from == to), keeping the ETS loop-free.
        let p = parse("state=[1]; (1:1)->(4:1)<state<-[1]>", &env()).unwrap();
        let ets = build_ets(&p, &[1], &firewall_spec()).unwrap();
        assert_eq!(ets.vertex_count(), 1);
        assert!(ets.edges.is_empty());
    }
}
