//! Equivalence checking for Stateful NetKAT programs (the paper's
//! Section 7 lists "formal reasoning and automated verification for
//! Stateful NetKAT" as future work; this is the natural first instalment).
//!
//! Two programs are *behaviourally equivalent* on a network when their
//! ETSs are bisimilar: starting from the initial states, the compiled
//! configurations are equal and every event-labelled transition of one is
//! matched by the other, coinductively. Event labels are compared as
//! `(guard predicate, location)` pairs — syntactic up to the extraction
//! function's normalization, so semantically equal but differently-written
//! guards may report inequivalence (a sound, incomplete check).

use std::collections::BTreeSet;

use edn_core::Ets;
use netkat::{Loc, Pred, Value};

use crate::ast::SPolicy;
use crate::build::{build_ets, BuildError, NetworkSpec};

/// Checks bisimilarity of two ETSs (configurations equal at related
/// vertices, transitions matched by `(guard, location)` label).
pub fn ets_bisimilar(a: &Ets, b: &Ets) -> bool {
    let mut assumed: BTreeSet<(usize, usize)> = BTreeSet::new();
    bisim(a, b, a.initial, b.initial, &mut assumed)
}

type Label = (Pred, Loc);

fn out_labels(ets: &Ets, v: usize) -> Vec<(Label, usize)> {
    let mut out: Vec<(Label, usize)> = ets
        .edges
        .iter()
        .filter(|&&(from, _, _)| from == v)
        .map(|&(_, e, to)| {
            let ev = &ets.events[e.index()];
            ((ev.pred.clone(), ev.loc), to)
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

fn bisim(a: &Ets, b: &Ets, va: usize, vb: usize, assumed: &mut BTreeSet<(usize, usize)>) -> bool {
    if !assumed.insert((va, vb)) {
        return true; // coinductive hypothesis
    }
    if a.configs[va] != b.configs[vb] {
        return false;
    }
    let la = out_labels(a, va);
    let lb = out_labels(b, vb);
    let labels_a: BTreeSet<&Label> = la.iter().map(|(l, _)| l).collect();
    let labels_b: BTreeSet<&Label> = lb.iter().map(|(l, _)| l).collect();
    if labels_a != labels_b {
        return false;
    }
    // Every same-labelled pair of successors must be bisimilar.
    for (label_a, ta) in &la {
        for (label_b, tb) in &lb {
            if label_a == label_b && !bisim(a, b, *ta, *tb, assumed) {
                return false;
            }
        }
    }
    true
}

/// Checks behavioural equivalence of two programs on a network, from the
/// given initial state vectors.
///
/// # Errors
///
/// Propagates [`BuildError`] from either compilation.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use netkat::Loc;
/// use stateful_netkat::{equivalent_programs, parse, NetworkSpec};
/// let env = BTreeMap::from([("H4".to_string(), 104u64)]);
/// let spec = NetworkSpec::new([1, 4])
///     .host(101, Loc::new(1, 2))
///     .host(104, Loc::new(4, 2))
///     .bilink(Loc::new(1, 1), Loc::new(4, 1));
/// let p = parse("pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1); pt<-2", &env)?;
/// let q = parse("ip_dst=H4 & pt=2; pt<-1; (1:1)->(4:1); pt<-2", &env)?;
/// assert!(equivalent_programs(&p, &[0], &q, &[0], &spec)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn equivalent_programs(
    p: &SPolicy,
    k0_p: &[Value],
    q: &SPolicy,
    k0_q: &[Value],
    spec: &NetworkSpec,
) -> Result<bool, BuildError> {
    let ets_p = build_ets(p, k0_p, spec)?;
    let ets_q = build_ets(q, k0_q, spec)?;
    Ok(ets_bisimilar(&ets_p, &ets_q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::BTreeMap;

    fn env() -> BTreeMap<String, Value> {
        BTreeMap::from([("H1".to_string(), 101), ("H2".to_string(), 102), ("H4".to_string(), 104)])
    }

    fn spec() -> NetworkSpec {
        NetworkSpec::new([1, 4])
            .host(101, Loc::new(1, 2))
            .host(104, Loc::new(4, 2))
            .bilink(Loc::new(1, 1), Loc::new(4, 1))
    }

    const FIREWALL: &str = "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
                            + state!=[0]; (1:1)->(4:1)); pt<-2 \
                            + pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2";

    #[test]
    fn reflexivity() {
        let p = parse(FIREWALL, &env()).unwrap();
        assert!(equivalent_programs(&p, &[0], &p, &[0], &spec()).unwrap());
    }

    #[test]
    fn union_commutes() {
        let p = parse(FIREWALL, &env()).unwrap();
        // Same clauses, opposite order.
        let q = parse(
            "pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2 \
             + pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
             + state!=[0]; (1:1)->(4:1)); pt<-2",
            &env(),
        )
        .unwrap();
        assert!(equivalent_programs(&p, &[0], &q, &[0], &spec()).unwrap());
    }

    #[test]
    fn conjunction_commutes_in_guards() {
        let p = parse("pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2", &env()).unwrap();
        let q = parse("ip_dst=H4 & pt=2; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2", &env()).unwrap();
        assert!(equivalent_programs(&p, &[0], &q, &[0], &spec()).unwrap());
    }

    #[test]
    fn different_initial_states_differ() {
        let p = parse(FIREWALL, &env()).unwrap();
        // Starting in state [1], the firewall is already open: fewer
        // transitions, different initial configuration.
        assert!(!equivalent_programs(&p, &[0], &p, &[1], &spec()).unwrap());
    }

    #[test]
    fn dropping_a_clause_differs() {
        let p = parse(FIREWALL, &env()).unwrap();
        let q = parse(
            "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
             + state!=[0]; (1:1)->(4:1)); pt<-2",
            &env(),
        )
        .unwrap();
        assert!(!equivalent_programs(&p, &[0], &q, &[0], &spec()).unwrap());
    }

    #[test]
    fn different_event_guards_differ() {
        let p = parse("pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2", &env()).unwrap();
        let q = parse("pt=2 & ip_dst=H2; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2", &env()).unwrap();
        assert!(!equivalent_programs(&p, &[0], &q, &[0], &spec()).unwrap());
    }

    #[test]
    fn state_renaming_is_equivalent() {
        // Using value 7 instead of 1 as the "open" marker is behaviourally
        // invisible.
        let p = parse(FIREWALL, &env()).unwrap();
        let q = parse(
            "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[7]> \
             + state!=[0]; (1:1)->(4:1)); pt<-2 \
             + pt=2 & ip_dst=H1; state=[7]; pt<-1; (4:1)->(1:1); pt<-2",
            &env(),
        )
        .unwrap();
        assert!(equivalent_programs(&p, &[0], &q, &[0], &spec()).unwrap());
    }
}
