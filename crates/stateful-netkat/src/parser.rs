//! Parser for the Stateful NetKAT concrete syntax (Fig. 9 programs).
//!
//! Grammar (ASCII rendition of the paper's notation):
//!
//! ```text
//! program := union
//! union   := seq ('+' seq)*
//! seq     := or (';' or)*
//! or      := and ('|' and)*                   (tests only)
//! and     := unary ('&' unary)*               (tests only)
//! unary   := '!' unary | postfix
//! postfix := primary '*'?
//! primary := link | '(' union ')' | 'true' | 'false'
//!          | 'state' sel? ('='|'!=') rhs
//!          | field ('='|'!=') value | field '<-' value
//! link    := '(' n ':' n ')' '->' '(' n ':' n ')' annot?
//! annot   := '<' writes '>'
//! writes  := 'state' '<-' '[' value (',' value)* ']'
//!          | 'state' '(' n ')' '<-' value (',' 'state' '(' n ')' '<-' value)*
//! rhs     := '[' value (',' value)* ']' | value      (vector iff no sel)
//! value   := number | symbol                          (symbols via env)
//! ```
//!
//! Symbols like `H4` resolve through a caller-supplied environment.

use std::collections::BTreeMap;
use std::fmt;

use netkat::{Field, Loc, Value};

use crate::ast::{SPolicy, STest};
use crate::lexer::{tokenize, LexError, Token};

/// A parse error with a human-readable message and token position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Index of the offending token (or one past the end).
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at token {})", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { message: e.to_string(), position: 0 }
    }
}

/// Parses a Stateful NetKAT program.
///
/// `env` maps symbolic names (e.g. `H4`) to numeric values.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic problems, unknown fields,
/// or unresolved symbols.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use stateful_netkat::parse;
/// let env = BTreeMap::from([("H4".to_string(), 4u64)]);
/// let p = parse("pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2", &env)?;
/// assert_eq!(p.state_width(), 1);
/// # Ok::<(), stateful_netkat::ParseError>(())
/// ```
pub fn parse(src: &str, env: &BTreeMap<String, Value>) -> Result<SPolicy, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0, env };
    let pol = p.union()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("unexpected trailing token {}", p.tokens[p.pos])));
    }
    Ok(pol)
}

struct Parser<'e> {
    tokens: Vec<Token>,
    pos: usize,
    env: &'e BTreeMap<String, Value>,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.pos }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn union(&mut self) -> Result<SPolicy, ParseError> {
        let mut acc = self.seq()?;
        while self.peek() == Some(&Token::Plus) {
            self.bump();
            acc = acc.union(self.seq()?);
        }
        Ok(acc)
    }

    fn seq(&mut self) -> Result<SPolicy, ParseError> {
        let mut acc = self.or_level()?;
        while self.peek() == Some(&Token::Semi) {
            self.bump();
            acc = acc.seq(self.or_level()?);
        }
        Ok(acc)
    }

    fn or_level(&mut self) -> Result<SPolicy, ParseError> {
        let mut acc = self.and_level()?;
        while self.peek() == Some(&Token::Or) {
            self.bump();
            let rhs = self.and_level()?;
            acc = SPolicy::Test(self.as_test(acc)?.or(self.as_test(rhs)?));
        }
        Ok(acc)
    }

    fn and_level(&mut self) -> Result<SPolicy, ParseError> {
        let mut acc = self.unary()?;
        while self.peek() == Some(&Token::And) {
            self.bump();
            let rhs = self.unary()?;
            acc = SPolicy::Test(self.as_test(acc)?.and(self.as_test(rhs)?));
        }
        Ok(acc)
    }

    fn as_test(&self, p: SPolicy) -> Result<STest, ParseError> {
        match p {
            SPolicy::Test(t) => Ok(t),
            other => Err(self.err(format!("`&`, `|`, `!` apply to tests only, found {other}"))),
        }
    }

    fn unary(&mut self) -> Result<SPolicy, ParseError> {
        if self.peek() == Some(&Token::Bang) {
            self.bump();
            let inner = self.unary()?;
            return Ok(SPolicy::Test(self.as_test(inner)?.not()));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<SPolicy, ParseError> {
        let mut p = self.primary()?;
        while self.peek() == Some(&Token::Star) {
            self.bump();
            p = SPolicy::Star(Box::new(p));
        }
        Ok(p)
    }

    fn primary(&mut self) -> Result<SPolicy, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                // `(n:` begins a link; anything else is a parenthesized
                // policy.
                if matches!(self.peek_at(1), Some(Token::Num(_)))
                    && self.peek_at(2) == Some(&Token::Colon)
                {
                    return self.link();
                }
                self.bump();
                let inner = self.union()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                let name = name.clone();
                match name.as_str() {
                    "true" => {
                        self.bump();
                        Ok(SPolicy::Test(STest::True))
                    }
                    "false" => {
                        self.bump();
                        Ok(SPolicy::Test(STest::False))
                    }
                    "state" => self.state_test(),
                    _ => self.field_op(&name),
                }
            }
            Some(t) => Err(self.err(format!("expected a command, found {t}"))),
            None => Err(self.err("expected a command, found end of input")),
        }
    }

    /// `state(m) = n`, `state = [v…]`, and their `!=` forms.
    fn state_test(&mut self) -> Result<SPolicy, ParseError> {
        self.bump(); // `state`
        let sel = if self.peek() == Some(&Token::LParen) {
            self.bump();
            let m = self.number()? as usize;
            self.expect(&Token::RParen)?;
            Some(m)
        } else {
            None
        };
        let negated = match self.bump() {
            Some(Token::Eq) => false,
            Some(Token::Neq) => true,
            Some(Token::Assign) => {
                return Err(self.err(
                    "state assignment must be attached to a link: (a:b)->(c:d)<state<-[..]>",
                ));
            }
            other => {
                return Err(self.err(format!(
                    "expected `=` or `!=` after state, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                )));
            }
        };
        let test = match sel {
            Some(m) => {
                let n = self.value()?;
                STest::State(m, n)
            }
            None => {
                let vec = self.vector()?;
                STest::state_eq(&vec)
            }
        };
        Ok(SPolicy::Test(if negated { test.not() } else { test }))
    }

    /// `field = n`, `field != n`, `field <- n`.
    fn field_op(&mut self, name: &str) -> Result<SPolicy, ParseError> {
        let Some(field) = Field::parse(name) else {
            return Err(self.err(format!("unknown field or symbol `{name}`")));
        };
        self.bump(); // the identifier
        match self.bump() {
            Some(Token::Eq) => Ok(SPolicy::Test(STest::Field(field, self.value()?))),
            Some(Token::Neq) => Ok(SPolicy::Test(STest::Field(field, self.value()?).not())),
            Some(Token::Assign) => {
                if field == Field::Switch {
                    return Err(self.err("the switch field cannot be assigned"));
                }
                Ok(SPolicy::Assign(field, self.value()?))
            }
            other => Err(self.err(format!(
                "expected `=`, `!=` or `<-` after field {field}, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    /// `(a:b)->(c:d)` with optional `<state…>` annotation.
    fn link(&mut self) -> Result<SPolicy, ParseError> {
        let src = self.loc()?;
        self.expect(&Token::Arrow)?;
        let dst = self.loc()?;
        if self.peek() != Some(&Token::Lt) {
            return Ok(SPolicy::Link(src, dst));
        }
        self.bump(); // `<`
        let mut writes: Vec<(usize, Value)> = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(s)) if s == "state" => {}
                other => {
                    return Err(self.err(format!(
                        "expected `state` in link annotation, found {}",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    )));
                }
            }
            if self.peek() == Some(&Token::LParen) {
                self.bump();
                let m = self.number()? as usize;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Assign)?;
                writes.push((m, self.value()?));
            } else {
                self.expect(&Token::Assign)?;
                let vec = self.vector()?;
                writes.extend(vec.into_iter().enumerate());
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.expect(&Token::Gt)?;
        Ok(SPolicy::LinkState(src, dst, writes))
    }

    fn loc(&mut self) -> Result<Loc, ParseError> {
        self.expect(&Token::LParen)?;
        let sw = self.number()?;
        self.expect(&Token::Colon)?;
        let pt = self.number()?;
        self.expect(&Token::RParen)?;
        Ok(Loc::new(sw, pt))
    }

    fn vector(&mut self) -> Result<Vec<Value>, ParseError> {
        self.expect(&Token::LBracket)?;
        let mut out = vec![self.value()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            out.push(self.value()?);
        }
        self.expect(&Token::RBracket)?;
        Ok(out)
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Some(Token::Num(n)) => Ok(n),
            other => Err(self.err(format!(
                "expected a number, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    /// A numeric literal or a symbol resolved through the environment.
    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Token::Num(n)) => Ok(n),
            Some(Token::Ident(s)) => self
                .env
                .get(&s)
                .copied()
                .ok_or_else(|| self.err(format!("unresolved symbol `{s}`"))),
            other => Err(self.err(format!(
                "expected a value, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> BTreeMap<String, Value> {
        BTreeMap::from([
            ("H1".to_string(), 1),
            ("H2".to_string(), 2),
            ("H3".to_string(), 3),
            ("H4".to_string(), 4),
        ])
    }

    #[test]
    fn firewall_outgoing_clause_parses() {
        let p = parse(
            "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
             + state!=[0]; (1:1)->(4:1)); pt<-2",
            &env(),
        )
        .unwrap();
        assert_eq!(p.state_width(), 1);
        assert_eq!(p.links().len(), 1);
    }

    #[test]
    fn full_firewall_program_parses() {
        let src = "pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> \
                   + state!=[0]; (1:1)->(4:1)); pt<-2 \
                   + pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2";
        let p = parse(src, &env()).unwrap();
        assert_eq!(p.links().len(), 2);
    }

    #[test]
    fn indexed_state_and_vector_state() {
        let p = parse("state(1)=3", &env()).unwrap();
        assert_eq!(p, SPolicy::Test(STest::State(1, 3)));
        let q = parse("state=[1,2]", &env()).unwrap();
        assert_eq!(q, SPolicy::Test(STest::State(0, 1).and(STest::State(1, 2))));
        let r = parse("state!=[0]", &env()).unwrap();
        assert_eq!(r, SPolicy::Test(STest::State(0, 0).not()));
    }

    #[test]
    fn link_annotations() {
        let p = parse("(1:1)->(4:1)<state<-[1]>", &env()).unwrap();
        assert_eq!(p, SPolicy::LinkState(Loc::new(1, 1), Loc::new(4, 1), vec![(0, 1)]));
        let q = parse("(1:1)->(4:1)<state(2)<-5, state(0)<-1>", &env()).unwrap();
        assert_eq!(q, SPolicy::LinkState(Loc::new(1, 1), Loc::new(4, 1), vec![(2, 5), (0, 1)]));
    }

    #[test]
    fn precedence_of_connectives() {
        // `a & b | c` parses as `(a&b) | c`; `;` binds looser.
        let p = parse("pt=1 & pt=2 | pt=3; pt<-9", &env()).unwrap();
        let expected = SPolicy::Test(
            STest::Field(Field::Port, 1)
                .and(STest::Field(Field::Port, 2))
                .or(STest::Field(Field::Port, 3)),
        )
        .seq(SPolicy::Assign(Field::Port, 9));
        assert_eq!(p, expected);
    }

    #[test]
    fn star_and_parens() {
        let p = parse("(pt=1; pt<-2)*", &env()).unwrap();
        assert!(matches!(p, SPolicy::Star(_)));
    }

    #[test]
    fn symbols_resolve() {
        let p = parse("ip_dst=H3", &env()).unwrap();
        assert_eq!(p, SPolicy::Test(STest::Field(Field::IpDst, 3)));
    }

    #[test]
    fn error_messages() {
        let e = parse("ip_dst=H9", &env()).unwrap_err();
        assert!(e.message.contains("unresolved symbol `H9`"), "{e}");
        let e = parse("bogus=1", &env()).unwrap_err();
        assert!(e.message.contains("unknown field"), "{e}");
        let e = parse("state<-[1]", &env()).unwrap_err();
        assert!(e.message.contains("attached to a link"), "{e}");
        let e = parse("pt<-1 &", &env()).unwrap_err();
        assert!(e.message.contains("tests only") || e.message.contains("expected"), "{e}");
        let e = parse("sw<-3", &env()).unwrap_err();
        assert!(e.message.contains("cannot be assigned"), "{e}");
        let e = parse("pt=1 )", &env()).unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn negation_applies_to_tests_only() {
        let e = parse("!(pt<-1)", &env()).unwrap_err();
        assert!(e.message.contains("tests only"), "{e}");
        let ok = parse("!(pt=1 | pt=2)", &env()).unwrap();
        assert!(matches!(ok, SPolicy::Test(STest::Not(_))));
    }
}

/// Parses a *plain* (stateless) NetKAT policy: the Stateful NetKAT grammar
/// without `state` tests or annotated links, projected to a
/// [`netkat::Policy`].
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, or if the program uses any
/// stateful construct.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use stateful_netkat::parse_netkat;
/// let env = BTreeMap::from([("H4".to_string(), 104u64)]);
/// let p = parse_netkat("pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1); pt<-2", &env)?;
/// assert!(p.has_links());
/// # Ok::<(), stateful_netkat::ParseError>(())
/// ```
pub fn parse_netkat(
    src: &str,
    env: &BTreeMap<String, Value>,
) -> Result<netkat::Policy, ParseError> {
    let stateful = parse(src, env)?;
    if stateful.state_width() > 0 {
        return Err(ParseError {
            message: "program uses `state`; parse it with `parse` instead".to_string(),
            position: 0,
        });
    }
    fn uses_link_state(p: &SPolicy) -> bool {
        match p {
            SPolicy::Test(_) | SPolicy::Assign(..) | SPolicy::Link(..) => false,
            SPolicy::LinkState(..) => true,
            SPolicy::Union(a, b) | SPolicy::Seq(a, b) => uses_link_state(a) || uses_link_state(b),
            SPolicy::Star(a) => uses_link_state(a),
        }
    }
    if uses_link_state(&stateful) {
        return Err(ParseError {
            message: "program uses a state-annotated link; parse it with `parse` instead"
                .to_string(),
            position: 0,
        });
    }
    Ok(crate::extract::project(&stateful, &[]))
}

#[cfg(test)]
mod netkat_parse_tests {
    use super::*;

    fn env() -> BTreeMap<String, Value> {
        BTreeMap::from([("H4".to_string(), 104)])
    }

    #[test]
    fn plain_policies_parse() {
        let p = parse_netkat("pt=2 & ip_dst=H4; pt<-1", &env()).unwrap();
        let pk = netkat::Packet::new().with(netkat::Field::Port, 2).with(netkat::Field::IpDst, 104);
        let out = netkat::eval(&p, &pk).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn stateful_constructs_are_rejected() {
        let e = parse_netkat("state=[0]; pt<-1", &env()).unwrap_err();
        assert!(e.message.contains("uses `state`"), "{e}");
        let e = parse_netkat("(1:1)->(4:1)<state<-[1]>", &env()).unwrap_err();
        assert!(e.message.contains("annotated link") || e.message.contains("state"), "{e}");
    }

    #[test]
    fn state_annotated_link_writing_zero_rejected() {
        // `state(0)<-0` has state_width 1? max index 0 -> width 1, caught by
        // the width check; an annotation writing only defaults still counts
        // as stateful syntax.
        let e = parse_netkat("(1:1)->(4:1)<state(0)<-0>", &env()).unwrap_err();
        assert!(!e.message.is_empty());
    }
}
