//! # Stateful NetKAT
//!
//! The stateful extension of NetKAT from Section 3 of *Event-Driven Network
//! Programming* (PLDI 2016): a global vector-valued `state` variable lets
//! one program denote a whole family of NetKAT configurations together with
//! the event-driven transitions between them.
//!
//! The crate provides the concrete syntax of the paper's Fig. 9 programs
//! ([`parse`]), the per-state projection `⟦p⟧~k` of Fig. 5 ([`project`]),
//! the event-edge extraction `⦇p⦈~k` of Fig. 6 ([`event_edges`]), and the
//! `ETS(p)` construction of Section 3.3 ([`build_ets`]), which feeds the
//! `edn-core` conversion to network event structures.
//!
//! ```
//! use std::collections::BTreeMap;
//! use stateful_netkat::{build_ets, parse, NetworkSpec};
//! use netkat::Loc;
//!
//! let env = BTreeMap::from([("H4".to_string(), 104u64)]);
//! let program = parse(
//!     "pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2",
//!     &env,
//! )?;
//! let spec = NetworkSpec::new([1, 4])
//!     .host(101, Loc::new(1, 2))
//!     .host(104, Loc::new(4, 2))
//!     .bilink(Loc::new(1, 1), Loc::new(4, 1));
//! let ets = build_ets(&program, &[0], &spec)?;
//! let nes = ets.to_nes()?;
//! assert_eq!(nes.events().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod build;
mod equiv;
mod extract;
pub mod lexer;
mod parser;

pub use ast::{SPolicy, STest, StateVec};
pub use build::{build_ets, project_config, BuildError, NetworkSpec};
pub use equiv::{equivalent_programs, ets_bisimilar};
pub use extract::{event_edges, project, EventEdge};
pub use parser::{parse, parse_netkat, ParseError};
