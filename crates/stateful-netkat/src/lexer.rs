//! Lexer for the Stateful NetKAT concrete syntax.
//!
//! The token set follows the paper's Fig. 9 programs, ASCII-fied:
//! `∧`→`&`, `∨`→`|`, `¬`→`!`, `←`→`<-`, `_` (link arrow)→`->`,
//! `⟨…⟩`→`<…>`.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// An identifier (field name, `state`, `true`, `false`, or a symbol
    /// looked up in the parser's environment).
    Ident(String),
    /// A numeric literal.
    Num(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<` (opening a link's state annotation)
    Lt,
    /// `>` (closing a link's state annotation)
    Gt,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `&`
    And,
    /// `|`
    Or,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<-`
    Assign,
    /// `->`
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Num(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Colon => write!(f, ":"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Plus => write!(f, "+"),
            Token::Star => write!(f, "*"),
            Token::And => write!(f, "&"),
            Token::Or => write!(f, "|"),
            Token::Bang => write!(f, "!"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "!="),
            Token::Assign => write!(f, "<-"),
            Token::Arrow => write!(f, "->"),
        }
    }
}

/// A lexical error: an unexpected character with its byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} at byte {}", self.ch, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes Stateful NetKAT source text.
///
/// Comments run from `#` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns [`LexError`] on any character outside the language.
///
/// # Examples
///
/// ```
/// use stateful_netkat::lexer::{tokenize, Token};
/// let toks = tokenize("pt=2 & ip_dst=H4; pt<-1")?;
/// assert_eq!(toks[0], Token::Ident("pt".into()));
/// assert_eq!(toks[1], Token::Eq);
/// # Ok::<(), stateful_netkat::lexer::LexError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '&' => {
                out.push(Token::And);
                i += 1;
            }
            '|' => {
                out.push(Token::Or);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '>' => {
                out.push(Token::Gt);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'-') {
                    out.push(Token::Assign);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Arrow);
                    i += 2;
                } else {
                    return Err(LexError { ch: '-', offset: i });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Token::Num(text.parse().expect("digits parse")));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(LexError { ch: other, offset: i }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firewall_clause_tokens() {
        let toks = tokenize("pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>").unwrap();
        use Token::*;
        assert_eq!(
            toks,
            vec![
                Ident("pt".into()),
                Eq,
                Num(2),
                And,
                Ident("ip_dst".into()),
                Eq,
                Ident("H4".into()),
                Semi,
                Ident("pt".into()),
                Assign,
                Num(1),
                Semi,
                LParen,
                Num(1),
                Colon,
                Num(1),
                RParen,
                Arrow,
                LParen,
                Num(4),
                Colon,
                Num(1),
                RParen,
                Lt,
                Ident("state".into()),
                Assign,
                LBracket,
                Num(1),
                RBracket,
                Gt,
            ]
        );
    }

    #[test]
    fn neq_vs_bang() {
        assert_eq!(
            tokenize("state!=[0]").unwrap(),
            vec![
                Token::Ident("state".into()),
                Token::Neq,
                Token::LBracket,
                Token::Num(0),
                Token::RBracket,
            ]
        );
        assert_eq!(tokenize("!true").unwrap()[0], Token::Bang);
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let toks = tokenize("pt=1 # comment ; ignored\n+ pt=2").unwrap();
        assert_eq!(toks.len(), 7);
        assert_eq!(toks[3], Token::Plus);
    }

    #[test]
    fn bad_character_reports_offset() {
        let err = tokenize("pt=2 $").unwrap_err();
        assert_eq!(err.ch, '$');
        assert_eq!(err.offset, 5);
        assert!(err.to_string().contains("byte 5"));
    }

    #[test]
    fn lone_dash_is_an_error() {
        assert!(tokenize("a - b").is_err());
    }
}
