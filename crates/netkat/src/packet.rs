//! Packets and network locations.

use std::fmt;

use crate::field::{Field, Value};

/// A switch-port pair `n:m` (a *location* in the paper's Section 2).
///
/// # Examples
///
/// ```
/// use netkat::Loc;
/// let l = Loc::new(4, 1);
/// assert_eq!(l.to_string(), "4:1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc {
    /// Switch (or host) identifier.
    pub sw: u64,
    /// Port identifier.
    pub pt: u64,
}

impl Loc {
    /// Creates the location `sw:pt`.
    pub fn new(sw: u64, pt: u64) -> Loc {
        Loc { sw, pt }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.sw, self.pt)
    }
}

/// Read access to packet header fields — the interface flow-table lookup
/// actually needs.
///
/// Implemented by [`Packet`] itself and by [`LocatedView`], the
/// simulator's zero-copy lookup view (a packet with its location and tag
/// overridden in place). Lookup paths are generic over this trait, so a
/// per-hop table lookup never has to materialize a relocated copy of the
/// packet.
pub trait FieldReader {
    /// The value of `field`, or `None` if unset.
    fn read(&self, field: Field) -> Option<Value>;
}

/// A packet with its location — and, optionally, its tag — overridden
/// without being materialized: reads of [`Field::Switch`] /
/// [`Field::Port`] (and [`Field::Tag`] when overridden) come from the
/// overlay, everything else from the base packet.
#[derive(Clone, Copy, Debug)]
pub struct LocatedView<'a> {
    /// The underlying packet.
    pub base: &'a Packet,
    /// The overriding location.
    pub loc: Loc,
    /// The overriding tag, if any.
    pub tag: Option<Value>,
}

impl FieldReader for LocatedView<'_> {
    fn read(&self, field: Field) -> Option<Value> {
        match field {
            Field::Switch => Some(self.loc.sw),
            Field::Port => Some(self.loc.pt),
            Field::Tag if self.tag.is_some() => self.tag,
            _ => self.base.get(field),
        }
    }
}

/// A packet: a record of numeric header fields.
///
/// Fields that are absent behave as *wildcards have no value*: a test on an
/// absent field fails. The location fields [`Field::Switch`] and
/// [`Field::Port`] are stored like any other field, which is what makes the
/// standard NetKAT semantics (where `sw` and `pt` are ordinary fields)
/// straightforward.
///
/// Internally the record is a `Vec` of `(field, value)` pairs kept sorted
/// by field and duplicate-free: packets hold at most a dozen fields, and
/// the simulator clones them on every trace step, so one flat allocation
/// beats a node-per-field tree. The derived `Ord`/`Hash` compare the same
/// sorted pair sequence a `BTreeMap` would iterate, so observable ordering
/// (e.g. of `BTreeSet<Packet>` outputs) is unchanged.
///
/// # Examples
///
/// ```
/// use netkat::{Field, Packet};
/// let pk = Packet::new().with(Field::IpDst, 4).with(Field::Port, 2);
/// assert_eq!(pk.get(Field::IpDst), Some(4));
/// assert_eq!(pk.get(Field::IpSrc), None);
/// ```
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Packet {
    fields: Vec<(Field, Value)>,
}

impl Clone for Packet {
    fn clone(&self) -> Packet {
        Packet { fields: self.fields.clone() }
    }

    /// Reuses the destination's allocation — the packet arena's scratch
    /// buffer leans on this to stay allocation-free in steady state.
    fn clone_from(&mut self, source: &Packet) {
        self.fields.clone_from(&source.fields);
    }
}

impl Packet {
    /// Creates a packet with no fields set.
    pub fn new() -> Packet {
        Packet::default()
    }

    /// Creates a packet located at `loc` with no header fields set.
    pub fn at(loc: Loc) -> Packet {
        Packet::new().with(Field::Switch, loc.sw).with(Field::Port, loc.pt)
    }

    /// Locates `field` in the sorted record. A packet holds at most a
    /// dozen fields, so a forward scan with a sorted early exit beats
    /// binary search's unpredictable branches — and the simulator's
    /// hottest reads ([`Field::Switch`], [`Field::Port`]) sort first, so
    /// they resolve on the first compare.
    fn position(&self, field: Field) -> Result<usize, usize> {
        for (i, &(f, _)) in self.fields.iter().enumerate() {
            if f == field {
                return Ok(i);
            }
            if f > field {
                return Err(i);
            }
        }
        Err(self.fields.len())
    }

    /// Returns the value of `field`, or `None` if unset.
    pub fn get(&self, field: Field) -> Option<Value> {
        self.position(field).ok().map(|i| self.fields[i].1)
    }

    /// Sets `field` to `value` in place (the paper's `pkt[f ← n]`).
    pub fn set(&mut self, field: Field, value: Value) {
        match self.position(field) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (field, value)),
        }
    }

    /// Removes `field` from the packet, returning its previous value.
    pub fn unset(&mut self, field: Field) -> Option<Value> {
        self.position(field).ok().map(|i| self.fields.remove(i).1)
    }

    /// Builder-style [`set`](Packet::set).
    pub fn with(mut self, field: Field, value: Value) -> Packet {
        self.set(field, value);
        self
    }

    /// Returns the packet's location, if both `Switch` and `Port` are set.
    pub fn loc(&self) -> Option<Loc> {
        Some(Loc::new(self.get(Field::Switch)?, self.get(Field::Port)?))
    }

    /// Moves the packet to `loc`.
    ///
    /// The location fields sort before every header field, so on the
    /// simulator's per-hop path they are either both already in the first
    /// two slots (update in place) or both absent (one front splice).
    pub fn set_loc(&mut self, loc: Loc) {
        match (self.fields.first().map(|&(f, _)| f), self.fields.get(1).map(|&(f, _)| f)) {
            (Some(Field::Switch), Some(Field::Port)) => {
                self.fields[0].1 = loc.sw;
                self.fields[1].1 = loc.pt;
            }
            (Some(Field::Switch), _) | (Some(Field::Port), _) => {
                self.set(Field::Switch, loc.sw);
                self.set(Field::Port, loc.pt);
            }
            _ => {
                self.fields.splice(0..0, [(Field::Switch, loc.sw), (Field::Port, loc.pt)]);
            }
        }
    }

    /// Removes both location fields in one front-of-record pass, returning
    /// their values — the per-hop inverse of [`set_loc`](Packet::set_loc)
    /// (links, not tables, decide the next location).
    pub fn take_loc(&mut self) -> (Option<Value>, Option<Value>) {
        let mut sw = None;
        let mut pt = None;
        let mut strip = 0;
        for &(f, v) in self.fields.iter().take(2) {
            match f {
                Field::Switch => sw = Some(v),
                Field::Port => pt = Some(v),
                _ => break,
            }
            strip += 1;
        }
        if strip > 0 {
            self.fields.drain(..strip);
        }
        (sw, pt)
    }

    /// Iterates over the `(field, value)` pairs in field order.
    pub fn iter(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.fields.iter().copied()
    }

    /// Returns a copy with the virtual runtime fields (`Tag`, `Digest`)
    /// removed.
    ///
    /// The paper's abstract configurations never mention the runtime fields,
    /// so traces are erased with this before correctness checking.
    pub fn erase_virtual(&self) -> Packet {
        let mut p = self.clone();
        p.unset(Field::Tag);
        p.unset(Field::Digest);
        p
    }

    /// Returns a copy with the location fields removed.
    pub fn erase_location(&self) -> Packet {
        let mut p = self.clone();
        p.unset(Field::Switch);
        p.unset(Field::Port);
        p
    }

    /// Number of fields set.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if no fields are set.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

impl FieldReader for Packet {
    fn read(&self, field: Field) -> Option<Value> {
        self.get(field)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (field, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{field}={value}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Field, Value)> for Packet {
    fn from_iter<I: IntoIterator<Item = (Field, Value)>>(iter: I) -> Packet {
        let mut pk = Packet::new();
        pk.extend(iter);
        pk
    }
}

impl Extend<(Field, Value)> for Packet {
    fn extend<I: IntoIterator<Item = (Field, Value)>>(&mut self, iter: I) {
        for (f, v) in iter {
            self.set(f, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut pk = Packet::new();
        assert!(pk.is_empty());
        pk.set(Field::IpDst, 7);
        assert_eq!(pk.get(Field::IpDst), Some(7));
        pk.set(Field::IpDst, 9);
        assert_eq!(pk.get(Field::IpDst), Some(9));
        assert_eq!(pk.unset(Field::IpDst), Some(9));
        assert_eq!(pk.get(Field::IpDst), None);
    }

    #[test]
    fn location_round_trip() {
        let mut pk = Packet::new();
        assert_eq!(pk.loc(), None);
        pk.set_loc(Loc::new(3, 2));
        assert_eq!(pk.loc(), Some(Loc::new(3, 2)));
        assert_eq!(Packet::at(Loc::new(1, 9)).loc(), Some(Loc::new(1, 9)));
    }

    #[test]
    fn set_loc_covers_partial_and_present_locations() {
        // Both present: update in place.
        let mut pk = Packet::at(Loc::new(1, 1)).with(Field::IpDst, 9);
        pk.set_loc(Loc::new(5, 6));
        assert_eq!(pk.loc(), Some(Loc::new(5, 6)));
        assert_eq!(pk.len(), 3);
        // Only Switch present.
        let mut pk = Packet::new().with(Field::Switch, 1).with(Field::IpDst, 9);
        pk.set_loc(Loc::new(5, 6));
        assert_eq!(pk.loc(), Some(Loc::new(5, 6)));
        // Only Port present.
        let mut pk = Packet::new().with(Field::Port, 1).with(Field::IpDst, 9);
        pk.set_loc(Loc::new(5, 6));
        assert_eq!(pk.loc(), Some(Loc::new(5, 6)));
        assert_eq!(pk.get(Field::IpDst), Some(9));
    }

    #[test]
    fn take_loc_strips_and_returns_location() {
        let mut pk = Packet::at(Loc::new(4, 7)).with(Field::IpDst, 2);
        assert_eq!(pk.take_loc(), (Some(4), Some(7)));
        assert_eq!(pk.loc(), None);
        assert_eq!(pk.get(Field::IpDst), Some(2));
        // Partial: only Port.
        let mut pk = Packet::new().with(Field::Port, 3).with(Field::Vlan, 1);
        assert_eq!(pk.take_loc(), (None, Some(3)));
        assert_eq!(pk.get(Field::Vlan), Some(1));
        // Absent: no-op.
        let mut pk = Packet::new().with(Field::Vlan, 1);
        assert_eq!(pk.take_loc(), (None, None));
        assert_eq!(pk.len(), 1);
    }

    #[test]
    fn erase_virtual_removes_only_runtime_fields() {
        let pk = Packet::new().with(Field::IpDst, 1).with(Field::Tag, 5).with(Field::Digest, 0b101);
        let erased = pk.erase_virtual();
        assert_eq!(erased.get(Field::IpDst), Some(1));
        assert_eq!(erased.get(Field::Tag), None);
        assert_eq!(erased.get(Field::Digest), None);
        // original untouched
        assert_eq!(pk.get(Field::Tag), Some(5));
    }

    #[test]
    fn display_is_sorted_and_nonempty() {
        let pk = Packet::new().with(Field::IpDst, 4).with(Field::Port, 2);
        assert_eq!(pk.to_string(), "{pt=2; ip_dst=4}");
        assert_eq!(Packet::new().to_string(), "{}");
    }

    #[test]
    fn from_iterator_collects() {
        let pk: Packet = [(Field::Port, 1), (Field::IpSrc, 10)].into_iter().collect();
        assert_eq!(pk.len(), 2);
        assert_eq!(pk.get(Field::IpSrc), Some(10));
    }
}
