//! Denotational semantics of NetKAT policies.
//!
//! A policy denotes a function from a packet to a finite set of packets.
//! This module is the *reference semantics*: the FDD compiler and the flow
//! tables it emits are tested against it (see the property tests in
//! [`crate::local`]).

use std::collections::BTreeSet;

use crate::error::NetkatError;
use crate::field::Field;
use crate::packet::Packet;
use crate::policy::Policy;

/// Maximum number of Kleene-star iterations before giving up.
///
/// Every iteration either adds a packet to the result set or reaches a
/// fixpoint; the bound only triggers for adversarial policies that keep
/// generating fresh packets (which finite field/value spaces prevent in
/// practice).
const STAR_FUEL: usize = 10_000;

/// Evaluates `pol` on `pk`, returning the set of output packets.
///
/// # Errors
///
/// Returns [`NetkatError::StarDiverged`] if a `*` fails to reach a fixpoint
/// within an internal iteration bound.
///
/// # Examples
///
/// ```
/// use netkat::{eval, Field, Packet, Policy, Pred};
/// let p = Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 1));
/// let pk = Packet::new().with(Field::Port, 2);
/// let out = eval(&p, &pk)?;
/// assert_eq!(out.len(), 1);
/// assert_eq!(out.iter().next().unwrap().get(Field::Port), Some(1));
/// # Ok::<(), netkat::NetkatError>(())
/// ```
pub fn eval(pol: &Policy, pk: &Packet) -> Result<BTreeSet<Packet>, NetkatError> {
    match pol {
        Policy::Filter(pred) => {
            let mut out = BTreeSet::new();
            if pred.eval(pk) {
                out.insert(pk.clone());
            }
            Ok(out)
        }
        Policy::Modify(f, v) => {
            let mut p = pk.clone();
            p.set(*f, *v);
            Ok(BTreeSet::from([p]))
        }
        Policy::Union(a, b) => {
            let mut out = eval(a, pk)?;
            out.extend(eval(b, pk)?);
            Ok(out)
        }
        Policy::Seq(a, b) => {
            let mid = eval(a, pk)?;
            let mut out = BTreeSet::new();
            for m in &mid {
                out.extend(eval(b, m)?);
            }
            Ok(out)
        }
        Policy::Star(a) => {
            // Least fixpoint of X = {pk} ∪ a(X).
            let mut acc = BTreeSet::from([pk.clone()]);
            let mut frontier = acc.clone();
            for _ in 0..STAR_FUEL {
                let mut next = BTreeSet::new();
                for m in &frontier {
                    for o in eval(a, m)? {
                        if !acc.contains(&o) {
                            next.insert(o);
                        }
                    }
                }
                if next.is_empty() {
                    return Ok(acc);
                }
                acc.extend(next.iter().cloned());
                frontier = next;
            }
            Err(NetkatError::StarDiverged)
        }
        Policy::Link(src, dst) => {
            let mut out = BTreeSet::new();
            if pk.get(Field::Switch) == Some(src.sw) && pk.get(Field::Port) == Some(src.pt) {
                let mut p = pk.clone();
                p.set_loc(*dst);
                out.insert(p);
            }
            Ok(out)
        }
    }
}

/// Evaluates `pol` on every packet in `pks`, unioning the results.
pub fn eval_set(pol: &Policy, pks: &BTreeSet<Packet>) -> Result<BTreeSet<Packet>, NetkatError> {
    let mut out = BTreeSet::new();
    for pk in pks {
        out.extend(eval(pol, pk)?);
    }
    Ok(out)
}

/// Returns `true` if `a` and `b` agree on every packet in `pks`.
///
/// This is *testing* equivalence on a chosen packet universe, not a decision
/// procedure; it is used to validate compiler passes on representative
/// inputs.
pub fn equivalent_on(a: &Policy, b: &Policy, pks: &[Packet]) -> Result<bool, NetkatError> {
    for pk in pks {
        if eval(a, pk)? != eval(b, pk)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Loc;
    use crate::pred::Pred;

    fn pk(port: u64) -> Packet {
        Packet::new().with(Field::Port, port)
    }

    #[test]
    fn filter_passes_or_drops() {
        let p = Policy::filter(Pred::port(2));
        assert_eq!(eval(&p, &pk(2)).unwrap().len(), 1);
        assert!(eval(&p, &pk(1)).unwrap().is_empty());
    }

    #[test]
    fn modify_rewrites() {
        let p = Policy::modify(Field::Port, 9);
        let out = eval(&p, &pk(2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(Field::Port), Some(9));
    }

    #[test]
    fn union_multicasts() {
        let p = Policy::modify(Field::Port, 1).union(Policy::modify(Field::Port, 2));
        let out = eval(&p, &pk(0)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn seq_composes() {
        let p = Policy::modify(Field::Port, 1).seq(Policy::filter(Pred::port(1)));
        assert_eq!(eval(&p, &pk(5)).unwrap().len(), 1);
        let q = Policy::modify(Field::Port, 1).seq(Policy::filter(Pred::port(2)));
        assert!(eval(&q, &pk(5)).unwrap().is_empty());
    }

    #[test]
    fn star_unrolls_to_fixpoint() {
        // (pt=1; pt<-2 + pt=2; pt<-3)* from pt=1 reaches {1,2,3}
        let step = Policy::filter(Pred::port(1))
            .seq(Policy::modify(Field::Port, 2))
            .union(Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 3)));
        let out = eval(&step.star(), &pk(1)).unwrap();
        let ports: BTreeSet<_> = out.iter().map(|p| p.get(Field::Port).unwrap()).collect();
        assert_eq!(ports, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn star_of_identity_terminates() {
        let p = Policy::Star(Box::new(Policy::id()));
        assert_eq!(eval(&p, &pk(1)).unwrap().len(), 1);
    }

    #[test]
    fn link_moves_located_packets() {
        let l = Policy::link(Loc::new(1, 1), Loc::new(4, 1));
        let at_src = Packet::at(Loc::new(1, 1));
        let out = eval(&l, &at_src).unwrap();
        assert_eq!(out.iter().next().unwrap().loc(), Some(Loc::new(4, 1)));
        let elsewhere = Packet::at(Loc::new(2, 1));
        assert!(eval(&l, &elsewhere).unwrap().is_empty());
    }

    #[test]
    fn kat_equations_hold_semantically() {
        let a = Policy::filter(Pred::port(1));
        let b = Policy::modify(Field::Vlan, 7);
        let c = Policy::modify(Field::Port, 3);
        let pks = [pk(1), pk(2), Packet::new()];
        // p + q = q + p
        assert!(
            equivalent_on(&a.clone().union(b.clone()), &b.clone().union(a.clone()), &pks).unwrap()
        );
        // (p + q); r = p;r + q;r
        let lhs = a.clone().union(b.clone()).seq(c.clone());
        let rhs = a.clone().seq(c.clone()).union(b.clone().seq(c.clone()));
        assert!(equivalent_on(&lhs, &rhs, &pks).unwrap());
        // p* = id + p;p*
        let star = b.clone().star();
        let unrolled = Policy::id().union(b.clone().seq(b.clone().star()));
        assert!(equivalent_on(&star, &unrolled, &pks).unwrap());
    }
}
