//! Packet header fields and their values.
//!
//! NetKAT treats a packet as a record of named numeric fields. Two fields are
//! special: [`Field::Switch`] and [`Field::Port`] locate the packet in the
//! network and are the fields rewritten by link traversal. The remaining
//! fields model ordinary protocol headers, plus two *virtual* fields used by
//! the event-driven runtime of the paper's Section 4: [`Field::Tag`] (the
//! configuration ID stamped on ingress) and [`Field::Digest`] (the bitset of
//! events the packet has heard about).

use std::fmt;

/// A numeric field value.
///
/// All NetKAT fields are numeric; host addresses, ports, protocol numbers,
/// tags and digests are all encoded as `u64`.
pub type Value = u64;

/// A packet header field.
///
/// The `Ord` instance fixes the global test order used by the FDD compiler:
/// tests on smaller fields appear closer to the root of a diagram.
///
/// # Examples
///
/// ```
/// use netkat::Field;
/// assert!(Field::Switch < Field::Port);
/// assert_eq!(Field::Custom(3).to_string(), "custom3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Field {
    /// The switch at which the packet currently resides (`sw` in the paper).
    Switch,
    /// The port at which the packet currently resides (`pt` in the paper).
    Port,
    /// Ethernet source address.
    EthSrc,
    /// Ethernet destination address.
    EthDst,
    /// Ethernet type.
    EthType,
    /// VLAN identifier.
    Vlan,
    /// IP protocol number.
    IpProto,
    /// IP source address (`ip_src` in the paper's examples).
    IpSrc,
    /// IP destination address (`ip_dst` in the paper's examples).
    IpDst,
    /// TCP/UDP source port.
    TcpSrc,
    /// TCP/UDP destination port.
    TcpDst,
    /// Configuration tag: the ID of the event-set whose configuration
    /// processes this packet (assigned at ingress, Section 4.1).
    Tag,
    /// Event digest: a bitset of the events this packet has heard about
    /// (Section 4.2). Only manipulated by the runtime, never by programs.
    Digest,
    /// An additional user-defined field, for programs that need headers not
    /// listed above.
    Custom(u8),
}

impl Field {
    /// All non-custom fields, in test order.
    pub const ALL: [Field; 13] = [
        Field::Switch,
        Field::Port,
        Field::EthSrc,
        Field::EthDst,
        Field::EthType,
        Field::Vlan,
        Field::IpProto,
        Field::IpSrc,
        Field::IpDst,
        Field::TcpSrc,
        Field::TcpDst,
        Field::Tag,
        Field::Digest,
    ];

    /// A dense numeric code, unique per field, used by fingerprint hashing
    /// (the packet arena): the index in [`Field::ALL`] for the named
    /// fields, and `13 + n` for `Custom(n)`.
    pub(crate) fn code(self) -> u64 {
        match self {
            Field::Switch => 0,
            Field::Port => 1,
            Field::EthSrc => 2,
            Field::EthDst => 3,
            Field::EthType => 4,
            Field::Vlan => 5,
            Field::IpProto => 6,
            Field::IpSrc => 7,
            Field::IpDst => 8,
            Field::TcpSrc => 9,
            Field::TcpDst => 10,
            Field::Tag => 11,
            Field::Digest => 12,
            Field::Custom(n) => 13 + n as u64,
        }
    }

    /// Returns `true` for the location fields `Switch` and `Port`.
    ///
    /// Location fields are handled specially by the global compiler: they are
    /// constrained by link traversal rather than matched like headers.
    pub fn is_location(self) -> bool {
        matches!(self, Field::Switch | Field::Port)
    }

    /// Returns `true` for the virtual runtime fields `Tag` and `Digest`.
    ///
    /// Virtual fields are stripped before a trace is checked against an
    /// abstract configuration, since configurations in the paper's semantics
    /// do not mention them.
    pub fn is_virtual(self) -> bool {
        matches!(self, Field::Tag | Field::Digest)
    }

    /// Parses a field from its concrete-syntax name.
    ///
    /// Returns `None` for unknown names. `customN` parses to
    /// [`Field::Custom`]`(N)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use netkat::Field;
    /// assert_eq!(Field::parse("ip_dst"), Some(Field::IpDst));
    /// assert_eq!(Field::parse("custom7"), Some(Field::Custom(7)));
    /// assert_eq!(Field::parse("nonsense"), None);
    /// ```
    pub fn parse(name: &str) -> Option<Field> {
        let f = match name {
            "sw" | "switch" => Field::Switch,
            "pt" | "port" => Field::Port,
            "eth_src" => Field::EthSrc,
            "eth_dst" => Field::EthDst,
            "eth_type" => Field::EthType,
            "vlan" => Field::Vlan,
            "ip_proto" => Field::IpProto,
            "ip_src" => Field::IpSrc,
            "ip_dst" => Field::IpDst,
            "tcp_src" => Field::TcpSrc,
            "tcp_dst" => Field::TcpDst,
            "tag" => Field::Tag,
            "digest" => Field::Digest,
            _ => {
                let n = name.strip_prefix("custom")?.parse::<u8>().ok()?;
                return Some(Field::Custom(n));
            }
        };
        Some(f)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Switch => write!(f, "sw"),
            Field::Port => write!(f, "pt"),
            Field::EthSrc => write!(f, "eth_src"),
            Field::EthDst => write!(f, "eth_dst"),
            Field::EthType => write!(f, "eth_type"),
            Field::Vlan => write!(f, "vlan"),
            Field::IpProto => write!(f, "ip_proto"),
            Field::IpSrc => write!(f, "ip_src"),
            Field::IpDst => write!(f, "ip_dst"),
            Field::TcpSrc => write!(f, "tcp_src"),
            Field::TcpDst => write!(f, "tcp_dst"),
            Field::Tag => write!(f, "tag"),
            Field::Digest => write!(f, "digest"),
            Field::Custom(n) => write!(f, "custom{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for f in Field::ALL {
            assert_eq!(Field::parse(&f.to_string()), Some(f), "field {f:?}");
        }
        for n in [0u8, 1, 42, 255] {
            let f = Field::Custom(n);
            assert_eq!(Field::parse(&f.to_string()), Some(f));
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(Field::parse("switch"), Some(Field::Switch));
        assert_eq!(Field::parse("port"), Some(Field::Port));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Field::parse(""), None);
        assert_eq!(Field::parse("custom"), None);
        assert_eq!(Field::parse("custom999"), None);
        assert_eq!(Field::parse("ipdst"), None);
    }

    #[test]
    fn location_and_virtual_classification() {
        assert!(Field::Switch.is_location());
        assert!(Field::Port.is_location());
        assert!(!Field::IpDst.is_location());
        assert!(Field::Tag.is_virtual());
        assert!(Field::Digest.is_virtual());
        assert!(!Field::IpDst.is_virtual());
    }

    #[test]
    fn test_order_puts_location_first() {
        let mut all = Field::ALL.to_vec();
        all.sort();
        assert_eq!(all[0], Field::Switch);
        assert_eq!(all[1], Field::Port);
    }
}
