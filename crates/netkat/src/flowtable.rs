//! Prioritized match/action flow tables.
//!
//! A flow table is the compilation target: an ordered list of rules, each
//! with an exact-match pattern over a subset of fields and a set of actions.
//! The first matching rule wins, exactly like an OpenFlow table with
//! priorities.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::action::ActionSet;
use crate::fdd::{FddBuilder, NodeId};
use crate::field::{Field, Value};
use crate::packet::{FieldReader, Packet};

/// An exact-match pattern: a conjunction of `field = value` constraints.
///
/// Fields not mentioned are wildcards.
///
/// # Examples
///
/// ```
/// use netkat::{Field, Match, Packet};
/// let m = Match::new().with(Field::Port, 2);
/// assert!(m.matches(&Packet::new().with(Field::Port, 2)));
/// assert!(!m.matches(&Packet::new().with(Field::Port, 1)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Match {
    tests: BTreeMap<Field, Value>,
}

impl Match {
    /// The all-wildcard match.
    pub fn new() -> Match {
        Match::default()
    }

    /// Builder-style constraint addition.
    pub fn with(mut self, field: Field, value: Value) -> Match {
        self.tests.insert(field, value);
        self
    }

    /// Adds a constraint in place. Returns `false` (leaving the match
    /// unchanged) if it contradicts an existing constraint.
    pub fn add(&mut self, field: Field, value: Value) -> bool {
        match self.tests.get(&field) {
            Some(&v) if v != value => false,
            _ => {
                self.tests.insert(field, value);
                true
            }
        }
    }

    /// Returns the constraint on `field`, if any.
    pub fn get(&self, field: Field) -> Option<Value> {
        self.tests.get(&field).copied()
    }

    /// Returns `true` if the packet satisfies every constraint.
    pub fn matches(&self, pk: &Packet) -> bool {
        self.matches_on(pk)
    }

    /// [`matches`](Match::matches) against any field source — e.g. the
    /// simulator's zero-copy [`LocatedView`](crate::LocatedView).
    pub fn matches_on<R: FieldReader>(&self, pk: &R) -> bool {
        self.tests.iter().all(|(&f, &v)| pk.read(f) == Some(v))
    }

    /// Number of constrained fields.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Returns `true` if this is the all-wildcard match.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Iterates over the constraints in field order.
    pub fn iter(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.tests.iter().map(|(&f, &v)| (f, v))
    }
}

impl FromIterator<(Field, Value)> for Match {
    fn from_iter<I: IntoIterator<Item = (Field, Value)>>(iter: I) -> Match {
        Match { tests: iter.into_iter().collect() }
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "*");
        }
        for (i, (field, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{field}={value}")?;
        }
        Ok(())
    }
}

/// One prioritized rule: a match pattern and the actions applied on a hit.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rule {
    /// The match pattern.
    pub pattern: Match,
    /// The actions (empty set = drop).
    pub actions: ActionSet,
}

impl Rule {
    /// Creates a rule.
    pub fn new(pattern: Match, actions: ActionSet) -> Rule {
        Rule { pattern, actions }
    }

    /// A catch-all drop rule.
    pub fn drop_all() -> Rule {
        Rule::new(Match::new(), ActionSet::drop())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.pattern, self.actions)
    }
}

/// An ordered flow table; the first matching rule wins.
///
/// # Examples
///
/// ```
/// use netkat::{ActionSet, Field, FlowTable, Match, Packet, Rule};
/// let table = FlowTable::from_rules([
///     Rule::new(Match::new().with(Field::Port, 2), ActionSet::pass()),
///     Rule::drop_all(),
/// ]);
/// assert_eq!(table.apply(&Packet::new().with(Field::Port, 2)).len(), 1);
/// assert!(table.apply(&Packet::new().with(Field::Port, 9)).is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FlowTable {
    rules: Vec<Rule>,
}

impl FlowTable {
    /// The empty table (drops everything: no rule matches).
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Builds a table from rules in priority order (highest first).
    pub fn from_rules<I: IntoIterator<Item = Rule>>(rules: I) -> FlowTable {
        FlowTable { rules: rules.into_iter().collect() }
    }

    /// Extracts a table from an FDD.
    ///
    /// Each root-to-leaf path yields one rule carrying the path's *positive*
    /// tests; priority order makes the negative tests implicit (a packet
    /// reaching rule `i` has already failed the higher-priority matches).
    /// This is correct because every FDD subdiagram is total, so the block of
    /// rules emitted for a true branch fully covers the matched subspace.
    pub fn from_fdd(builder: &FddBuilder, d: NodeId) -> FlowTable {
        let rules = builder
            .paths(d)
            .into_iter()
            .map(|p| Rule::new(p.positive.into_iter().collect(), p.actions))
            .collect();
        FlowTable { rules }
    }

    /// Returns the first matching rule for `pk`.
    pub fn lookup(&self, pk: &Packet) -> Option<&Rule> {
        self.lookup_on(pk)
    }

    /// [`lookup`](FlowTable::lookup) against any field source — e.g. the
    /// simulator's zero-copy [`LocatedView`](crate::LocatedView).
    pub fn lookup_on<R: FieldReader>(&self, pk: &R) -> Option<&Rule> {
        self.rules.iter().find(|r| r.pattern.matches_on(pk))
    }

    /// Returns the priority index of the first matching rule for `pk`.
    ///
    /// This linear scan is the *reference* lookup semantics; the indexed
    /// [`CompiledTable`](crate::CompiledTable) must agree with it on every
    /// packet (enforced by differential property tests).
    pub fn lookup_index(&self, pk: &Packet) -> Option<usize> {
        self.rules.iter().position(|r| r.pattern.matches(pk))
    }

    /// The rule at priority index `i` (as returned by
    /// [`lookup_index`](FlowTable::lookup_index)).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn rule(&self, i: usize) -> &Rule {
        &self.rules[i]
    }

    /// Applies the table: the output packets of the first matching rule, or
    /// the empty set if no rule matches.
    pub fn apply(&self, pk: &Packet) -> BTreeSet<Packet> {
        match self.lookup(pk) {
            Some(rule) => rule.actions.apply(pk),
            None => BTreeSet::new(),
        }
    }

    /// Applies the table, appending the outputs to `out` in the same order
    /// as [`apply`](FlowTable::apply)'s set iteration — the allocation-lean
    /// form simulator data planes use.
    pub fn apply_into(&self, pk: &Packet, out: &mut Vec<Packet>) {
        if let Some(rule) = self.lookup(pk) {
            rule.actions.apply_into(pk, out);
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.iter()
    }

    /// Appends a rule at the lowest priority.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Removes trailing drop rules and rules identical to their predecessor;
    /// returns the number removed. (An absent rule already drops, so
    /// trailing drops are pure overhead.)
    pub fn compact(&mut self) -> usize {
        let before = self.rules.len();
        while self.rules.last().is_some_and(|r| r.actions.is_drop() && r.pattern.is_empty()) {
            self.rules.pop();
        }
        self.rules.dedup();
        before - self.rules.len()
    }

    /// The minimal contiguous splice turning this table into `new`.
    ///
    /// Matches the longest common prefix and suffix of the two rule lists;
    /// everything between is the edit. A single splice is exactly the shape
    /// an OpenFlow mod batch takes (delete `removed` rules at `start`, add
    /// `inserted` in their place), and it is what
    /// [`CompiledTable::patch`](crate::CompiledTable::patch) applies
    /// incrementally.
    ///
    /// # Examples
    ///
    /// ```
    /// use netkat::{ActionSet, Field, FlowTable, Match, Rule};
    /// let old = FlowTable::from_rules((0..4).map(|h| {
    ///     Rule::new(Match::new().with(Field::IpDst, h), ActionSet::pass())
    /// }));
    /// let mut new = old.clone();
    /// new.push(Rule::drop_all());
    /// let delta = old.diff(&new);
    /// assert_eq!((delta.start, delta.removed, delta.inserted.len()), (4, 0, 1));
    /// let mut patched = old.clone();
    /// patched.splice(&delta);
    /// assert_eq!(patched, new);
    /// ```
    pub fn diff(&self, new: &FlowTable) -> TableDelta {
        let old = &self.rules;
        let mut prefix = 0;
        while prefix < old.len() && prefix < new.rules.len() && old[prefix] == new.rules[prefix] {
            prefix += 1;
        }
        let mut suffix = 0;
        while suffix < old.len() - prefix
            && suffix < new.rules.len() - prefix
            && old[old.len() - 1 - suffix] == new.rules[new.rules.len() - 1 - suffix]
        {
            suffix += 1;
        }
        TableDelta {
            start: prefix,
            removed: old.len() - prefix - suffix,
            inserted: new.rules[prefix..new.rules.len() - suffix].to_vec(),
        }
    }

    /// Applies a delta produced by [`diff`](FlowTable::diff) in place.
    ///
    /// # Panics
    ///
    /// Panics if the delta's replaced range does not fit this table.
    pub fn splice(&mut self, delta: &TableDelta) {
        self.rules.splice(delta.start..delta.start + delta.removed, delta.inserted.iter().cloned());
    }
}

/// A contiguous rule-list edit: replace `removed` rules at priority index
/// `start` with `inserted` — the OpenFlow-style mod batch one config update
/// issues to one switch.
///
/// Produced by [`FlowTable::diff`]; consumed by [`FlowTable::splice`] and
/// [`CompiledTable::patch`](crate::CompiledTable::patch).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TableDelta {
    /// Priority index where the edit begins.
    pub start: usize,
    /// Number of old rules deleted at `start`.
    pub removed: usize,
    /// Rules installed in their place.
    pub inserted: Vec<Rule>,
}

impl TableDelta {
    /// Returns `true` if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed == 0 && self.inserted.is_empty()
    }

    /// Total rule mods (deletes + adds) the delta issues.
    pub fn mods(&self) -> usize {
        self.removed + self.inserted.len()
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            writeln!(f, "[{i:3}] {r}")?;
        }
        Ok(())
    }
}

impl IntoIterator for FlowTable {
    type Item = Rule;
    type IntoIter = std::vec::IntoIter<Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::pred::Pred;

    #[test]
    fn match_add_detects_conflicts() {
        let mut m = Match::new();
        assert!(m.add(Field::Port, 1));
        assert!(m.add(Field::Port, 1));
        assert!(!m.add(Field::Port, 2));
        assert_eq!(m.get(Field::Port), Some(1));
    }

    #[test]
    fn first_match_wins() {
        let t = FlowTable::from_rules([
            Rule::new(
                Match::new().with(Field::Port, 1),
                ActionSet::single(Action::assign(Field::Vlan, 10)),
            ),
            Rule::new(Match::new(), ActionSet::single(Action::assign(Field::Vlan, 20))),
        ]);
        let a = t.apply(&Packet::new().with(Field::Port, 1));
        assert_eq!(a.iter().next().unwrap().get(Field::Vlan), Some(10));
        let b = t.apply(&Packet::new().with(Field::Port, 9));
        assert_eq!(b.iter().next().unwrap().get(Field::Vlan), Some(20));
    }

    #[test]
    fn from_fdd_agrees_with_fdd_eval() {
        let mut b = FddBuilder::new();
        let p = Pred::port(1).or(Pred::test(Field::Vlan, 2).not());
        let d = b.from_pred(&p);
        let t = FlowTable::from_fdd(&b, d);
        for pk in [
            Packet::new().with(Field::Port, 1).with(Field::Vlan, 2),
            Packet::new().with(Field::Port, 0).with(Field::Vlan, 2),
            Packet::new().with(Field::Port, 0).with(Field::Vlan, 0),
            Packet::new(),
        ] {
            assert_eq!(t.apply(&pk), b.eval(d, &pk), "packet {pk}");
        }
    }

    #[test]
    fn compact_removes_trailing_wildcard_drops() {
        let mut t = FlowTable::from_rules([
            Rule::new(Match::new().with(Field::Port, 1), ActionSet::pass()),
            Rule::drop_all(),
        ]);
        assert_eq!(t.compact(), 1);
        assert_eq!(t.len(), 1);
        // Semantics unchanged: unmatched packets still drop.
        assert!(t.apply(&Packet::new().with(Field::Port, 2)).is_empty());
    }

    #[test]
    fn empty_table_drops() {
        assert!(FlowTable::new().apply(&Packet::new()).is_empty());
        assert_eq!(FlowTable::new().lookup_index(&Packet::new()), None);
    }

    #[test]
    fn all_wildcard_first_rule_shadows_later_rules() {
        let t = FlowTable::from_rules([
            Rule::new(Match::new(), ActionSet::single(Action::assign(Field::Vlan, 1))),
            Rule::new(
                Match::new().with(Field::Port, 2),
                ActionSet::single(Action::assign(Field::Vlan, 2)),
            ),
        ]);
        // Even a packet the second rule would match hits the wildcard.
        let pk = Packet::new().with(Field::Port, 2);
        assert_eq!(t.lookup_index(&pk), Some(0));
        assert_eq!(t.apply(&pk).iter().next().unwrap().get(Field::Vlan), Some(1));
    }

    #[test]
    fn duplicate_patterns_first_wins() {
        let t = FlowTable::from_rules([
            Rule::new(
                Match::new().with(Field::Port, 1),
                ActionSet::single(Action::assign(Field::Vlan, 10)),
            ),
            Rule::new(
                Match::new().with(Field::Port, 1),
                ActionSet::single(Action::assign(Field::Vlan, 20)),
            ),
        ]);
        let pk = Packet::new().with(Field::Port, 1);
        assert_eq!(t.lookup_index(&pk), Some(0));
        assert_eq!(t.apply(&pk).iter().next().unwrap().get(Field::Vlan), Some(10));
    }

    #[test]
    fn multicast_rule_emits_every_output_packet() {
        let t = FlowTable::from_rules([Rule::new(
            Match::new().with(Field::Port, 1),
            ActionSet::from_iter([
                Action::assign(Field::Port, 2),
                Action::assign(Field::Port, 3).set(Field::Vlan, 7),
            ]),
        )]);
        let out = t.apply(&Packet::new().with(Field::Port, 1));
        assert_eq!(out.len(), 2);
        let vlans: Vec<Option<Value>> = out.iter().map(|p| p.get(Field::Vlan)).collect();
        assert!(vlans.contains(&Some(7)) && vlans.contains(&None));
    }

    #[test]
    fn match_add_contradiction_leaves_match_unchanged() {
        let mut m = Match::new().with(Field::IpDst, 4).with(Field::Port, 2);
        assert!(!m.add(Field::IpDst, 9));
        assert_eq!(m.get(Field::IpDst), Some(4));
        assert_eq!(m.len(), 2);
        assert!(m.matches(&Packet::new().with(Field::IpDst, 4).with(Field::Port, 2)));
    }

    #[test]
    fn display_contains_rules() {
        let t = FlowTable::from_rules([Rule::drop_all()]);
        assert!(t.to_string().contains("* -> drop"));
    }

    fn exact(v: Value) -> Rule {
        Rule::new(Match::new().with(Field::IpDst, v), ActionSet::pass())
    }

    #[test]
    fn diff_of_identical_tables_is_empty() {
        let t = FlowTable::from_rules((0..5).map(exact));
        let delta = t.diff(&t.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.mods(), 0);
        let mut patched = t.clone();
        patched.splice(&delta);
        assert_eq!(patched, t);
    }

    #[test]
    fn diff_finds_the_minimal_middle_splice() {
        let old = FlowTable::from_rules([exact(0), exact(1), exact(2), exact(3)]);
        let new = FlowTable::from_rules([exact(0), exact(7), exact(8), exact(2), exact(3)]);
        let delta = old.diff(&new);
        assert_eq!(delta.start, 1);
        assert_eq!(delta.removed, 1);
        assert_eq!(delta.inserted, vec![exact(7), exact(8)]);
        assert_eq!(delta.mods(), 3);
        let mut patched = old;
        patched.splice(&delta);
        assert_eq!(patched, new);
    }

    #[test]
    fn diff_handles_empty_tables_on_either_side() {
        let full = FlowTable::from_rules((0..3).map(exact));
        let install = FlowTable::new().diff(&full);
        assert_eq!((install.start, install.removed, install.inserted.len()), (0, 0, 3));
        let uninstall = full.diff(&FlowTable::new());
        assert_eq!((uninstall.start, uninstall.removed, uninstall.inserted.len()), (0, 3, 0));
        let mut t = full.clone();
        t.splice(&uninstall);
        assert!(t.is_empty());
        let mut t = FlowTable::new();
        t.splice(&install);
        assert_eq!(t, full);
    }

    #[test]
    fn diff_with_repeated_rules_still_round_trips() {
        // Common prefix/suffix overlap candidates: all rules identical.
        let old = FlowTable::from_rules((0..4).map(|_| exact(1)));
        let new = FlowTable::from_rules((0..6).map(|_| exact(1)));
        let delta = old.diff(&new);
        assert_eq!(delta.mods(), 2);
        let mut patched = old;
        patched.splice(&delta);
        assert_eq!(patched, new);
    }
}
