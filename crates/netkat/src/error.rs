//! Error types for the NetKAT crate.

use std::error::Error;
use std::fmt;

use crate::field::Field;
use crate::packet::Loc;

/// Errors produced by NetKAT evaluation and compilation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetkatError {
    /// A Kleene star failed to reach a fixpoint within the iteration bound.
    StarDiverged,
    /// The global compiler encountered a `*` whose body contains links.
    ///
    /// Path-clause compilation (used by all the paper's programs) supports
    /// iteration only over link-free policies; loopy forwarding must be
    /// unrolled by the caller.
    StarOverLinks,
    /// A link's source is inconsistent with the symbolic location of the
    /// packet at that point in the program (e.g. two consecutive links that
    /// do not connect).
    InconsistentLink {
        /// The link whose source did not match.
        link: (Loc, Loc),
        /// The switch the packet was known to be at, if any.
        at_switch: Option<u64>,
    },
    /// A test on `Field::Switch` inside the global compiler contradicted the
    /// packet's known switch.
    ContradictorySwitch {
        /// The switch demanded by the test.
        wanted: u64,
        /// The switch the packet was known to be at.
        known: u64,
    },
    /// The compiler needed the set of possible values for `field` but none
    /// was provided (required to compile `≠`-style negations exactly).
    UnknownFieldDomain(Field),
}

impl fmt::Display for NetkatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetkatError::StarDiverged => write!(f, "kleene star failed to reach a fixpoint"),
            NetkatError::StarOverLinks => {
                write!(f, "global compilation of a star whose body contains links is unsupported")
            }
            NetkatError::InconsistentLink { link, at_switch } => match at_switch {
                Some(sw) => write!(
                    f,
                    "link ({} -> {}) cannot be traversed: packet is at switch {sw}",
                    link.0, link.1
                ),
                None => write!(
                    f,
                    "link ({} -> {}) source port contradicts packet state",
                    link.0, link.1
                ),
            },
            NetkatError::ContradictorySwitch { wanted, known } => {
                write!(f, "test sw={wanted} contradicts known switch {known}")
            }
            NetkatError::UnknownFieldDomain(field) => {
                write!(f, "no value domain known for field {field}")
            }
        }
    }
}

impl Error for NetkatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetkatError::StarDiverged;
        assert!(e.to_string().starts_with("kleene"));
        let e = NetkatError::InconsistentLink {
            link: (Loc::new(1, 1), Loc::new(4, 1)),
            at_switch: Some(2),
        };
        assert!(e.to_string().contains("switch 2"));
        let e = NetkatError::ContradictorySwitch { wanted: 3, known: 1 };
        assert!(e.to_string().contains("sw=3"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(NetkatError::StarDiverged);
    }
}
