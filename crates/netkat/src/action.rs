//! Actions: the leaves of forwarding decision diagrams.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::field::{Field, Value};
use crate::packet::Packet;

/// A parallel field assignment (one output of a policy).
///
/// An action maps each field it mentions to the value written into it; the
/// identity action mentions no fields. Sequencing two actions composes them
/// with the later action overriding.
///
/// # Examples
///
/// ```
/// use netkat::{Action, Field, Packet};
/// let a = Action::id().set(Field::Port, 1).set(Field::Vlan, 7);
/// let pk = Packet::new().with(Field::Port, 2);
/// let out = a.apply(&pk);
/// assert_eq!(out.get(Field::Port), Some(1));
/// assert_eq!(out.get(Field::Vlan), Some(7));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Action {
    writes: BTreeMap<Field, Value>,
}

impl Action {
    /// The identity action (no writes).
    pub fn id() -> Action {
        Action::default()
    }

    /// A single assignment `field ← value`.
    pub fn assign(field: Field, value: Value) -> Action {
        Action::id().set(field, value)
    }

    /// Builder-style addition of a write (later writes override).
    pub fn set(mut self, field: Field, value: Value) -> Action {
        self.writes.insert(field, value);
        self
    }

    /// Returns the value this action writes into `field`, if any.
    pub fn get(&self, field: Field) -> Option<Value> {
        self.writes.get(&field).copied()
    }

    /// Returns `true` if this is the identity action.
    pub fn is_id(&self) -> bool {
        self.writes.is_empty()
    }

    /// Sequential composition: first `self`, then `later` (which overrides).
    pub fn then(&self, later: &Action) -> Action {
        let mut writes = self.writes.clone();
        for (&f, &v) in &later.writes {
            writes.insert(f, v);
        }
        Action { writes }
    }

    /// Applies the action to a packet, returning the rewritten packet.
    pub fn apply(&self, pk: &Packet) -> Packet {
        let mut out = pk.clone();
        for (&f, &v) in &self.writes {
            out.set(f, v);
        }
        out
    }

    /// Iterates over the writes in field order.
    pub fn writes(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.writes.iter().map(|(&f, &v)| (f, v))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_id() {
            return write!(f, "id");
        }
        for (i, (field, value)) in self.writes().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{field}<-{value}")?;
        }
        Ok(())
    }
}

/// A set of actions: the full result of a policy on a packet.
///
/// The empty set is *drop*; a set with more than one action is *multicast*.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ActionSet {
    actions: BTreeSet<Action>,
}

impl ActionSet {
    /// The drop action set (no outputs).
    pub fn drop() -> ActionSet {
        ActionSet::default()
    }

    /// The pass action set (a single identity action).
    pub fn pass() -> ActionSet {
        ActionSet::from_iter([Action::id()])
    }

    /// A singleton action set.
    pub fn single(action: Action) -> ActionSet {
        ActionSet::from_iter([action])
    }

    /// Returns `true` if this set drops (is empty).
    pub fn is_drop(&self) -> bool {
        self.actions.is_empty()
    }

    /// Returns `true` if this set is exactly `pass`.
    pub fn is_pass(&self) -> bool {
        self.actions.len() == 1 && self.actions.iter().next().is_some_and(Action::is_id)
    }

    /// Union of two action sets (multicast).
    pub fn union(&self, other: &ActionSet) -> ActionSet {
        let mut actions = self.actions.clone();
        actions.extend(other.actions.iter().cloned());
        ActionSet { actions }
    }

    /// Applies every action to `pk`, returning the set of output packets.
    pub fn apply(&self, pk: &Packet) -> BTreeSet<Packet> {
        self.actions.iter().map(|a| a.apply(pk)).collect()
    }

    /// Applies every action to `pk`, appending the outputs to `out` in
    /// exactly the order [`apply`](ActionSet::apply)'s set iterates them
    /// (sorted, deduplicated) — but without materializing the set for the
    /// hot single-action case.
    pub fn apply_into(&self, pk: &Packet, out: &mut Vec<Packet>) {
        match self.actions.len() {
            0 => {}
            1 => out.push(self.actions.iter().next().expect("len 1").apply(pk)),
            _ => out.extend(self.apply(pk)),
        }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if this set is empty (drops).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates over the actions.
    pub fn iter(&self) -> impl Iterator<Item = &Action> + '_ {
        self.actions.iter()
    }
}

impl FromIterator<Action> for ActionSet {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> ActionSet {
        ActionSet { actions: iter.into_iter().collect() }
    }
}

impl Extend<Action> for ActionSet {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl fmt::Display for ActionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_drop() {
            return write!(f, "drop");
        }
        write!(f, "{{")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_overrides() {
        let a = Action::assign(Field::Port, 1);
        let b = Action::assign(Field::Port, 2).set(Field::Vlan, 9);
        let ab = a.then(&b);
        assert_eq!(ab.get(Field::Port), Some(2));
        assert_eq!(ab.get(Field::Vlan), Some(9));
        let ba = b.then(&a);
        assert_eq!(ba.get(Field::Port), Some(1));
    }

    #[test]
    fn identity_laws() {
        let a = Action::assign(Field::Vlan, 3);
        assert_eq!(Action::id().then(&a), a);
        assert_eq!(a.then(&Action::id()), a);
        assert!(Action::id().is_id());
        assert!(!a.is_id());
    }

    #[test]
    fn apply_preserves_unwritten_fields() {
        let pk = Packet::new().with(Field::IpDst, 4).with(Field::Port, 2);
        let out = Action::assign(Field::Port, 1).apply(&pk);
        assert_eq!(out.get(Field::IpDst), Some(4));
        assert_eq!(out.get(Field::Port), Some(1));
    }

    #[test]
    fn action_set_drop_and_pass() {
        let pk = Packet::new().with(Field::Port, 5);
        assert!(ActionSet::drop().apply(&pk).is_empty());
        assert_eq!(ActionSet::pass().apply(&pk), BTreeSet::from([pk.clone()]));
        assert!(ActionSet::drop().is_drop());
        assert!(ActionSet::pass().is_pass());
        assert!(!ActionSet::single(Action::assign(Field::Port, 1)).is_pass());
    }

    #[test]
    fn action_set_union_multicasts() {
        let s = ActionSet::single(Action::assign(Field::Port, 1))
            .union(&ActionSet::single(Action::assign(Field::Port, 2)));
        assert_eq!(s.len(), 2);
        let pk = Packet::new();
        assert_eq!(s.apply(&pk).len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(ActionSet::drop().to_string(), "drop");
        assert_eq!(Action::id().to_string(), "id");
        let a = Action::assign(Field::Port, 1).set(Field::Vlan, 2);
        assert_eq!(a.to_string(), "pt<-1,vlan<-2");
    }
}
