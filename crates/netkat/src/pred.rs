//! NetKAT predicates (the *tests* of the language).

use std::fmt;

use crate::field::{Field, Value};
use crate::packet::Packet;

/// A boolean predicate over packet fields.
///
/// Predicates form the test fragment of NetKAT: a boolean algebra over
/// basic tests `f = n`.
///
/// # Examples
///
/// ```
/// use netkat::{Field, Packet, Pred};
/// let p = Pred::test(Field::Port, 2).and(Pred::test(Field::IpDst, 4).not());
/// let pk = Packet::new().with(Field::Port, 2).with(Field::IpDst, 9);
/// assert!(p.eval(&pk));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Pred {
    /// The constant `true` (passes every packet).
    True,
    /// The constant `false` (drops every packet).
    False,
    /// The basic test `field = value`.
    Test(Field, Value),
    /// Conjunction `a ∧ b`.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction `a ∨ b`.
    Or(Box<Pred>, Box<Pred>),
    /// Negation `¬a`.
    Not(Box<Pred>),
}

impl Pred {
    /// The basic test `field = value`.
    pub fn test(field: Field, value: Value) -> Pred {
        Pred::Test(field, value)
    }

    /// The test `sw = n`.
    pub fn switch(n: Value) -> Pred {
        Pred::test(Field::Switch, n)
    }

    /// The test `pt = n`.
    pub fn port(n: Value) -> Pred {
        Pred::test(Field::Port, n)
    }

    /// Conjunction, with constant folding.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction, with constant folding.
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::False, p) | (p, Pred::False) => p,
            (Pred::True, _) | (_, Pred::True) => Pred::True,
            (a, b) => Pred::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation, with constant folding and double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(p) => *p,
            p => Pred::Not(Box::new(p)),
        }
    }

    /// Conjunction of all predicates in `preds` (`true` if empty).
    pub fn all<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        preds.into_iter().fold(Pred::True, Pred::and)
    }

    /// Disjunction of all predicates in `preds` (`false` if empty).
    pub fn any<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        preds.into_iter().fold(Pred::False, Pred::or)
    }

    /// Evaluates the predicate on a packet (`pkt ⊨ ϕ` in the paper).
    ///
    /// A basic test on an unset field is `false`.
    pub fn eval(&self, pk: &Packet) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Test(f, v) => pk.get(*f) == Some(*v),
            Pred::And(a, b) => a.eval(pk) && b.eval(pk),
            Pred::Or(a, b) => a.eval(pk) || b.eval(pk),
            Pred::Not(a) => !a.eval(pk),
        }
    }

    /// All fields mentioned anywhere in the predicate, in order.
    pub fn fields(&self) -> Vec<Field> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_fields(&self, out: &mut Vec<Field>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Test(f, _) => out.push(*f),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
            Pred::Not(a) => a.collect_fields(out),
        }
    }

    /// All `(field, value)` pairs tested anywhere in the predicate.
    pub fn tests(&self) -> Vec<(Field, Value)> {
        let mut out = Vec::new();
        self.collect_tests(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_tests(&self, out: &mut Vec<(Field, Value)>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Test(f, v) => out.push((*f, *v)),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_tests(out);
                b.collect_tests(out);
            }
            Pred::Not(a) => a.collect_tests(out),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Test(field, v) => write!(f, "{field}={v}"),
            Pred::And(a, b) => write!(f, "({a} & {b})"),
            Pred::Or(a, b) => write!(f, "({a} | {b})"),
            Pred::Not(a) => write!(f, "!{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(port: Value, dst: Value) -> Packet {
        Packet::new().with(Field::Port, port).with(Field::IpDst, dst)
    }

    #[test]
    fn basic_test_semantics() {
        assert!(Pred::test(Field::Port, 2).eval(&pk(2, 4)));
        assert!(!Pred::test(Field::Port, 1).eval(&pk(2, 4)));
        // unset field: test fails
        assert!(!Pred::test(Field::IpSrc, 0).eval(&pk(2, 4)));
    }

    #[test]
    fn boolean_connectives() {
        let p = Pred::port(2).and(Pred::test(Field::IpDst, 4));
        assert!(p.eval(&pk(2, 4)));
        assert!(!p.eval(&pk(2, 5)));
        let q = Pred::port(1).or(Pred::test(Field::IpDst, 4));
        assert!(q.eval(&pk(2, 4)));
        assert!(!q.eval(&pk(2, 5)));
        assert!(Pred::port(1).not().eval(&pk(2, 4)));
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Pred::True.and(Pred::port(1)), Pred::port(1));
        assert_eq!(Pred::False.and(Pred::port(1)), Pred::False);
        assert_eq!(Pred::False.or(Pred::port(1)), Pred::port(1));
        assert_eq!(Pred::True.or(Pred::port(1)), Pred::True);
        assert_eq!(Pred::True.not(), Pred::False);
        assert_eq!(Pred::port(1).not().not(), Pred::port(1));
    }

    #[test]
    fn all_and_any() {
        assert_eq!(Pred::all([]), Pred::True);
        assert_eq!(Pred::any([]), Pred::False);
        let p = Pred::all([Pred::port(2), Pred::test(Field::IpDst, 4)]);
        assert!(p.eval(&pk(2, 4)));
        assert!(!p.eval(&pk(2, 3)));
    }

    #[test]
    fn fields_and_tests_are_sorted_unique() {
        let p = Pred::port(2).and(Pred::port(2)).or(Pred::switch(1).not());
        assert_eq!(p.fields(), vec![Field::Switch, Field::Port]);
        assert_eq!(p.tests(), vec![(Field::Switch, 1), (Field::Port, 2)]);
    }

    #[test]
    fn display() {
        let p = Pred::port(2).and(Pred::test(Field::IpDst, 4).not());
        assert_eq!(p.to_string(), "(pt=2 & !ip_dst=4)");
    }
}
