//! A minimal FxHash-style hasher for the workspace's hot integer-keyed
//! maps (egress resolution, per-switch state slots).
//!
//! The keys at those sites are small tuples of integers probed once or
//! twice per simulated hop; SipHash's setup cost dominates at that grain.
//! This mixer folds each integer write with a rotate-xor-multiply round —
//! the same shape rustc's FxHasher uses — which is plenty for keys that
//! are not attacker-chosen. Do **not** use it for keys an adversary can
//! pick.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// See the module docs.
#[derive(Clone, Debug, Default)]
pub struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(26) ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinguishes_field_order_and_values() {
        let hash = |t: &(u64, u64)| FxBuildHasher::default().hash_one(t);
        assert_ne!(hash(&(1, 2)), hash(&(2, 1)));
        assert_ne!(hash(&(0, 0)), hash(&(0, 1)));
        assert_eq!(hash(&(7, 9)), hash(&(7, 9)));
    }
}
