//! The local compiler: policies to FDDs to flow tables.
//!
//! "Local" compilation treats the whole policy as a single switch function.
//! Links are compiled as their semantic equivalent (a location test followed
//! by a location rewrite); programs that span switches should instead go
//! through [`crate::global`], which splits them at links.

use crate::action::{Action, ActionSet};
use crate::error::NetkatError;
use crate::fdd::{FddBuilder, NodeId};
use crate::field::Field;
use crate::flowtable::FlowTable;
use crate::policy::Policy;

/// Compiles `pol` into an FDD inside `builder`.
///
/// # Errors
///
/// Returns [`NetkatError::StarDiverged`] if a `*` fixpoint does not converge.
///
/// # Examples
///
/// ```
/// use netkat::{compile_fdd, Field, FddBuilder, Packet, Policy, Pred};
/// let mut b = FddBuilder::new();
/// let p = Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 1));
/// let d = compile_fdd(&mut b, &p)?;
/// let out = b.eval(d, &Packet::new().with(Field::Port, 2));
/// assert_eq!(out.iter().next().unwrap().get(Field::Port), Some(1));
/// # Ok::<(), netkat::NetkatError>(())
/// ```
pub fn compile_fdd(builder: &mut FddBuilder, pol: &Policy) -> Result<NodeId, NetkatError> {
    match pol {
        Policy::Filter(pred) => Ok(builder.from_pred(pred)),
        Policy::Modify(f, v) => Ok(builder.leaf(ActionSet::single(Action::assign(*f, *v)))),
        Policy::Union(a, b) => {
            let da = compile_fdd(builder, a)?;
            let db = compile_fdd(builder, b)?;
            Ok(builder.union(da, db))
        }
        Policy::Seq(a, b) => {
            let da = compile_fdd(builder, a)?;
            let db = compile_fdd(builder, b)?;
            Ok(builder.seq(da, db))
        }
        Policy::Star(a) => {
            let da = compile_fdd(builder, a)?;
            builder.star(da).ok_or(NetkatError::StarDiverged)
        }
        Policy::Link(src, dst) => {
            // filter sw=src.sw & pt=src.pt ; sw<-dst.sw ; pt<-dst.pt
            let t_sw = builder.from_test(Field::Switch, src.sw);
            let t_pt = builder.from_test(Field::Port, src.pt);
            let act = Action::assign(Field::Switch, dst.sw).set(Field::Port, dst.pt);
            let move_leaf = builder.leaf(ActionSet::single(act));
            let guard = builder.seq(t_sw, t_pt);
            Ok(builder.seq(guard, move_leaf))
        }
    }
}

/// Compiles `pol` into a single prioritized flow table.
///
/// # Errors
///
/// Returns [`NetkatError::StarDiverged`] if a `*` fixpoint does not converge.
pub fn compile_local(pol: &Policy) -> Result<FlowTable, NetkatError> {
    let mut builder = FddBuilder::new();
    let d = compile_fdd(&mut builder, pol)?;
    let mut table = FlowTable::from_fdd(&builder, d);
    table.compact();
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Loc, Packet};
    use crate::pred::Pred;
    use crate::semantics::eval;

    fn check_agrees(pol: &Policy, pks: &[Packet]) {
        let table = compile_local(pol).expect("compiles");
        for pk in pks {
            let want = eval(pol, pk).expect("evaluates");
            let got = table.apply(pk);
            assert_eq!(got, want, "policy {pol} on packet {pk}");
        }
    }

    fn packets() -> Vec<Packet> {
        let mut out = Vec::new();
        for sw in [1, 2] {
            for pt in [1, 2, 3] {
                for dst in [0, 4] {
                    out.push(
                        Packet::new()
                            .with(Field::Switch, sw)
                            .with(Field::Port, pt)
                            .with(Field::IpDst, dst),
                    );
                }
            }
        }
        out.push(Packet::new());
        out
    }

    #[test]
    fn filter_modify_seq_union_agree_with_semantics() {
        let pks = packets();
        check_agrees(&Policy::filter(Pred::port(2)), &pks);
        check_agrees(&Policy::modify(Field::Port, 9), &pks);
        check_agrees(&Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 1)), &pks);
        check_agrees(&Policy::modify(Field::Port, 1).union(Policy::modify(Field::Port, 3)), &pks);
        check_agrees(
            &Policy::filter(Pred::port(2).not()).seq(Policy::modify(Field::Vlan, 5)),
            &pks,
        );
    }

    #[test]
    fn modify_then_test_agrees() {
        let pks = packets();
        // pt<-1; pt=1 == pt<-1 and pt<-1; pt=2 == drop
        check_agrees(&Policy::modify(Field::Port, 1).seq(Policy::filter(Pred::port(1))), &pks);
        check_agrees(&Policy::modify(Field::Port, 1).seq(Policy::filter(Pred::port(2))), &pks);
    }

    #[test]
    fn star_agrees_with_semantics() {
        let pks = packets();
        let step = Policy::filter(Pred::port(1))
            .seq(Policy::modify(Field::Port, 2))
            .union(Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 3)));
        check_agrees(&step.star(), &pks);
    }

    #[test]
    fn link_agrees_with_semantics() {
        let pks = packets();
        let p = Policy::link(Loc::new(1, 1), Loc::new(2, 2));
        check_agrees(&p, &pks);
        let q = Policy::filter(Pred::test(Field::IpDst, 4))
            .seq(Policy::modify(Field::Port, 1))
            .seq(Policy::link(Loc::new(1, 1), Loc::new(2, 2)))
            .seq(Policy::modify(Field::Port, 3));
        check_agrees(&q, &pks);
    }

    #[test]
    fn firewall_style_clause_compiles_small() {
        // The paper's firewall clause shape: pt=2 & ip_dst=4; pt<-1
        let p = Policy::filter(Pred::port(2).and(Pred::test(Field::IpDst, 4)))
            .seq(Policy::modify(Field::Port, 1));
        let t = compile_local(&p).unwrap();
        assert!(t.len() <= 4, "expected a compact table, got:\n{t}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::packet::Packet;
    use crate::pred::Pred;
    use crate::semantics::eval;
    use proptest::prelude::*;

    fn arb_field() -> impl Strategy<Value = Field> {
        prop_oneof![Just(Field::Port), Just(Field::Vlan), Just(Field::IpDst), Just(Field::IpSrc),]
    }

    fn arb_pred() -> impl Strategy<Value = Pred> {
        let leaf = prop_oneof![
            Just(Pred::True),
            Just(Pred::False),
            (arb_field(), 0u64..3).prop_map(|(f, v)| Pred::Test(f, v)),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
                inner.prop_map(|a| Pred::Not(Box::new(a))),
            ]
        })
    }

    fn arb_policy() -> impl Strategy<Value = Policy> {
        let leaf = prop_oneof![
            arb_pred().prop_map(Policy::Filter),
            (arb_field(), 0u64..3).prop_map(|(f, v)| Policy::Modify(f, v)),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Policy::Union(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Policy::Seq(Box::new(a), Box::new(b))),
                inner.prop_map(|a| Policy::Star(Box::new(a))),
            ]
        })
    }

    fn arb_packet() -> impl Strategy<Value = Packet> {
        proptest::collection::vec((arb_field(), 0u64..3), 0..4)
            .prop_map(|fs| fs.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn compiled_table_agrees_with_denotational_semantics(
            pol in arb_policy(),
            pks in proptest::collection::vec(arb_packet(), 1..6),
        ) {
            let table = compile_local(&pol).expect("random policies converge");
            for pk in &pks {
                let want = eval(&pol, pk).expect("evaluates");
                prop_assert_eq!(table.apply(pk), want);
            }
        }

        #[test]
        fn fdd_eval_agrees_with_denotational_semantics(
            pol in arb_policy(),
            pk in arb_packet(),
        ) {
            let mut b = FddBuilder::new();
            let d = compile_fdd(&mut b, &pol).expect("compiles");
            let want = eval(&pol, &pk).expect("evaluates");
            prop_assert_eq!(b.eval(d, &pk), want);
        }

        #[test]
        fn pred_compilation_is_boolean(
            pred in arb_pred(),
            pk in arb_packet(),
        ) {
            let mut b = FddBuilder::new();
            let d = b.from_pred(&pred);
            let got = !b.eval(d, &pk).is_empty();
            prop_assert_eq!(got, pred.eval(&pk));
        }
    }
}
