//! NetKAT policies (the *commands* of the language).

use std::fmt;

use crate::field::{Field, Value};
use crate::packet::Loc;
use crate::pred::Pred;

/// A NetKAT policy.
///
/// Policies denote functions from a packet to a *set* of packets: `Filter`
/// passes or drops, `Modify` rewrites one field, `Union` copies the packet
/// through both branches, `Seq` pipes one policy into another, `Star` is
/// reflexive-transitive closure, and `Link` forwards the packet across a
/// physical link in the topology, rewriting its location.
///
/// # Examples
///
/// ```
/// use netkat::{Field, Loc, Policy, Pred};
/// // if pt=2 then set pt:=1 and cross the link 1:1 -> 4:1
/// let p = Policy::filter(Pred::port(2))
///     .seq(Policy::modify(Field::Port, 1))
///     .seq(Policy::link(Loc::new(1, 1), Loc::new(4, 1)));
/// assert_eq!(p.links(), vec![(Loc::new(1, 1), Loc::new(4, 1))]);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Policy {
    /// Filter by a predicate: pass packets satisfying it, drop the rest.
    Filter(Pred),
    /// Assignment `field ← value`.
    Modify(Field, Value),
    /// Union `p + q`: nondeterministic (multicast) choice of both.
    Union(Box<Policy>, Box<Policy>),
    /// Sequence `p ; q`.
    Seq(Box<Policy>, Box<Policy>),
    /// Iteration `p*`, equivalent to `true + p + p;p + ...`.
    Star(Box<Policy>),
    /// Link traversal `(src.sw : src.pt) → (dst.sw : dst.pt)`: the packet
    /// must be located at `src`; its location becomes `dst`.
    Link(Loc, Loc),
}

impl Policy {
    /// The identity policy (`filter true`).
    pub fn id() -> Policy {
        Policy::Filter(Pred::True)
    }

    /// The drop policy (`filter false`).
    pub fn drop() -> Policy {
        Policy::Filter(Pred::False)
    }

    /// Filter by `pred`.
    pub fn filter(pred: Pred) -> Policy {
        Policy::Filter(pred)
    }

    /// The assignment `field ← value`.
    pub fn modify(field: Field, value: Value) -> Policy {
        Policy::Modify(field, value)
    }

    /// The link `src → dst`.
    pub fn link(src: Loc, dst: Loc) -> Policy {
        Policy::Link(src, dst)
    }

    /// Union, with drop-elimination.
    pub fn union(self, other: Policy) -> Policy {
        match (self, other) {
            (Policy::Filter(Pred::False), p) | (p, Policy::Filter(Pred::False)) => p,
            (a, b) => Policy::Union(Box::new(a), Box::new(b)),
        }
    }

    /// Sequence, with identity- and drop-elimination.
    pub fn seq(self, other: Policy) -> Policy {
        match (self, other) {
            (Policy::Filter(Pred::True), p) | (p, Policy::Filter(Pred::True)) => p,
            (Policy::Filter(Pred::False), _) | (_, Policy::Filter(Pred::False)) => Policy::drop(),
            (a, b) => Policy::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Iteration `self*`.
    pub fn star(self) -> Policy {
        match self {
            Policy::Filter(Pred::True) | Policy::Filter(Pred::False) => Policy::id(),
            p => Policy::Star(Box::new(p)),
        }
    }

    /// Union of all policies in `pols` (`drop` if empty).
    pub fn union_all<I: IntoIterator<Item = Policy>>(pols: I) -> Policy {
        pols.into_iter().fold(Policy::drop(), Policy::union)
    }

    /// Sequence of all policies in `pols` (`id` if empty).
    pub fn seq_all<I: IntoIterator<Item = Policy>>(pols: I) -> Policy {
        pols.into_iter().fold(Policy::id(), Policy::seq)
    }

    /// Returns `true` if the policy contains a [`Policy::Link`].
    pub fn has_links(&self) -> bool {
        match self {
            Policy::Filter(_) | Policy::Modify(..) => false,
            Policy::Link(..) => true,
            Policy::Union(a, b) | Policy::Seq(a, b) => a.has_links() || b.has_links(),
            Policy::Star(a) => a.has_links(),
        }
    }

    /// All links appearing in the policy, in order, deduplicated.
    pub fn links(&self) -> Vec<(Loc, Loc)> {
        let mut out = Vec::new();
        self.collect_links(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_links(&self, out: &mut Vec<(Loc, Loc)>) {
        match self {
            Policy::Filter(_) | Policy::Modify(..) => {}
            Policy::Link(a, b) => out.push((*a, *b)),
            Policy::Union(a, b) | Policy::Seq(a, b) => {
                a.collect_links(out);
                b.collect_links(out);
            }
            Policy::Star(a) => a.collect_links(out),
        }
    }

    /// All `(field, value)` pairs written or tested by the policy.
    pub fn field_values(&self) -> Vec<(Field, Value)> {
        let mut out = Vec::new();
        self.collect_field_values(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_field_values(&self, out: &mut Vec<(Field, Value)>) {
        match self {
            Policy::Filter(p) => out.extend(p.tests()),
            Policy::Modify(f, v) => out.push((*f, *v)),
            Policy::Link(a, b) => {
                out.push((Field::Switch, a.sw));
                out.push((Field::Port, a.pt));
                out.push((Field::Switch, b.sw));
                out.push((Field::Port, b.pt));
            }
            Policy::Union(a, b) | Policy::Seq(a, b) => {
                a.collect_field_values(out);
                b.collect_field_values(out);
            }
            Policy::Star(a) => a.collect_field_values(out),
        }
    }

    /// Size of the AST (number of nodes), useful for compiler statistics.
    pub fn size(&self) -> usize {
        match self {
            Policy::Filter(_) | Policy::Modify(..) | Policy::Link(..) => 1,
            Policy::Union(a, b) | Policy::Seq(a, b) => 1 + a.size() + b.size(),
            Policy::Star(a) => 1 + a.size(),
        }
    }
}

impl From<Pred> for Policy {
    fn from(p: Pred) -> Policy {
        Policy::Filter(p)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Filter(p) => write!(f, "{p}"),
            Policy::Modify(field, v) => write!(f, "{field}<-{v}"),
            Policy::Union(a, b) => write!(f, "({a} + {b})"),
            Policy::Seq(a, b) => write!(f, "({a}; {b})"),
            Policy::Star(a) => write!(f, "({a})*"),
            Policy::Link(a, b) => write!(f, "({a})->({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_fold() {
        assert_eq!(
            Policy::id().seq(Policy::modify(Field::Port, 1)),
            Policy::modify(Field::Port, 1)
        );
        assert_eq!(Policy::drop().seq(Policy::modify(Field::Port, 1)), Policy::drop());
        assert_eq!(Policy::drop().union(Policy::id()), Policy::id());
        assert_eq!(Policy::id().star(), Policy::id());
        assert_eq!(Policy::drop().star(), Policy::id());
    }

    #[test]
    fn union_all_and_seq_all() {
        assert_eq!(Policy::union_all([]), Policy::drop());
        assert_eq!(Policy::seq_all([]), Policy::id());
        let p = Policy::seq_all([Policy::modify(Field::Port, 1), Policy::modify(Field::Vlan, 2)]);
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn link_discovery() {
        let l1 = (Loc::new(1, 1), Loc::new(4, 1));
        let l2 = (Loc::new(4, 1), Loc::new(1, 1));
        let p =
            Policy::link(l1.0, l1.1).union(Policy::link(l2.0, l2.1).seq(Policy::link(l1.0, l1.1)));
        assert!(p.has_links());
        assert_eq!(p.links(), vec![l1, l2]);
        assert!(!Policy::modify(Field::Port, 1).has_links());
    }

    #[test]
    fn display() {
        let p = Policy::filter(Pred::port(2)).seq(Policy::modify(Field::Port, 1));
        assert_eq!(p.to_string(), "(pt=2; pt<-1)");
    }

    #[test]
    fn field_values_include_link_locations() {
        let p = Policy::link(Loc::new(1, 1), Loc::new(4, 1));
        let fv = p.field_values();
        assert!(fv.contains(&(Field::Switch, 1)));
        assert!(fv.contains(&(Field::Switch, 4)));
        assert!(fv.contains(&(Field::Port, 1)));
    }
}
