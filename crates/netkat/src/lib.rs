//! # NetKAT
//!
//! A self-contained implementation of the NetKAT network programming
//! language: packets, predicates, policies, a reference denotational
//! semantics, a forwarding-decision-diagram (FDD) compiler in the style of
//! Smolka et al. (ICFP 2015), and a path-based global compiler that splits
//! link-programs into per-switch prioritized flow tables.
//!
//! This crate is the static-configuration substrate for the event-driven
//! network programming stack built on top of it (see the `edn-core`,
//! `stateful-netkat`, and `nes-runtime` crates): every node of an
//! event-driven transition system is a NetKAT program compiled here.
//!
//! ## Quick example
//!
//! ```
//! use netkat::{compile_global, Field, Loc, Policy, Pred};
//!
//! // Forward packets for host 4 from switch 1 port 2 across the 1:1 -> 4:1
//! // link and deliver them out port 2 of switch 4.
//! let program = Policy::filter(Pred::port(2).and(Pred::test(Field::IpDst, 4)))
//!     .seq(Policy::modify(Field::Port, 1))
//!     .seq(Policy::link(Loc::new(1, 1), Loc::new(4, 1)))
//!     .seq(Policy::modify(Field::Port, 2));
//!
//! let tables = compile_global(&program, &[1, 4])?;
//! assert_eq!(tables.tables.len(), 2);
//! # Ok::<(), netkat::NetkatError>(())
//! ```

#![warn(missing_docs)]

mod action;
mod arena;
mod error;
mod fdd;
mod field;
mod flowindex;
mod flowtable;
mod global;
mod hash;
mod local;
mod packet;
mod policy;
mod pred;
mod semantics;

pub use action::{Action, ActionSet};
pub use arena::{ArenaStats, PacketArena, PacketId};
pub use error::NetkatError;
pub use fdd::{FddBuilder, FddPath, NodeId};
pub use field::{Field, Value};
pub use flowindex::{CompiledTable, LookupPath};
pub use flowtable::{FlowTable, Match, Rule, TableDelta};
pub use global::{compile_global, path_clauses, Hop, PathClause, SwitchTables, TestConj};
pub use hash::{FxBuildHasher, FxHasher};
pub use local::{compile_fdd, compile_local};
pub use packet::{FieldReader, Loc, LocatedView, Packet};
pub use policy::Policy;
pub use pred::Pred;
pub use semantics::{equivalent_on, eval, eval_set};
