//! Forwarding decision diagrams (FDDs).
//!
//! An FDD is a hash-consed binary decision diagram whose internal nodes test
//! `field = value` and whose leaves are [`ActionSet`]s. This is the
//! intermediate representation of the NetKAT compiler, following Smolka et
//! al., *A Fast Compiler for NetKAT* (ICFP 2015), which the paper's artifact
//! uses via Frenetic.
//!
//! Invariants maintained by the builder:
//!
//! * **ordering** — along every path, tests appear in strictly increasing
//!   `(field, value)` order;
//! * **no contradictions** — on the true branch of `f = v` there are no
//!   further tests on `f`; on the false branch there is no second `f = v`;
//! * **no redundancy** — a node whose branches are equal is collapsed.
//!
//! All tests in a diagram refer to the *input* packet; actions apply at the
//! leaves. Every operation is memoized in the builder.

use std::collections::HashMap;
use std::fmt;

use crate::action::{Action, ActionSet};
use crate::field::{Field, Value};
use crate::packet::Packet;
use crate::pred::Pred;

/// A handle to a node in an [`FddBuilder`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum NodeData {
    Leaf(ActionSet),
    Branch { field: Field, value: Value, tru: NodeId, els: NodeId },
}

/// The arena and memo tables for FDD construction.
///
/// All diagrams produced by one builder share structure; [`NodeId`]s are only
/// meaningful relative to their builder.
///
/// # Examples
///
/// ```
/// use netkat::{Field, FddBuilder, Packet, Pred};
/// let mut b = FddBuilder::new();
/// let d = b.from_pred(&Pred::port(2));
/// let pk = Packet::new().with(Field::Port, 2);
/// assert!(b.eval(d, &pk).len() == 1);
/// ```
#[derive(Debug, Default)]
pub struct FddBuilder {
    nodes: Vec<NodeData>,
    cons: HashMap<NodeData, NodeId>,
    memo_union: HashMap<(NodeId, NodeId), NodeId>,
    memo_guard: HashMap<(NodeId, NodeId), NodeId>,
    memo_seq: HashMap<(NodeId, NodeId), NodeId>,
    memo_subst: HashMap<(Action, NodeId), NodeId>,
    memo_assume: HashMap<(NodeId, Field, Value, bool), NodeId>,
    memo_complement: HashMap<NodeId, NodeId>,
}

/// Iteration bound for Kleene star fixpoints.
const STAR_FUEL: usize = 1_000;

impl FddBuilder {
    /// Creates an empty builder.
    pub fn new() -> FddBuilder {
        FddBuilder::default()
    }

    /// Number of distinct nodes allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    fn intern(&mut self, data: NodeData) -> NodeId {
        if let Some(&id) = self.cons.get(&data) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data.clone());
        self.cons.insert(data, id);
        id
    }

    /// The leaf holding `acts`.
    pub fn leaf(&mut self, acts: ActionSet) -> NodeId {
        self.intern(NodeData::Leaf(acts))
    }

    /// The drop leaf.
    pub fn drop_leaf(&mut self) -> NodeId {
        self.leaf(ActionSet::drop())
    }

    /// The pass (identity) leaf.
    pub fn pass_leaf(&mut self) -> NodeId {
        self.leaf(ActionSet::pass())
    }

    /// Returns the root test of `id`, or `None` for a leaf.
    fn root_test(&self, id: NodeId) -> Option<(Field, Value)> {
        match self.data(id) {
            NodeData::Leaf(_) => None,
            NodeData::Branch { field, value, .. } => Some((*field, *value)),
        }
    }

    /// Propagates the assumption `field = value` (if `positive`) or
    /// `field ≠ value` (otherwise) through `d`, pruning resolved tests.
    fn assume(&mut self, d: NodeId, field: Field, value: Value, positive: bool) -> NodeId {
        let key = (d, field, value, positive);
        if let Some(&r) = self.memo_assume.get(&key) {
            return r;
        }
        let r = match self.data(d).clone() {
            NodeData::Leaf(_) => d,
            NodeData::Branch { field: f, value: v, tru, els } => {
                if f == field {
                    if positive {
                        // f is known to equal `value`.
                        if v == value {
                            self.assume(tru, field, value, positive)
                        } else {
                            self.assume(els, field, value, positive)
                        }
                    } else if v == value {
                        // f ≠ value, so this exact test is false.
                        self.assume(els, field, value, positive)
                    } else {
                        // f ≠ value says nothing about f = v (v ≠ value).
                        let t = self.assume(tru, field, value, positive);
                        let e = self.assume(els, field, value, positive);
                        self.branch_raw(f, v, t, e)
                    }
                } else {
                    let t = self.assume(tru, field, value, positive);
                    let e = self.assume(els, field, value, positive);
                    self.branch_raw(f, v, t, e)
                }
            }
        };
        self.memo_assume.insert(key, r);
        r
    }

    /// Hash-consing constructor without assumption propagation.
    fn branch_raw(&mut self, field: Field, value: Value, tru: NodeId, els: NodeId) -> NodeId {
        if tru == els {
            return tru;
        }
        self.intern(NodeData::Branch { field, value, tru, els })
    }

    /// The canonical branch constructor: prunes tests resolved by the new
    /// root test from both children and collapses redundant nodes.
    ///
    /// Callers must ensure `(field, value)` precedes the root tests of `tru`
    /// and `els` in the global test order (checked in debug builds).
    fn branch(&mut self, field: Field, value: Value, tru: NodeId, els: NodeId) -> NodeId {
        let t = self.assume(tru, field, value, true);
        let e = self.assume(els, field, value, false);
        debug_assert!(self.root_test(t).is_none_or(|rt| rt.0 != field));
        debug_assert!(self.root_test(t).is_none_or(|rt| rt > (field, value)));
        debug_assert!(self.root_test(e).is_none_or(|rt| rt > (field, value)));
        self.branch_raw(field, value, t, e)
    }

    /// Splits `d` by the test `(field, value)`: the pair of diagrams
    /// equivalent to `d` under the assumption that the test holds / fails.
    ///
    /// Requires `(field, value)` to be ≤ the root test of `d`.
    fn split(&mut self, d: NodeId, field: Field, value: Value) -> (NodeId, NodeId) {
        match *self.data(d) {
            NodeData::Leaf(_) => (d, d),
            NodeData::Branch { field: f, value: v, tru, els } => {
                if (f, v) == (field, value) {
                    (tru, els)
                } else if f == field {
                    // Same field, larger value: under f = value the test
                    // f = v is false; under f ≠ value it is unresolved.
                    debug_assert!(v > value);
                    let t = self.assume(d, field, value, true);
                    (t, d)
                } else {
                    debug_assert!(f > field);
                    (d, d)
                }
            }
        }
    }

    /// Generic memoized binary combinator.
    fn apply(
        &mut self,
        a: NodeId,
        b: NodeId,
        which: MemoTable,
        op: fn(&ActionSet, &ActionSet) -> ActionSet,
    ) -> NodeId {
        let key = (a, b);
        if let Some(&r) = self.memo(which).get(&key) {
            return r;
        }
        let r = match (self.data(a).clone(), self.data(b).clone()) {
            (NodeData::Leaf(x), NodeData::Leaf(y)) => {
                let acts = op(&x, &y);
                self.leaf(acts)
            }
            _ => {
                let ra = self.root_test(a);
                let rb = self.root_test(b);
                let (field, value) = match (ra, rb) {
                    (Some(x), Some(y)) => x.min(y),
                    (Some(x), None) => x,
                    (None, Some(y)) => y,
                    (None, None) => unreachable!("both leaves handled above"),
                };
                let (at, ae) = self.split(a, field, value);
                let (bt, be) = self.split(b, field, value);
                let t = self.apply(at, bt, which, op);
                let e = self.apply(ae, be, which, op);
                self.branch(field, value, t, e)
            }
        };
        self.memo(which).insert(key, r);
        r
    }

    fn memo(&mut self, which: MemoTable) -> &mut HashMap<(NodeId, NodeId), NodeId> {
        match which {
            MemoTable::Union => &mut self.memo_union,
            MemoTable::Guard => &mut self.memo_guard,
        }
    }

    /// Union (multicast) of two diagrams.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == b {
            return a;
        }
        self.apply(a, b, MemoTable::Union, |x, y| x.union(y))
    }

    /// Guards `d` by the 0/1 diagram `pred`: where `pred` passes, behave as
    /// `d`; elsewhere drop.
    fn guard(&mut self, pred: NodeId, d: NodeId) -> NodeId {
        self.apply(pred, d, MemoTable::Guard, |p, acts| {
            if p.is_drop() {
                ActionSet::drop()
            } else {
                acts.clone()
            }
        })
    }

    /// The conditional `if (field = value) then t else e` as a diagram, with
    /// `t` and `e` arbitrary diagrams (their root tests may precede the
    /// conditional's test).
    pub fn cond(&mut self, field: Field, value: Value, t: NodeId, e: NodeId) -> NodeId {
        // Fast path: both children's roots come after the test.
        let ok = |r: Option<(Field, Value)>| r.is_none_or(|rt| rt > (field, value));
        if ok(self.root_test(t)) && ok(self.root_test(e)) {
            return self.branch(field, value, t, e);
        }
        let pos = self.from_test(field, value);
        let neg = self.complement(pos);
        let gt = self.guard(pos, t);
        let ge = self.guard(neg, e);
        self.union(gt, ge)
    }

    /// The 0/1 diagram for the basic test `field = value`.
    pub fn from_test(&mut self, field: Field, value: Value) -> NodeId {
        let pass = self.pass_leaf();
        let drop = self.drop_leaf();
        self.branch_raw(field, value, pass, drop)
    }

    /// Complements a 0/1 diagram (predicate negation).
    ///
    /// # Panics
    ///
    /// Panics if a leaf is neither `pass` nor `drop`; complement of general
    /// action diagrams is not meaningful.
    pub fn complement(&mut self, d: NodeId) -> NodeId {
        if let Some(&r) = self.memo_complement.get(&d) {
            return r;
        }
        let r = match self.data(d).clone() {
            NodeData::Leaf(acts) => {
                if acts.is_drop() {
                    self.pass_leaf()
                } else {
                    assert!(acts.is_pass(), "complement of a non-predicate diagram");
                    self.drop_leaf()
                }
            }
            NodeData::Branch { field, value, tru, els } => {
                let t = self.complement(tru);
                let e = self.complement(els);
                self.branch_raw(field, value, t, e)
            }
        };
        self.memo_complement.insert(d, r);
        r
    }

    /// Compiles a predicate into a 0/1 diagram.
    pub fn from_pred(&mut self, pred: &Pred) -> NodeId {
        match pred {
            Pred::True => self.pass_leaf(),
            Pred::False => self.drop_leaf(),
            Pred::Test(f, v) => self.from_test(*f, *v),
            Pred::And(a, b) => {
                let da = self.from_pred(a);
                let db = self.from_pred(b);
                self.guard(da, db)
            }
            Pred::Or(a, b) => {
                let da = self.from_pred(a);
                let db = self.from_pred(b);
                self.union(da, db)
            }
            Pred::Not(a) => {
                let da = self.from_pred(a);
                self.complement(da)
            }
        }
    }

    /// Applies `act` "before" diagram `d`: resolves tests on fields written
    /// by `act` and composes `act` into every leaf.
    fn subst(&mut self, act: &Action, d: NodeId) -> NodeId {
        let key = (act.clone(), d);
        if let Some(&r) = self.memo_subst.get(&key) {
            return r;
        }
        let r = match self.data(d).clone() {
            NodeData::Leaf(acts) => {
                let composed: ActionSet = acts.iter().map(|b| act.then(b)).collect();
                self.leaf(composed)
            }
            NodeData::Branch { field, value, tru, els } => match act.get(field) {
                Some(v) if v == value => self.subst(act, tru),
                Some(_) => self.subst(act, els),
                None => {
                    let t = self.subst(act, tru);
                    let e = self.subst(act, els);
                    self.cond(field, value, t, e)
                }
            },
        };
        self.memo_subst.insert(key, r);
        r
    }

    /// Sequential composition of two diagrams.
    pub fn seq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let key = (a, b);
        if let Some(&r) = self.memo_seq.get(&key) {
            return r;
        }
        let r = match self.data(a).clone() {
            NodeData::Leaf(acts) => {
                let mut out = self.drop_leaf();
                for act in acts.iter() {
                    let d = self.subst(act, b);
                    out = self.union(out, d);
                }
                out
            }
            NodeData::Branch { field, value, tru, els } => {
                let t = self.seq(tru, b);
                let e = self.seq(els, b);
                self.cond(field, value, t, e)
            }
        };
        self.memo_seq.insert(key, r);
        r
    }

    /// Kleene star: least fixpoint of `x = id + d ; x`.
    ///
    /// Returns `None` if the fixpoint is not reached within an internal
    /// iteration bound (callers map this to
    /// [`NetkatError::StarDiverged`](crate::NetkatError::StarDiverged)).
    pub fn star(&mut self, d: NodeId) -> Option<NodeId> {
        let id = self.pass_leaf();
        let mut x = id;
        for _ in 0..STAR_FUEL {
            let dx = self.seq(d, x);
            let next = self.union(id, dx);
            if next == x {
                return Some(x);
            }
            x = next;
        }
        None
    }

    /// Evaluates a diagram on a packet.
    pub fn eval(&self, d: NodeId, pk: &Packet) -> std::collections::BTreeSet<Packet> {
        self.actions_for(d, pk).apply(pk)
    }

    /// Returns the action set a diagram selects for a packet.
    pub fn actions_for(&self, mut d: NodeId, pk: &Packet) -> ActionSet {
        loop {
            match self.data(d) {
                NodeData::Leaf(acts) => return acts.clone(),
                NodeData::Branch { field, value, tru, els } => {
                    d = if pk.get(*field) == Some(*value) { *tru } else { *els };
                }
            }
        }
    }

    /// Enumerates the diagram's paths as `(positive tests, negative tests,
    /// actions)` triples, in priority order (first match wins).
    ///
    /// This is the raw material for flow-table extraction: because every
    /// subdiagram is total, emitting true-branch paths before their sibling
    /// false-branch paths yields a correct prioritized table using only the
    /// positive tests as matches.
    pub fn paths(&self, d: NodeId) -> Vec<FddPath> {
        let mut out = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        self.walk_paths(d, &mut pos, &mut neg, &mut out);
        out
    }

    fn walk_paths(
        &self,
        d: NodeId,
        pos: &mut Vec<(Field, Value)>,
        neg: &mut Vec<(Field, Value)>,
        out: &mut Vec<FddPath>,
    ) {
        match self.data(d) {
            NodeData::Leaf(acts) => out.push(FddPath {
                positive: pos.clone(),
                negative: neg.clone(),
                actions: acts.clone(),
            }),
            NodeData::Branch { field, value, tru, els } => {
                pos.push((*field, *value));
                self.walk_paths(*tru, pos, neg, out);
                pos.pop();
                neg.push((*field, *value));
                self.walk_paths(*els, pos, neg, out);
                neg.pop();
            }
        }
    }
}

/// One root-to-leaf path of an FDD.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FddPath {
    /// Tests taken on their true branch.
    pub positive: Vec<(Field, Value)>,
    /// Tests taken on their false branch.
    pub negative: Vec<(Field, Value)>,
    /// The leaf's actions.
    pub actions: ActionSet,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MemoTable {
    Union,
    Guard,
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(port: Value, vlan: Value) -> Packet {
        Packet::new().with(Field::Port, port).with(Field::Vlan, vlan)
    }

    #[test]
    fn test_diagram_evaluates() {
        let mut b = FddBuilder::new();
        let d = b.from_test(Field::Port, 2);
        assert_eq!(b.eval(d, &pk(2, 0)).len(), 1);
        assert!(b.eval(d, &pk(1, 0)).is_empty());
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut b = FddBuilder::new();
        let d1 = b.from_test(Field::Port, 2);
        let d2 = b.from_test(Field::Port, 2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn and_or_not() {
        let mut b = FddBuilder::new();
        let p = Pred::port(2).and(Pred::test(Field::Vlan, 7));
        let d = b.from_pred(&p);
        assert_eq!(b.eval(d, &pk(2, 7)).len(), 1);
        assert!(b.eval(d, &pk(2, 8)).is_empty());
        let n = b.complement(d);
        assert!(b.eval(n, &pk(2, 7)).is_empty());
        assert_eq!(b.eval(n, &pk(2, 8)).len(), 1);
    }

    #[test]
    fn contradiction_pruned() {
        let mut b = FddBuilder::new();
        // pt=1 & pt=2 is unsatisfiable and must collapse to drop.
        let p = Pred::port(1).and(Pred::port(2));
        let d = b.from_pred(&p);
        assert_eq!(d, b.drop_leaf());
    }

    #[test]
    fn excluded_middle_collapses_to_pass() {
        let mut b = FddBuilder::new();
        let p = Pred::port(1).or(Pred::port(1).not());
        let d = b.from_pred(&p);
        assert_eq!(d, b.pass_leaf());
    }

    #[test]
    fn seq_resolves_written_tests() {
        let mut b = FddBuilder::new();
        // (pt<-2); (pt=2) behaves as pt<-2
        let assign = ActionSet::single(Action::assign(Field::Port, 2));
        let a = b.leaf(assign.clone());
        let t = b.from_test(Field::Port, 2);
        let d = b.seq(a, t);
        assert_eq!(d, b.leaf(assign));
        // (pt<-2); (pt=3) drops
        let t3 = b.from_test(Field::Port, 3);
        let d3 = b.seq(a, t3);
        assert_eq!(d3, b.drop_leaf());
    }

    #[test]
    fn union_is_idempotent_commutative() {
        let mut b = FddBuilder::new();
        let x = b.from_test(Field::Port, 1);
        let y = b.from_test(Field::Vlan, 2);
        let xy = b.union(x, y);
        let yx = b.union(y, x);
        assert_eq!(xy, yx);
        assert_eq!(b.union(x, x), x);
    }

    #[test]
    fn star_of_assignment_converges() {
        let mut b = FddBuilder::new();
        let a = b.leaf(ActionSet::single(Action::assign(Field::Vlan, 1)));
        let s = b.star(a).expect("fixpoint");
        // vlan<-1 star = id + vlan<-1
        let out = b.eval(s, &pk(0, 0));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn same_field_ordering_in_false_branch() {
        let mut b = FddBuilder::new();
        // pt=1 + pt=2 must order values along the false chain.
        let p = Pred::port(1).or(Pred::port(2));
        let d = b.from_pred(&p);
        assert_eq!(b.eval(d, &pk(1, 0)).len(), 1);
        assert_eq!(b.eval(d, &pk(2, 0)).len(), 1);
        assert!(b.eval(d, &pk(3, 0)).is_empty());
    }

    #[test]
    fn paths_cover_totally() {
        let mut b = FddBuilder::new();
        let p = Pred::port(1).or(Pred::test(Field::Vlan, 2));
        let d = b.from_pred(&p);
        let paths = b.paths(d);
        // Every packet must match exactly one path when scanned in order.
        for packet in [pk(1, 2), pk(1, 0), pk(0, 2), pk(0, 0)] {
            let matching: Vec<_> = paths
                .iter()
                .filter(|path| {
                    path.positive.iter().all(|&(f, v)| packet.get(f) == Some(v))
                        && path.negative.iter().all(|&(f, v)| packet.get(f) != Some(v))
                })
                .collect();
            assert_eq!(matching.len(), 1, "packet {packet} must hit exactly one full path");
        }
    }
}
