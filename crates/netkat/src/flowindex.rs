//! Compiled, indexed lookup for prioritized exact-match flow tables.
//!
//! [`FlowTable::apply`] is a linear first-match scan — fine for the paper's
//! hand-built examples, but it dominates per-switch forwarding cost once
//! generated topologies push tables past a hundred rules (the `fig18` scale
//! sweep). The tables this workspace compiles have heavy *structure*,
//! though: the global compiler, the routing synthesizer, and the NES tag
//! guards all emit long priority runs of rules constraining the *same*
//! field set (e.g. hundreds of `tag=t, ip_dst=h → port` rules back to
//! back). A [`CompiledTable`] exploits that structure:
//!
//! * the rule list is split into maximal contiguous priority runs whose
//!   rules constrain the same fields (the run's *signature*);
//! * long runs become hash segments: a fingerprint of the run's
//!   `(value, …)` tuple maps straight to the first rule carrying it;
//! * short or all-wildcard runs stay linear scans.
//!
//! First-match semantics are preserved *exactly* — within a hash segment
//! the lowest-priority-index rule wins ties, fingerprint collisions fall
//! back to scanning the run, and a packet missing one of a segment's
//! signature fields skips the whole segment (an exact-match test on an
//! absent field always fails). [`FlowTable::apply`]/[`FlowTable::lookup`]
//! remain the executable reference semantics; the differential property
//! tests below assert `CompiledTable ≡ FlowTable` on randomized tables.
//!
//! # Examples
//!
//! ```
//! use netkat::{ActionSet, Field, FlowTable, Match, Packet, Rule};
//! let table = FlowTable::from_rules((0..64).map(|h| {
//!     Rule::new(Match::new().with(Field::IpDst, h), ActionSet::pass())
//! }));
//! let compiled = table.compile();
//! let pk = Packet::new().with(Field::IpDst, 17);
//! assert_eq!(compiled.apply(&pk), table.apply(&pk));
//! assert_eq!(compiled.lookup_index(&pk), Some(17));
//! ```

use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::field::{Field, Value};
use crate::flowtable::{FlowTable, Rule, TableDelta};
use crate::packet::{FieldReader, Packet};

/// Which lookup implementation a data plane dispatches through.
///
/// The indexed path is the default; the linear path is the reference
/// semantics, kept selectable (env var `EDN_LOOKUP`) so any simulation can
/// be replayed on both paths and diffed — speed must never silently change
/// meaning.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LookupPath {
    /// The reference implementation: [`FlowTable`]'s linear first-match
    /// scan.
    Linear,
    /// The compiled index: [`CompiledTable`].
    #[default]
    Indexed,
}

impl LookupPath {
    /// Reads the path from the `EDN_LOOKUP` environment variable
    /// (`linear` or `indexed`); unset means [`LookupPath::Indexed`].
    ///
    /// # Panics
    ///
    /// Panics if `EDN_LOOKUP` is set to anything else.
    pub fn from_env() -> LookupPath {
        match std::env::var("EDN_LOOKUP") {
            Ok(v) if v == "linear" => LookupPath::Linear,
            Ok(v) if v == "indexed" => LookupPath::Indexed,
            Ok(v) => panic!("EDN_LOOKUP must be `linear` or `indexed`, got {v:?}"),
            Err(_) => LookupPath::Indexed,
        }
    }

    /// The label used in benchmark output (`linear` / `indexed`).
    pub fn label(&self) -> &'static str {
        match self {
            LookupPath::Linear => "linear",
            LookupPath::Indexed => "indexed",
        }
    }
}

/// Minimum run length worth a hash segment; shorter runs scan faster than
/// they hash.
const HASH_RUN_MIN: usize = 4;

/// A maximal contiguous priority run of rules, with its lookup strategy.
#[derive(Clone, Debug)]
enum Segment {
    /// Linear first-match scan over `rules[start..end]` (short or
    /// wildcard-heavy runs).
    Scan {
        /// First rule index of the run.
        start: u32,
        /// One past the last rule index of the run.
        end: u32,
    },
    /// Hashed exact-match over a run whose rules share one signature.
    Hash(HashSegment),
}

/// A hash segment: every rule in `rules[start..end]` constrains exactly
/// the fields in `fields`, so a value-tuple fingerprint resolves the
/// first match in O(1).
#[derive(Clone, Debug)]
struct HashSegment {
    /// The signature: the fields every rule in the run constrains, in
    /// field order.
    fields: Vec<Field>,
    /// For each signature field: its slot in the table's prefetch cache
    /// (see [`CompiledTable::prefetch`]), in the same order as `fields`.
    slots: Vec<u16>,
    /// First rule index of the run.
    start: u32,
    /// One past the last rule index of the run.
    end: u32,
    /// Fingerprint of a rule's value tuple → the first (highest-priority)
    /// rule index carrying that tuple. Collisions are resolved at lookup
    /// time by verifying the candidate and falling back to a run scan.
    map: FingerprintMap,
}

/// Fingerprints are already uniformly mixed, so the map skips SipHash and
/// uses the key bits directly.
type FingerprintMap = HashMap<u64, u32, BuildHasherDefault<IdentityHasher>>;

/// A hasher that passes 8-byte keys through unchanged — sound here because
/// every key is a [`fp_mix`] output (avalanched), never attacker-chosen.
/// Shared with the packet arena's fingerprint map.
#[derive(Clone, Debug, Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold bytes for completeness.
        for &b in bytes {
            self.0 = (self.0 << 8) | b as u64;
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

impl HashSegment {
    /// The fingerprint of the packet's values on this segment's signature,
    /// or `None` if the packet lacks one of the fields (in which case no
    /// rule in the run can match: each tests that field).
    fn fingerprint_of<R: FieldReader>(&self, pk: &R) -> Option<u64> {
        let mut h = FP_SEED;
        for &f in &self.fields {
            h = fp_mix(h, pk.read(f)?);
        }
        Some(h)
    }

    /// [`fingerprint_of`](HashSegment::fingerprint_of) against the
    /// table-wide prefetch cache instead of the packet: the values were
    /// read once up front, so a multi-segment walk never re-reads a
    /// field.
    fn fingerprint_cached(&self, cache: &[Option<Value>; PREFETCH_CAP]) -> Option<u64> {
        let mut h = FP_SEED;
        for &slot in &self.slots {
            h = fp_mix(h, cache[slot as usize]?);
        }
        Some(h)
    }
}

/// Capacity of the stack-allocated prefetch cache. Tables whose hash
/// segments together constrain more distinct fields than this (only
/// possible with many `Custom` fields) fall back to per-segment reads.
const PREFETCH_CAP: usize = 16;

pub(crate) const FP_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// One round of a SplitMix64-style mixer, chaining `value` into `h`.
pub(crate) fn fp_mix(h: u64, value: Value) -> u64 {
    let mut z = h ^ value.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(FP_SEED);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A flow table compiled for fast lookup.
///
/// Built once from a [`FlowTable`]; holds its own copy of the rules plus
/// the segment index. Lookup results are *identical* to the source table's
/// — see the module docs for the construction and the differential tests.
#[derive(Clone, Debug, Default)]
pub struct CompiledTable {
    rules: Vec<Rule>,
    segments: Vec<Segment>,
    /// The union of every hash segment's signature, deduplicated in field
    /// order. When two or more hash segments exist (the NES tables'
    /// shape: one run per tag block, all constraining `tag, ip_dst`), a
    /// lookup reads each of these fields **once** into a stack cache and
    /// fingerprints every segment from it, instead of re-reading the
    /// packet per segment.
    prefetch: Vec<Field>,
    /// Use the prefetch cache? (≥ 2 hash segments and the union fits
    /// [`PREFETCH_CAP`]; otherwise per-segment reads are cheaper.)
    prefetched: bool,
    /// Hash-segment lookups resolved by a confirmed fingerprint hit.
    /// `Cell` because lookups take `&self`; one add per lookup is
    /// negligible next to the fingerprint mix itself.
    fp_hits: Cell<u64>,
    /// Hash-segment lookups that fell back to the collision scan.
    fp_fallbacks: Cell<u64>,
}

/// Splits `rules[lo..hi]` into signature runs — the shared core of
/// [`CompiledTable::compile`] (whole table) and
/// [`CompiledTable::patch`] (just the window around an edit). Segment
/// indices are absolute into `rules`; adjacent scan runs are merged
/// within the emitted window.
fn segment_runs(rules: &[Rule], lo: usize, hi: usize) -> Vec<Segment> {
    let mut segments: Vec<Segment> = Vec::new();
    let mut i = lo;
    while i < hi {
        let sig: Vec<Field> = rules[i].pattern.iter().map(|(f, _)| f).collect();
        let mut j = i + 1;
        while j < hi && rules[j].pattern.iter().map(|(f, _)| f).eq(sig.iter().copied()) {
            j += 1;
        }
        if !sig.is_empty() && j - i >= HASH_RUN_MIN {
            let mut map = FingerprintMap::with_capacity_and_hasher(j - i, Default::default());
            for (k, rule) in rules.iter().enumerate().take(j).skip(i) {
                let mut h = FP_SEED;
                for (_, v) in rule.pattern.iter() {
                    h = fp_mix(h, v);
                }
                // First match wins: duplicate tuples keep the
                // highest-priority rule.
                map.entry(h).or_insert(k as u32);
            }
            segments.push(Segment::Hash(HashSegment {
                fields: sig,
                slots: Vec::new(),
                start: i as u32,
                end: j as u32,
                map,
            }));
        } else {
            // Merge adjacent scan runs into one segment.
            match segments.last_mut() {
                Some(Segment::Scan { end, .. }) if *end == i as u32 => *end = j as u32,
                _ => segments.push(Segment::Scan { start: i as u32, end: j as u32 }),
            }
        }
        i = j;
    }
    segments
}

impl CompiledTable {
    /// Compiles a table: splits it into signature runs, hashes the long
    /// ones, and derives the cross-segment field prefetch.
    pub fn compile(table: &FlowTable) -> CompiledTable {
        let rules: Vec<Rule> = table.iter().cloned().collect();
        let segments = segment_runs(&rules, 0, rules.len());
        let mut compiled = CompiledTable {
            rules,
            segments,
            prefetch: Vec::new(),
            prefetched: false,
            fp_hits: Cell::new(0),
            fp_fallbacks: Cell::new(0),
        };
        compiled.refresh_prefetch();
        compiled
    }

    /// Recomputes the prefetch union, the `prefetched` flag, and every
    /// hash segment's slot map from the current segment list.
    fn refresh_prefetch(&mut self) {
        let mut prefetch_set: BTreeSet<Field> = BTreeSet::new();
        let mut hash_segments = 0usize;
        for segment in &self.segments {
            if let Segment::Hash(seg) = segment {
                hash_segments += 1;
                prefetch_set.extend(seg.fields.iter().copied());
            }
        }
        self.prefetch = prefetch_set.into_iter().collect();
        self.prefetched = hash_segments >= 2 && self.prefetch.len() <= PREFETCH_CAP;
        if self.prefetched {
            let prefetch = &self.prefetch;
            for segment in &mut self.segments {
                if let Segment::Hash(seg) = segment {
                    seg.slots = seg
                        .fields
                        .iter()
                        .map(|f| {
                            prefetch.iter().position(|p| p == f).expect("field in union") as u16
                        })
                        .collect();
                }
            }
        }
    }

    /// Applies a [`TableDelta`] in place: splices the rule list and
    /// re-segments only a window around the edit instead of re-hashing the
    /// whole table.
    ///
    /// The window is every segment overlapping the replaced range, widened
    /// by one segment on each side so priority runs can split, merge, or
    /// extend across the edit's boundaries. Segments after the window keep
    /// their fingerprint maps and are merely shifted. The contract is
    /// *lookup equivalence* with a fresh [`compile`](CompiledTable::compile)
    /// — the segment partition may differ (e.g. a long run split in two),
    /// which the segment walk's first-match order makes unobservable.
    /// Accumulated [`lookup_stats`](CompiledTable::lookup_stats) survive.
    ///
    /// # Panics
    ///
    /// Panics if the delta's replaced range does not fit this table.
    pub fn patch(&mut self, delta: &TableDelta) {
        if delta.is_empty() {
            return;
        }
        let removed_end = delta.start + delta.removed;
        assert!(removed_end <= self.rules.len(), "delta range must fit the table");
        self.rules.splice(delta.start..removed_end, delta.inserted.iter().cloned());
        let shift = delta.inserted.len() as i64 - delta.removed as i64;

        let seg_range = |s: &Segment| match s {
            Segment::Scan { start, end } => (*start as usize, *end as usize),
            Segment::Hash(seg) => (seg.start as usize, seg.end as usize),
        };
        // Segments [lo, hi) overlap the replaced range (for a pure insert,
        // the segment containing the insertion point), widened by one on
        // each side.
        let lo = self
            .segments
            .iter()
            .position(|s| seg_range(s).1 > delta.start)
            .unwrap_or(self.segments.len())
            .saturating_sub(1);
        let hi = self
            .segments
            .iter()
            .rposition(|s| seg_range(s).0 < removed_end.max(delta.start + 1))
            .map_or(lo, |i| i + 2)
            .min(self.segments.len())
            .max(lo);
        // Window bounds in (new) rule indices.
        let w_lo = if lo < hi { seg_range(&self.segments[lo]).0 } else { delta.start };
        let w_hi = if lo < hi {
            (seg_range(&self.segments[hi - 1]).1 as i64 + shift) as usize
        } else {
            delta.start + delta.inserted.len()
        };
        debug_assert!(w_lo <= delta.start && w_hi >= delta.start + delta.inserted.len());

        let rebuilt = segment_runs(&self.rules, w_lo, w_hi);

        // Shift everything after the window, fingerprint maps included.
        for segment in &mut self.segments[hi..] {
            match segment {
                Segment::Scan { start, end } => {
                    *start = (*start as i64 + shift) as u32;
                    *end = (*end as i64 + shift) as u32;
                }
                Segment::Hash(seg) => {
                    seg.start = (seg.start as i64 + shift) as u32;
                    seg.end = (seg.end as i64 + shift) as u32;
                    for v in seg.map.values_mut() {
                        *v = (*v as i64 + shift) as u32;
                    }
                }
            }
        }
        self.segments.splice(lo..hi, rebuilt);

        // Re-merge scan/scan junctions at the window edges so repeated
        // patches don't fragment the partition (interior pairs are already
        // merged by `segment_runs`, so the sweep finds nothing there).
        let mut junction = lo.max(1);
        while junction < self.segments.len() {
            if matches!(
                (&self.segments[junction - 1], &self.segments[junction]),
                (Segment::Scan { .. }, Segment::Scan { .. })
            ) {
                let (_, merged_end) = seg_range(&self.segments[junction]);
                if let Segment::Scan { end, .. } = &mut self.segments[junction - 1] {
                    *end = merged_end as u32;
                }
                self.segments.remove(junction);
            } else {
                junction += 1;
            }
        }

        self.refresh_prefetch();
    }

    /// The index of the first matching rule for `pk`, exactly as
    /// [`FlowTable::lookup_index`] computes it.
    pub fn lookup_index(&self, pk: &Packet) -> Option<usize> {
        self.lookup_index_on(pk)
    }

    /// [`lookup_index`](CompiledTable::lookup_index) against any field
    /// source — e.g. the simulator's zero-copy
    /// [`LocatedView`](crate::LocatedView). With the prefetch active,
    /// every field any hash segment needs is read exactly once.
    pub fn lookup_index_on<R: FieldReader>(&self, pk: &R) -> Option<usize> {
        // The cache (and its initialization cost) exists only on the
        // prefetched path; single-segment tables go straight to
        // per-segment reads.
        if self.prefetched {
            let mut cache = [None::<Value>; PREFETCH_CAP];
            for (slot, &f) in self.prefetch.iter().enumerate() {
                cache[slot] = pk.read(f);
            }
            self.walk_segments(pk, |seg| seg.fingerprint_cached(&cache))
        } else {
            self.walk_segments(pk, |seg| seg.fingerprint_of(pk))
        }
    }

    /// The segment walk, generic over where hash fingerprints come from
    /// (the prefetch cache or direct packet reads).
    fn walk_segments<R: FieldReader>(
        &self,
        pk: &R,
        fingerprint: impl Fn(&HashSegment) -> Option<u64>,
    ) -> Option<usize> {
        for segment in &self.segments {
            match segment {
                Segment::Scan { start, end } => {
                    if let Some(i) = self.scan(*start, *end, pk) {
                        return Some(i);
                    }
                }
                Segment::Hash(seg) => {
                    let Some(fp) = fingerprint(seg) else { continue };
                    let Some(&candidate) = seg.map.get(&fp) else { continue };
                    if self.rules[candidate as usize].pattern.matches_on(pk) {
                        self.fp_hits.set(self.fp_hits.get() + 1);
                        return Some(candidate as usize);
                    }
                    // Fingerprint collision: the run still decides by scan.
                    self.fp_fallbacks.set(self.fp_fallbacks.get() + 1);
                    if let Some(i) = self.scan(seg.start, seg.end, pk) {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    fn scan<R: FieldReader>(&self, start: u32, end: u32, pk: &R) -> Option<usize> {
        self.rules[start as usize..end as usize]
            .iter()
            .position(|r| r.pattern.matches_on(pk))
            .map(|i| start as usize + i)
    }

    /// The first matching rule for `pk` (the indexed [`FlowTable::lookup`]).
    pub fn lookup(&self, pk: &Packet) -> Option<&Rule> {
        self.lookup_index(pk).map(|i| &self.rules[i])
    }

    /// [`lookup`](CompiledTable::lookup) against any field source.
    pub fn lookup_on<R: FieldReader>(&self, pk: &R) -> Option<&Rule> {
        self.lookup_index_on(pk).map(|i| &self.rules[i])
    }

    /// Applies the table through the index: the output packets of the
    /// first matching rule, or the empty set (the indexed
    /// [`FlowTable::apply`]).
    pub fn apply(&self, pk: &Packet) -> BTreeSet<Packet> {
        match self.lookup(pk) {
            Some(rule) => rule.actions.apply(pk),
            None => BTreeSet::new(),
        }
    }

    /// Applies the table through the index, appending the outputs to `out`
    /// in the same order as [`apply`](CompiledTable::apply)'s set
    /// iteration (the indexed [`FlowTable::apply_into`]).
    pub fn apply_into(&self, pk: &Packet, out: &mut Vec<Packet>) {
        if let Some(rule) = self.lookup(pk) {
            rule.actions.apply_into(pk, out);
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of segments (hash + scan) the table splits into.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Fingerprint-resolved vs collision-fallback hash-segment lookups,
    /// accumulated since compilation: `(confirmed hits, fallback scans)`.
    /// Harvested by the telemetry layer at the end of a run.
    pub fn lookup_stats(&self) -> (u64, u64) {
        (self.fp_hits.get(), self.fp_fallbacks.get())
    }

    /// Number of rules reachable through hash segments (the rest are
    /// scanned).
    pub fn hashed_rule_count(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Hash(seg) => (seg.end - seg.start) as usize,
                Segment::Scan { .. } => 0,
            })
            .sum()
    }
}

impl From<&FlowTable> for CompiledTable {
    fn from(table: &FlowTable) -> CompiledTable {
        CompiledTable::compile(table)
    }
}

impl FlowTable {
    /// Compiles this table into an indexed [`CompiledTable`].
    pub fn compile(&self) -> CompiledTable {
        CompiledTable::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSet};
    use crate::flowtable::Match;

    fn assert_equivalent(table: &FlowTable, pk: &Packet) {
        let compiled = table.compile();
        assert_eq!(compiled.lookup_index(pk), table.lookup_index(pk), "lookup index on {pk}");
        assert_eq!(compiled.apply(pk), table.apply(pk), "apply on {pk}");
    }

    fn exact(field: Field, v: Value, out: u64) -> Rule {
        Rule::new(Match::new().with(field, v), ActionSet::single(Action::assign(Field::Port, out)))
    }

    #[test]
    fn empty_table_drops_on_both_paths() {
        let table = FlowTable::new();
        let compiled = table.compile();
        assert!(compiled.is_empty());
        assert_eq!(compiled.segment_count(), 0);
        for pk in [Packet::new(), Packet::new().with(Field::IpDst, 3)] {
            assert_eq!(compiled.lookup_index(&pk), None);
            assert!(compiled.apply(&pk).is_empty());
            assert_equivalent(&table, &pk);
        }
    }

    #[test]
    fn all_wildcard_first_rule_shadows_everything() {
        // Rule 0 matches every packet; the hashable run after it is dead.
        let mut rules = vec![Rule::new(Match::new(), ActionSet::pass())];
        rules.extend((0..16).map(|h| exact(Field::IpDst, h, 1)));
        let table = FlowTable::from_rules(rules);
        let compiled = table.compile();
        assert_eq!(compiled.hashed_rule_count(), 16);
        for h in 0..20 {
            let pk = Packet::new().with(Field::IpDst, h);
            assert_eq!(compiled.lookup_index(&pk), Some(0));
            assert_equivalent(&table, &pk);
        }
        assert_equivalent(&table, &Packet::new());
    }

    #[test]
    fn duplicate_patterns_first_wins_in_hash_and_scan_runs() {
        // Hash run: 6 rules, two carrying the same pattern.
        let mut rules: Vec<Rule> = (0..3).map(|h| exact(Field::IpDst, h, h + 1)).collect();
        rules.push(exact(Field::IpDst, 1, 99)); // duplicate of rules[1], lower priority
        rules.extend((3..5).map(|h| exact(Field::IpDst, h, h + 1)));
        let hashed = FlowTable::from_rules(rules.clone());
        assert!(hashed.compile().hashed_rule_count() >= 6);
        let pk = Packet::new().with(Field::IpDst, 1);
        assert_eq!(hashed.compile().lookup_index(&pk), Some(1));
        assert_equivalent(&hashed, &pk);
        // Scan run: same duplicate below the hash threshold.
        let scanned = FlowTable::from_rules([exact(Field::Vlan, 7, 1), exact(Field::Vlan, 7, 2)]);
        assert_eq!(scanned.compile().hashed_rule_count(), 0);
        let pk = Packet::new().with(Field::Vlan, 7);
        assert_eq!(scanned.compile().lookup(&pk), scanned.lookup(&pk));
        assert_equivalent(&scanned, &pk);
    }

    #[test]
    fn multicast_rule_emits_multiple_packets_on_both_paths() {
        let fanout = ActionSet::from_iter([
            Action::assign(Field::Port, 1),
            Action::assign(Field::Port, 2).set(Field::Vlan, 9),
        ]);
        let mut rules: Vec<Rule> = (0..8).map(|h| exact(Field::IpDst, h, h)).collect();
        rules[5] = Rule::new(Match::new().with(Field::IpDst, 5), fanout);
        let table = FlowTable::from_rules(rules);
        let pk = Packet::new().with(Field::IpDst, 5);
        assert_eq!(table.compile().apply(&pk).len(), 2);
        assert_equivalent(&table, &pk);
    }

    #[test]
    fn match_add_contradiction_leaves_pattern_usable() {
        // The contradiction path: `add` refuses and leaves the match as-is,
        // so the resulting rule still hashes and matches identically.
        let mut m = Match::new().with(Field::IpDst, 4);
        assert!(!m.add(Field::IpDst, 5), "contradiction must be rejected");
        assert_eq!(m.get(Field::IpDst), Some(4));
        let mut rules: Vec<Rule> = (0..6).map(|h| exact(Field::IpDst, h, h)).collect();
        rules.insert(0, Rule::new(m, ActionSet::pass()));
        let table = FlowTable::from_rules(rules);
        for h in [4u64, 5] {
            assert_equivalent(&table, &Packet::new().with(Field::IpDst, h));
        }
    }

    #[test]
    fn packet_missing_a_signature_field_skips_the_segment() {
        let mut rules: Vec<Rule> = (0..8)
            .map(|h| {
                Rule::new(
                    Match::new().with(Field::IpDst, h).with(Field::Vlan, 1),
                    ActionSet::pass(),
                )
            })
            .collect();
        rules.push(Rule::new(Match::new(), ActionSet::single(Action::assign(Field::Port, 9))));
        let table = FlowTable::from_rules(rules);
        // No Vlan field: only the trailing wildcard can match.
        let pk = Packet::new().with(Field::IpDst, 3);
        assert_eq!(table.compile().lookup_index(&pk), Some(8));
        assert_equivalent(&table, &pk);
    }

    #[test]
    fn prefetch_activates_on_multi_segment_tables_and_agrees() {
        // Two hash runs over different signatures plus a trailing
        // wildcard: the prefetch union is {Vlan, IpDst}; packets hitting
        // either run, missing one union field, or missing both must all
        // resolve exactly as the linear reference does.
        let mut rules: Vec<Rule> = (0..8).map(|h| exact(Field::IpDst, h, h)).collect();
        rules.extend((0..8).map(|v| exact(Field::Vlan, v, v)));
        rules.push(Rule::new(Match::new(), ActionSet::single(Action::assign(Field::Port, 9))));
        let table = FlowTable::from_rules(rules);
        for pk in [
            Packet::new().with(Field::IpDst, 3),
            Packet::new().with(Field::Vlan, 5),
            Packet::new().with(Field::IpDst, 3).with(Field::Vlan, 5),
            Packet::new().with(Field::TcpSrc, 1),
            Packet::new(),
        ] {
            assert_equivalent(&table, &pk);
        }
        // Single-run tables skip the cache (nothing to share across
        // segments) and still agree.
        let single = FlowTable::from_rules((0..8).map(|h| exact(Field::IpDst, h, h)));
        assert_equivalent(&single, &Packet::new().with(Field::IpDst, 2));
    }

    #[test]
    fn segments_split_on_signature_change() {
        let mut rules: Vec<Rule> = (0..8).map(|h| exact(Field::IpDst, h, h)).collect();
        rules.extend((0..8).map(|v| exact(Field::Vlan, v, v)));
        rules.push(Rule::drop_all());
        let compiled = FlowTable::from_rules(rules).compile();
        // Two hash runs plus the trailing wildcard scan.
        assert_eq!(compiled.segment_count(), 3);
        assert_eq!(compiled.hashed_rule_count(), 16);
        assert_eq!(compiled.len(), 17);
    }

    #[test]
    fn lookup_path_labels_and_default() {
        assert_eq!(LookupPath::default(), LookupPath::Indexed);
        assert_eq!(LookupPath::Linear.label(), "linear");
        assert_eq!(LookupPath::Indexed.label(), "indexed");
    }

    /// Asserts a patched table agrees with a fresh compile of `target` (and
    /// with the linear reference) on a probe sweep that covers every rule's
    /// own pattern plus misses.
    fn assert_patched_equivalent(patched: &CompiledTable, target: &FlowTable) {
        let fresh = target.compile();
        assert_eq!(patched.len(), target.len(), "rule count after patch");
        let mut probes: Vec<Packet> = target.iter().map(|r| r.pattern.iter().collect()).collect();
        probes.push(Packet::new());
        probes.push(Packet::new().with(Field::IpDst, 999));
        for pk in &probes {
            assert_eq!(patched.lookup_index(pk), target.lookup_index(pk), "patched vs ref {pk}");
            assert_eq!(patched.lookup_index(pk), fresh.lookup_index(pk), "patched vs fresh {pk}");
            assert_eq!(patched.apply(pk), fresh.apply(pk), "apply {pk}");
        }
    }

    #[test]
    fn patch_empty_delta_is_a_no_op() {
        let table = FlowTable::from_rules((0..8).map(|h| exact(Field::IpDst, h, h)));
        let mut compiled = table.compile();
        let segments = compiled.segment_count();
        compiled.patch(&table.diff(&table.clone()));
        assert_eq!(compiled.segment_count(), segments);
        assert_patched_equivalent(&compiled, &table);
    }

    #[test]
    fn patch_removal_degrades_hash_run_to_short_scan() {
        // Exactly HASH_RUN_MIN rules: removing one leaves a 3-rule run that
        // a fresh compile would scan, not hash.
        let old = FlowTable::from_rules((0..4).map(|h| exact(Field::IpDst, h, h)));
        let kept: Vec<Rule> =
            old.iter().enumerate().filter(|(i, _)| *i != 1).map(|(_, r)| r.clone()).collect();
        let new = FlowTable::from_rules(kept);
        let delta = old.diff(&new);
        let mut compiled = old.compile();
        assert_eq!(compiled.hashed_rule_count(), 4);
        compiled.patch(&delta);
        assert_eq!(compiled.hashed_rule_count(), 0, "short remainder must scan");
        assert_patched_equivalent(&compiled, &new);
    }

    #[test]
    fn patch_splits_and_remerges_a_priority_run() {
        // Insert a different-signature rule mid-run (split), then remove it
        // again (merge): both patches must stay equivalent, and the merge
        // must restore a fully hashed run.
        let old = FlowTable::from_rules((0..8).map(|h| exact(Field::IpDst, h, h)));
        let splitter = exact(Field::Vlan, 7, 70);
        let mut split_rules: Vec<Rule> = old.iter().cloned().collect();
        split_rules.insert(4, splitter);
        let split = FlowTable::from_rules(split_rules);

        let mut compiled = old.compile();
        compiled.patch(&old.diff(&split));
        assert_patched_equivalent(&compiled, &split);

        compiled.patch(&split.diff(&old));
        assert_patched_equivalent(&compiled, &old);
        assert_eq!(compiled.hashed_rule_count(), 8, "run re-merges after the splitter goes");
    }

    #[test]
    fn patch_preserves_duplicate_priority_first_wins() {
        // Two rules carry the same value tuple; the hash map keeps the
        // first. Removing that first rule must re-point the fingerprint at
        // the survivor, exactly as a fresh compile would.
        let mut rules: Vec<Rule> = (0..6).map(|h| exact(Field::IpDst, h, h)).collect();
        rules[4] = exact(Field::IpDst, 1, 99); // duplicate of rules[1]
        let old = FlowTable::from_rules(rules);
        let survivors: Vec<Rule> =
            old.iter().enumerate().filter(|(i, _)| *i != 1).map(|(_, r)| r.clone()).collect();
        let new = FlowTable::from_rules(survivors);

        let pk = Packet::new().with(Field::IpDst, 1);
        let mut compiled = old.compile();
        assert_eq!(compiled.lookup_index(&pk), Some(1));
        compiled.patch(&old.diff(&new));
        assert_eq!(compiled.lookup_index(&pk), new.lookup_index(&pk));
        let hit = compiled.lookup(&pk).map(|r| r.actions.clone());
        assert_eq!(hit, new.lookup(&pk).map(|r| r.actions.clone()));
        assert_patched_equivalent(&compiled, &new);
    }

    #[test]
    fn patch_pure_append_and_pure_truncate() {
        let old = FlowTable::from_rules((0..6).map(|h| exact(Field::IpDst, h, h)));
        let mut grown = old.clone();
        for h in 6..12 {
            grown.push(exact(Field::IpDst, h, h));
        }
        let mut compiled = old.compile();
        compiled.patch(&old.diff(&grown));
        assert_patched_equivalent(&compiled, &grown);

        compiled.patch(&grown.diff(&old));
        assert_patched_equivalent(&compiled, &old);

        // All the way down to empty and back.
        compiled.patch(&old.diff(&FlowTable::new()));
        assert!(compiled.is_empty());
        compiled.patch(&FlowTable::new().diff(&old));
        assert_patched_equivalent(&compiled, &old);
    }

    #[test]
    fn patch_keeps_accumulated_lookup_stats() {
        let old = FlowTable::from_rules((0..8).map(|h| exact(Field::IpDst, h, h)));
        let mut compiled = old.compile();
        assert_eq!(compiled.lookup_index(&Packet::new().with(Field::IpDst, 3)), Some(3));
        let (hits_before, _) = compiled.lookup_stats();
        assert_eq!(hits_before, 1);
        let mut new = old.clone();
        new.push(exact(Field::IpDst, 8, 8));
        compiled.patch(&old.diff(&new));
        assert_eq!(compiled.lookup_stats().0, hits_before, "counters survive patching");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::action::{Action, ActionSet};
    use crate::flowtable::Match;
    use proptest::prelude::*;

    /// A small field universe keeps random packets colliding with random
    /// rules often enough to exercise hits, shadows, and misses alike.
    const FIELDS: [Field; 5] = [Field::Port, Field::Vlan, Field::IpSrc, Field::IpDst, Field::Tag];

    fn arb_signature() -> impl Strategy<Value = Vec<Field>> {
        proptest::collection::vec(0usize..FIELDS.len(), 0..4).prop_map(|ix| {
            let mut fields: Vec<Field> = ix.into_iter().map(|i| FIELDS[i]).collect();
            fields.sort();
            fields.dedup();
            fields
        })
    }

    fn arb_actions() -> impl Strategy<Value = ActionSet> {
        prop_oneof![
            Just(ActionSet::drop()),
            Just(ActionSet::pass()),
            (0usize..FIELDS.len(), 0u64..4)
                .prop_map(|(i, v)| ActionSet::single(Action::assign(FIELDS[i], v))),
            (0usize..FIELDS.len(), 0u64..4, 0usize..FIELDS.len(), 0u64..4).prop_map(
                |(i, v, j, w)| {
                    // Multicast: two actions (which may coincide).
                    ActionSet::from_iter([
                        Action::assign(FIELDS[i], v),
                        Action::assign(FIELDS[j], w),
                    ])
                }
            ),
        ]
    }

    fn rule_from(sig: &[Field], values: &[Value], actions: ActionSet) -> Rule {
        let pattern: Match = sig.iter().copied().zip(values.iter().copied()).collect();
        Rule::new(pattern, actions)
    }

    /// Fully random rules: signatures change rule to rule, so compiled
    /// tables are scan-heavy with occasional short hash runs.
    fn arb_rules_random() -> impl Strategy<Value = Vec<Rule>> {
        let rule = (arb_signature(), proptest::collection::vec(0u64..4, 4), arb_actions())
            .prop_map(|(sig, vals, actions)| rule_from(&sig, &vals, actions));
        proptest::collection::vec(rule, 0..48)
    }

    /// Blocky rules: a few long same-signature runs (up to 8 × 64 = 512
    /// rules), the shape the compilers emit and the index hashes.
    fn arb_rules_blocky() -> impl Strategy<Value = Vec<Rule>> {
        let block = (
            arb_signature(),
            proptest::collection::vec(
                (proptest::collection::vec(0u64..6, 4), arb_actions()),
                1..65,
            ),
        )
            .prop_map(|(sig, rows)| {
                rows.into_iter()
                    .map(|(vals, actions)| rule_from(&sig, &vals, actions))
                    .collect::<Vec<Rule>>()
            });
        proptest::collection::vec(block, 1..9)
            .prop_map(|blocks| blocks.into_iter().flatten().collect())
    }

    fn arb_table() -> impl Strategy<Value = FlowTable> {
        prop_oneof![
            arb_rules_random().prop_map(FlowTable::from_rules),
            arb_rules_blocky().prop_map(FlowTable::from_rules),
        ]
    }

    fn arb_packet() -> impl Strategy<Value = Packet> {
        proptest::collection::vec((0usize..FIELDS.len(), 0u64..6), 0..5)
            .prop_map(|fs| fs.into_iter().map(|(i, v)| (FIELDS[i], v)).collect())
    }

    /// Recipes for packets *derived from the table*: take rule
    /// `pick % len`'s own pattern (a guaranteed candidate hit) and
    /// optionally overwrite one field — producing near-misses, shadowed
    /// hits, and wildcard fallthroughs.
    fn arb_derivations() -> impl Strategy<Value = Vec<(usize, Option<(usize, Value)>)>> {
        proptest::collection::vec(
            (0usize..4096, proptest::option::of((0usize..FIELDS.len(), 0u64..6))),
            0..6,
        )
    }

    fn derived_packets(
        table: &FlowTable,
        picks: &[(usize, Option<(usize, Value)>)],
    ) -> Vec<Packet> {
        let rules: Vec<&Rule> = table.iter().collect();
        if rules.is_empty() {
            return Vec::new();
        }
        picks
            .iter()
            .map(|&(pick, tweak)| {
                let mut pk: Packet = rules[pick % rules.len()].pattern.iter().collect();
                if let Some((i, v)) = tweak {
                    pk.set(FIELDS[i], v);
                }
                pk
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // The core correctness gate: `CompiledTable::apply` is
        // extensionally equal to the reference `FlowTable::apply`.
        #[test]
        fn compiled_apply_equals_reference(
            table in arb_table(),
            pks in proptest::collection::vec(arb_packet(), 1..8),
            picks in arb_derivations(),
        ) {
            let compiled = table.compile();
            prop_assert_eq!(compiled.len(), table.len());
            for pk in pks.iter().chain(derived_packets(&table, &picks).iter()) {
                prop_assert_eq!(compiled.apply(pk), table.apply(pk), "apply diverged on {}", pk);
            }
        }

        // The index resolves to the *same rule index* as the reference
        // linear scan — not just an extensionally equal rule.
        #[test]
        fn compiled_lookup_index_equals_reference(
            table in arb_table(),
            pks in proptest::collection::vec(arb_packet(), 1..8),
            picks in arb_derivations(),
        ) {
            let compiled = table.compile();
            for pk in pks.iter().chain(derived_packets(&table, &picks).iter()) {
                let want = table.lookup_index(pk);
                prop_assert_eq!(compiled.lookup_index(pk), want, "index diverged on {}", pk);
                prop_assert_eq!(
                    compiled.lookup(pk),
                    table.lookup(pk),
                    "rule diverged on {}", pk
                );
            }
        }

        // Structural sanity: segments partition the rule list, and every
        // rule is reachable (hashed or scanned).
        #[test]
        fn segments_partition_rules(table in arb_rules_blocky().prop_map(FlowTable::from_rules)) {
            let compiled = table.compile();
            prop_assert!(compiled.hashed_rule_count() <= compiled.len());
            // Every rule's own pattern-packet resolves to a rule at least
            // as high priority as itself, on both paths equally.
            for (i, rule) in table.iter().enumerate() {
                let pk: Packet = rule.pattern.iter().collect();
                let got = compiled.lookup_index(&pk);
                prop_assert_eq!(got, table.lookup_index(&pk));
                prop_assert!(got.is_some_and(|g| g <= i), "rule {} unreachable", i);
            }
        }

        // Delta path: patching a compiled table with the diff to an
        // arbitrary successor is lookup-equivalent to compiling the
        // successor from scratch — on random packets and on packets derived
        // from the successor's own rules.
        #[test]
        fn patch_equals_scratch_compile(
            old in arb_table(),
            new in arb_table(),
            pks in proptest::collection::vec(arb_packet(), 1..8),
            picks in arb_derivations(),
        ) {
            let delta = old.diff(&new);
            let mut patched = old.compile();
            patched.patch(&delta);
            prop_assert_eq!(patched.len(), new.len());
            for pk in pks.iter().chain(derived_packets(&new, &picks).iter()) {
                prop_assert_eq!(
                    patched.lookup_index(pk),
                    new.lookup_index(pk),
                    "patched diverged from reference on {}", pk
                );
                prop_assert_eq!(patched.apply(pk), new.apply(pk), "apply diverged on {}", pk);
            }
        }

        // A chain of patches (the per-tag deployment's shape: each config's
        // table derived from its predecessor's) stays equivalent at every
        // link, including after hash runs split and re-merge repeatedly.
        #[test]
        fn patch_chain_stays_equivalent(
            chain in proptest::collection::vec(arb_table(), 2..5),
            pks in proptest::collection::vec(arb_packet(), 1..6),
        ) {
            let mut patched = chain[0].compile();
            for window in chain.windows(2) {
                patched.patch(&window[0].diff(&window[1]));
                for pk in &pks {
                    prop_assert_eq!(patched.lookup_index(pk), window[1].lookup_index(pk));
                }
                for rule in window[1].iter() {
                    let pk: Packet = rule.pattern.iter().collect();
                    prop_assert_eq!(patched.lookup_index(&pk), window[1].lookup_index(&pk));
                }
            }
        }
    }
}
