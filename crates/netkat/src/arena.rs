//! Hash-consed packet interning: an arena mapping every distinct packet to
//! a dense [`PacketId`].
//!
//! The simulator's hot path used to move owned [`Packet`]s — three clones
//! per hop (trace ingress record, trace egress record, the in-flight copy)
//! — and the per-hop header churn is tiny: a packet crossing a network
//! keeps the same headers at almost every step, and steady-state traffic
//! repeats the same handful of header combinations millions of times. A
//! [`PacketArena`] exploits that redundancy:
//!
//! * every distinct packet is stored **once**; an id is a `u32` index, so
//!   "cloning" a packet is a register copy;
//! * interning an already-seen packet is one fingerprint probe — no
//!   allocation;
//! * the per-hop mutations ([`set_loc`](PacketArena::set_loc),
//!   [`with`](PacketArena::with), [`take_loc`](PacketArena::take_loc)) run
//!   through a reused scratch buffer (the *splice-intern* fast path): the
//!   candidate packet is built in place and only cloned into the arena the
//!   first time it is ever seen.
//!
//! Ids are only meaningful relative to the arena that issued them, and an
//! id, once issued, permanently resolves to the same packet value —
//! interning is append-only, so recorded ids (e.g. in a trace) stay valid
//! for the lifetime of the arena.
//!
//! # Examples
//!
//! ```
//! use netkat::{Field, Loc, Packet, PacketArena};
//! let mut arena = PacketArena::new();
//! let a = arena.intern(Packet::new().with(Field::IpDst, 4));
//! let b = arena.intern(Packet::new().with(Field::IpDst, 4));
//! assert_eq!(a, b); // hash-consed: one slot
//! let moved = arena.set_loc(a, Loc::new(7, 1));
//! assert_eq!(arena.get(moved).loc(), Some(Loc::new(7, 1)));
//! assert_eq!(arena.get(a).loc(), None); // the original id is untouched
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;

use crate::field::{Field, Value};
use crate::flowindex::{fp_mix, IdentityHasher, FP_SEED};
use crate::packet::{Loc, Packet};

/// A handle to an interned [`Packet`] — a dense index into the
/// [`PacketArena`] that issued it. Copying an id *is* cloning the packet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(u32);

impl PacketId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The content fingerprint of a packet: every `(field, value)` pair, in the
/// record's canonical sorted order, chained through the SplitMix-style
/// mixer. Two structurally equal packets always fingerprint identically
/// regardless of the insertion order that built them, because [`Packet`]
/// keeps its record sorted.
fn fingerprint(pk: &Packet) -> u64 {
    let mut h = FP_SEED;
    for (f, v) in pk.iter() {
        h = fp_mix(h, f.code());
        h = fp_mix(h, v);
    }
    h
}

/// A hash-consing packet arena (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct PacketArena {
    /// The interned packets; a [`PacketId`] indexes this.
    slots: Vec<Packet>,
    /// `fingerprint → first slot carrying it`. A flat map (no per-entry
    /// candidate list) keeps the steady-state probe one lookup and one
    /// content compare; packets whose fingerprint collides with a
    /// *different* packet's go to `collisions` instead.
    index: HashMap<u64, u32, BuildHasherDefault<IdentityHasher>>,
    /// Slots displaced by a genuine 64-bit fingerprint collision —
    /// statistically never populated; linear-scanned for correctness.
    collisions: Vec<u32>,
    /// Reused buffer for building mutation candidates without allocating.
    scratch: Packet,
}

/// Outcome of a content probe.
enum Probe {
    /// Already interned here.
    Hit(PacketId),
    /// Absent; its fingerprint is unclaimed.
    Vacant,
    /// Absent; a different packet owns the fingerprint's index entry.
    Collision,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Creates an empty arena with room for `capacity` distinct packets.
    ///
    /// The arena grows past this freely; the capacity only pre-sizes the
    /// slot vector and the fingerprint map.
    pub fn with_capacity(capacity: usize) -> PacketArena {
        PacketArena {
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            collisions: Vec::new(),
            scratch: Packet::new(),
        }
    }

    /// Number of distinct packets interned.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resolves an id to its packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    pub fn get(&self, id: PacketId) -> &Packet {
        &self.slots[id.index()]
    }

    /// Content probe for `pk` under fingerprint `fp`.
    ///
    /// Equal content always implies an equal fingerprint, so a packet
    /// absent from both the index entry and the collision list is absent
    /// from the arena.
    fn probe(&self, fp: u64, pk: &Packet) -> Probe {
        match self.index.get(&fp) {
            None => Probe::Vacant,
            Some(&i) if self.slots[i as usize] == *pk => Probe::Hit(PacketId(i)),
            Some(_) => {
                for &i in &self.collisions {
                    if self.slots[i as usize] == *pk {
                        return Probe::Hit(PacketId(i));
                    }
                }
                Probe::Collision
            }
        }
    }

    /// Appends `pk` (already known absent) under fingerprint `fp`.
    fn insert(&mut self, fp: u64, pk: Packet, probe: Probe) -> PacketId {
        let i = u32::try_from(self.slots.len()).expect("arena holds at most 2^32 packets");
        self.slots.push(pk);
        match probe {
            Probe::Vacant => {
                self.index.insert(fp, i);
            }
            Probe::Collision => self.collisions.push(i),
            Probe::Hit(_) => unreachable!("insert is only reached on a miss"),
        }
        PacketId(i)
    }

    /// Interns an owned packet, returning the id of its unique slot.
    pub fn intern(&mut self, pk: Packet) -> PacketId {
        let fp = fingerprint(&pk);
        match self.probe(fp, &pk) {
            Probe::Hit(id) => id,
            miss => self.insert(fp, pk, miss),
        }
    }

    /// Interns by reference: the packet is only cloned the first time it is
    /// seen.
    pub fn intern_ref(&mut self, pk: &Packet) -> PacketId {
        let fp = fingerprint(pk);
        match self.probe(fp, pk) {
            Probe::Hit(id) => id,
            miss => self.insert(fp, pk.clone(), miss),
        }
    }

    /// Interns the scratch buffer, cloning it only on a miss.
    fn intern_scratch(&mut self) -> PacketId {
        let fp = fingerprint(&self.scratch);
        match self.probe(fp, &self.scratch) {
            Probe::Hit(id) => id,
            miss => {
                let pk = self.scratch.clone();
                self.insert(fp, pk, miss)
            }
        }
    }

    /// Returns the id of `get(id)` moved to `loc` (the paper's
    /// `pkt[sw:pt ← loc]`). The original id still resolves to the original
    /// packet.
    ///
    /// This is the splice-intern fast path: the candidate is built in the
    /// reused scratch buffer via [`Packet::set_loc`]'s front-splice, so the
    /// steady-state cost (candidate already interned) is one copy into
    /// scratch plus one fingerprint probe — no allocation.
    pub fn set_loc(&mut self, id: PacketId, loc: Loc) -> PacketId {
        self.scratch.clone_from(&self.slots[id.index()]);
        self.scratch.set_loc(loc);
        self.intern_scratch()
    }

    /// Returns the id of `get(id)` with `field` set to `value`; the
    /// original id is untouched. Same scratch-buffer fast path as
    /// [`set_loc`](PacketArena::set_loc).
    pub fn with(&mut self, id: PacketId, field: Field, value: Value) -> PacketId {
        self.scratch.clone_from(&self.slots[id.index()]);
        self.scratch.set(field, value);
        self.intern_scratch()
    }

    /// Returns the id of `get(id)` with both location fields removed, plus
    /// the removed `(switch, port)` values — the per-hop inverse of
    /// [`set_loc`](PacketArena::set_loc). The original id is untouched.
    pub fn take_loc(&mut self, id: PacketId) -> (PacketId, Option<Value>, Option<Value>) {
        self.scratch.clone_from(&self.slots[id.index()]);
        let (sw, pt) = self.scratch.take_loc();
        (self.intern_scratch(), sw, pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_ids_resolve() {
        let mut arena = PacketArena::new();
        let a = arena.intern(Packet::new().with(Field::IpDst, 1));
        let b = arena.intern(Packet::new().with(Field::IpDst, 2));
        let c = arena.intern(Packet::new().with(Field::IpDst, 1));
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).get(Field::IpDst), Some(1));
        assert_eq!(arena.get(b).get(Field::IpDst), Some(2));
        // By-reference interning agrees with by-value interning.
        assert_eq!(arena.intern_ref(&Packet::new().with(Field::IpDst, 2)), b);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn field_order_canonicalization() {
        // The same record built in different insertion orders interns to
        // one id: packets keep their fields sorted, and the fingerprint
        // walks the sorted record.
        let mut arena = PacketArena::new();
        let a = arena.intern(Packet::new().with(Field::IpDst, 4).with(Field::Vlan, 2));
        let b = arena.intern(Packet::new().with(Field::Vlan, 2).with(Field::IpDst, 4));
        let c = arena.intern([(Field::Vlan, 2), (Field::IpDst, 4)].into_iter().collect::<Packet>());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn set_loc_splice_intern() {
        let mut arena = PacketArena::new();
        let base = arena.intern(Packet::new().with(Field::IpDst, 9));
        let at1 = arena.set_loc(base, Loc::new(1, 1));
        assert_eq!(arena.get(at1).loc(), Some(Loc::new(1, 1)));
        assert_eq!(arena.get(at1).get(Field::IpDst), Some(9));
        // Original id untouched; re-splicing the same location is a hit.
        assert_eq!(arena.get(base).loc(), None);
        assert_eq!(arena.set_loc(base, Loc::new(1, 1)), at1);
        assert_eq!(arena.len(), 2);
        // Moving an already-located packet replaces, not accumulates.
        let at2 = arena.set_loc(at1, Loc::new(2, 3));
        assert_eq!(arena.get(at2).loc(), Some(Loc::new(2, 3)));
        assert_eq!(arena.get(at2).len(), 3);
        // And interning the equivalent owned packet lands on the same slot.
        let owned = Packet::new().with(Field::IpDst, 9);
        let mut located = owned.clone();
        located.set_loc(Loc::new(2, 3));
        assert_eq!(arena.intern(located), at2);
    }

    #[test]
    fn with_writes_one_field() {
        let mut arena = PacketArena::new();
        let a = arena.intern(Packet::new().with(Field::Vlan, 1));
        let b = arena.with(a, Field::Vlan, 2);
        let c = arena.with(a, Field::IpSrc, 5);
        assert_eq!(arena.get(b).get(Field::Vlan), Some(2));
        assert_eq!(arena.get(c).get(Field::Vlan), Some(1));
        assert_eq!(arena.get(c).get(Field::IpSrc), Some(5));
        // Overwriting with the current value is the identity.
        assert_eq!(arena.with(a, Field::Vlan, 1), a);
    }

    #[test]
    fn ids_stable_across_take_loc() {
        let mut arena = PacketArena::new();
        let located = arena.intern(Packet::at(Loc::new(4, 7)).with(Field::IpDst, 2));
        let (bare, sw, pt) = arena.take_loc(located);
        assert_eq!((sw, pt), (Some(4), Some(7)));
        assert_eq!(arena.get(bare).loc(), None);
        assert_eq!(arena.get(bare).get(Field::IpDst), Some(2));
        // The located id still resolves to the located packet, and the
        // round trip lands back on it.
        assert_eq!(arena.get(located).loc(), Some(Loc::new(4, 7)));
        assert_eq!(arena.set_loc(bare, Loc::new(4, 7)), located);
        // take_loc on an unlocated packet is the identity.
        assert_eq!(arena.take_loc(bare), (bare, None, None));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn growth_past_initial_capacity() {
        let mut arena = PacketArena::with_capacity(2);
        let ids: Vec<PacketId> =
            (0..300).map(|v| arena.intern(Packet::new().with(Field::IpDst, v))).collect();
        assert_eq!(arena.len(), 300);
        // Every id issued before the growth still resolves correctly, and
        // re-interning is a hit everywhere.
        for (v, &id) in ids.iter().enumerate() {
            assert_eq!(arena.get(id).get(Field::IpDst), Some(v as u64));
            assert_eq!(arena.intern(Packet::new().with(Field::IpDst, v as u64)), id);
        }
        assert_eq!(arena.len(), 300);
    }

    #[test]
    fn empty_packet_interns() {
        let mut arena = PacketArena::new();
        assert!(arena.is_empty());
        let a = arena.intern(Packet::new());
        assert_eq!(arena.intern(Packet::new()), a);
        assert!(arena.get(a).is_empty());
        assert!(!arena.is_empty());
    }
}
