//! Hash-consed packet interning: an arena mapping every distinct packet to
//! a dense [`PacketId`].
//!
//! The simulator's hot path used to move owned [`Packet`]s — three clones
//! per hop (trace ingress record, trace egress record, the in-flight copy)
//! — and the per-hop header churn is tiny: a packet crossing a network
//! keeps the same headers at almost every step, and steady-state traffic
//! repeats the same handful of header combinations millions of times. A
//! [`PacketArena`] exploits that redundancy:
//!
//! * every distinct packet is stored **once**; an id is a `u32` index, so
//!   "cloning" a packet is a register copy;
//! * interning an already-seen packet is one fingerprint probe — no
//!   allocation;
//! * the per-hop mutations ([`set_loc`](PacketArena::set_loc),
//!   [`with`](PacketArena::with), [`take_loc`](PacketArena::take_loc)) run
//!   through a reused scratch buffer (the *splice-intern* fast path): the
//!   candidate packet is built in place and only cloned into the arena the
//!   first time it is ever seen.
//!
//! Ids are only meaningful relative to the arena that issued them. By
//! default interning is append-only, so an id, once issued, permanently
//! resolves to the same packet value — recorded ids (e.g. in a trace) stay
//! valid for the lifetime of the arena. An arena with **recycling**
//! enabled ([`enable_recycling`](PacketArena::enable_recycling)) trades
//! that permanence for bounded memory: callers refcount ids
//! ([`retain`](PacketArena::retain) / [`release`](PacketArena::release))
//! and the arena reuses the slots of packets nobody references, so the
//! arena's footprint tracks the packets *live* at any instant rather than
//! every packet ever seen. Recycling is only sound when no id outlives its
//! references — the simulator enables it exactly in stats-only runs, where
//! no trace record retains an id.
//!
//! # Examples
//!
//! ```
//! use netkat::{Field, Loc, Packet, PacketArena};
//! let mut arena = PacketArena::new();
//! let a = arena.intern(Packet::new().with(Field::IpDst, 4));
//! let b = arena.intern(Packet::new().with(Field::IpDst, 4));
//! assert_eq!(a, b); // hash-consed: one slot
//! let moved = arena.set_loc(a, Loc::new(7, 1));
//! assert_eq!(arena.get(moved).loc(), Some(Loc::new(7, 1)));
//! assert_eq!(arena.get(a).loc(), None); // the original id is untouched
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;

use crate::field::{Field, Value};
use crate::flowindex::{fp_mix, IdentityHasher, FP_SEED};
use crate::packet::{Loc, Packet};

/// A handle to an interned [`Packet`] — a dense index into the
/// [`PacketArena`] that issued it. Copying an id *is* cloning the packet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(u32);

impl PacketId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The content fingerprint of a packet: every `(field, value)` pair, in the
/// record's canonical sorted order, chained through the SplitMix-style
/// mixer. Two structurally equal packets always fingerprint identically
/// regardless of the insertion order that built them, because [`Packet`]
/// keeps its record sorted.
fn fingerprint(pk: &Packet) -> u64 {
    let mut h = FP_SEED;
    for (f, v) in pk.iter() {
        h = fp_mix(h, f.code());
        h = fp_mix(h, v);
    }
    h
}

/// Interning counters, harvested by the telemetry layer at the end of a
/// run. Hits and misses partition the intern calls (hit rate is
/// `hits / (hits + misses)`); `recycled` counts misses that reused a
/// freed slot instead of growing the arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Intern calls answered by an existing slot.
    pub hits: u64,
    /// Intern calls that stored a new packet.
    pub misses: u64,
    /// Misses served from the recycler's free list.
    pub recycled: u64,
}

/// A hash-consing packet arena (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct PacketArena {
    /// Interning counters (always on: one add per intern).
    stats: ArenaStats,
    /// The interned packets; a [`PacketId`] indexes this.
    slots: Vec<Packet>,
    /// `fingerprint → first slot carrying it`. A flat map (no per-entry
    /// candidate list) keeps the steady-state probe one lookup and one
    /// content compare; packets whose fingerprint collides with a
    /// *different* packet's go to `collisions` instead.
    index: HashMap<u64, u32, BuildHasherDefault<IdentityHasher>>,
    /// Slots displaced by a genuine 64-bit fingerprint collision —
    /// statistically never populated; linear-scanned for correctness.
    collisions: Vec<u32>,
    /// Reused buffer for building mutation candidates without allocating.
    scratch: Packet,
    /// Refcounted slot reuse (see the module docs); `None` keeps the
    /// default append-only behavior.
    recycler: Option<Recycler>,
}

/// Sentinel refcount marking a freed, reusable slot.
const FREE: u32 = u32::MAX;

/// State for refcounted slot reuse.
#[derive(Clone, Debug, Default)]
struct Recycler {
    /// Per-slot reference count; [`FREE`] marks a freed slot.
    rc: Vec<u32>,
    /// Per-slot fingerprint, so freeing a slot can drop its index entry.
    fp: Vec<u64>,
    /// Freed slots awaiting reuse.
    free: Vec<u32>,
    /// Slots interned since the last [`sweep`](PacketArena::sweep) —
    /// possibly intermediates nobody retained.
    newborns: Vec<u32>,
}

/// Outcome of a content probe.
enum Probe {
    /// Already interned here.
    Hit(PacketId),
    /// Absent; its fingerprint is unclaimed.
    Vacant,
    /// Absent; a different packet owns the fingerprint's index entry.
    Collision,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Creates an empty arena with room for `capacity` distinct packets.
    ///
    /// The arena grows past this freely; the capacity only pre-sizes the
    /// slot vector and the fingerprint map.
    pub fn with_capacity(capacity: usize) -> PacketArena {
        PacketArena {
            stats: ArenaStats::default(),
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            collisions: Vec::new(),
            scratch: Packet::new(),
            recycler: None,
        }
    }

    /// Switches this (still empty) arena to refcounted slot reuse.
    ///
    /// Afterwards every id a caller wants to keep across interning calls
    /// must be [`retain`](PacketArena::retain)ed, and
    /// [`release`](PacketArena::release)d when done: a slot whose count
    /// reaches zero is freed and its storage reused by a later intern.
    /// Freshly interned ids start at count zero and survive until the next
    /// [`sweep`](PacketArena::sweep), giving callers a window to retain
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if anything has already been interned — recycling cannot
    /// retroactively learn which existing ids are referenced.
    pub fn enable_recycling(&mut self) {
        assert!(self.slots.is_empty(), "enable recycling before interning");
        self.recycler = Some(Recycler::default());
    }

    /// Returns `true` if this arena reuses the slots of unreferenced
    /// packets.
    pub fn recycling(&self) -> bool {
        self.recycler.is_some()
    }

    /// Adds a reference to `id`, keeping its slot live across
    /// [`sweep`](PacketArena::sweep)s. No-op unless recycling is enabled.
    pub fn retain(&mut self, id: PacketId) {
        if let Some(r) = &mut self.recycler {
            debug_assert_ne!(r.rc[id.index()], FREE, "retain of a freed id");
            r.rc[id.index()] += 1;
        }
    }

    /// Drops a reference to `id`; at zero the slot is freed for reuse and
    /// `id` must no longer be resolved. No-op unless recycling is enabled.
    pub fn release(&mut self, id: PacketId) {
        if self.recycler.is_some() {
            let r = self.recycler.as_mut().expect("checked above");
            let rc = &mut r.rc[id.index()];
            debug_assert!(*rc != FREE && *rc > 0, "release without a matching retain");
            *rc -= 1;
            if *rc == 0 {
                self.free_slot(id.index() as u32);
            }
        }
    }

    /// Frees every slot interned since the last sweep that nobody
    /// [`retain`](PacketArena::retain)ed — the intermediates of mutation
    /// chains. Callers with a natural unit of work (the simulator: one
    /// event dispatch) sweep at its end, once all ids worth keeping have
    /// been retained. No-op unless recycling is enabled.
    pub fn sweep(&mut self) {
        let Some(r) = &mut self.recycler else { return };
        if r.newborns.is_empty() {
            return;
        }
        let newborns = std::mem::take(&mut r.newborns);
        for i in newborns {
            let rc = self.recycler.as_ref().expect("checked above").rc[i as usize];
            if rc == 0 {
                self.free_slot(i);
            }
        }
    }

    /// Unindexes slot `i`, clears its storage, and queues it for reuse.
    fn free_slot(&mut self, i: u32) {
        let r = self.recycler.as_mut().expect("free_slot requires recycling");
        let fp = r.fp[i as usize];
        r.rc[i as usize] = FREE;
        r.free.push(i);
        if self.index.get(&fp) == Some(&i) {
            self.index.remove(&fp);
            // Promote a colliding slot with the same fingerprint (if any)
            // into the index, preserving dedup for its content.
            let r = self.recycler.as_ref().expect("checked above");
            if let Some(pos) = self.collisions.iter().position(|&c| r.fp[c as usize] == fp) {
                let j = self.collisions.swap_remove(pos);
                self.index.insert(fp, j);
            }
        } else if let Some(pos) = self.collisions.iter().position(|&c| c == i) {
            self.collisions.swap_remove(pos);
        }
        self.slots[i as usize] = Packet::new();
    }

    /// Number of slots in use — distinct packets interned, or, with
    /// recycling enabled, the high-water mark of simultaneously live
    /// packets (freed slots are counted until reused).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The interning counters accumulated so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Resolves an id to its packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    pub fn get(&self, id: PacketId) -> &Packet {
        debug_assert!(
            self.recycler.as_ref().is_none_or(|r| r.rc[id.index()] != FREE),
            "resolve of a freed id"
        );
        &self.slots[id.index()]
    }

    /// Content probe for `pk` under fingerprint `fp`.
    ///
    /// Equal content always implies an equal fingerprint, so a packet
    /// absent from both the index entry and the collision list is absent
    /// from the arena.
    fn probe(&self, fp: u64, pk: &Packet) -> Probe {
        match self.index.get(&fp) {
            None => Probe::Vacant,
            Some(&i) if self.slots[i as usize] == *pk => Probe::Hit(PacketId(i)),
            Some(_) => {
                for &i in &self.collisions {
                    if self.slots[i as usize] == *pk {
                        return Probe::Hit(PacketId(i));
                    }
                }
                Probe::Collision
            }
        }
    }

    /// Stores `pk` (already known absent) under fingerprint `fp`, reusing a
    /// freed slot when recycling has one.
    fn insert(&mut self, fp: u64, pk: Packet, probe: Probe) -> PacketId {
        let reused = self.recycler.as_mut().and_then(|r| r.free.pop());
        self.stats.misses += 1;
        self.stats.recycled += reused.is_some() as u64;
        let i = match reused {
            Some(i) => {
                self.slots[i as usize] = pk;
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("arena holds at most 2^32 packets");
                self.slots.push(pk);
                i
            }
        };
        if let Some(r) = &mut self.recycler {
            if (i as usize) == r.rc.len() {
                r.rc.push(0);
                r.fp.push(fp);
            } else {
                r.rc[i as usize] = 0;
                r.fp[i as usize] = fp;
            }
            r.newborns.push(i);
        }
        match probe {
            Probe::Vacant => {
                self.index.insert(fp, i);
            }
            Probe::Collision => self.collisions.push(i),
            Probe::Hit(_) => unreachable!("insert is only reached on a miss"),
        }
        PacketId(i)
    }

    /// Interns an owned packet, returning the id of its unique slot.
    pub fn intern(&mut self, pk: Packet) -> PacketId {
        let fp = fingerprint(&pk);
        match self.probe(fp, &pk) {
            Probe::Hit(id) => {
                self.stats.hits += 1;
                id
            }
            miss => self.insert(fp, pk, miss),
        }
    }

    /// Interns by reference: the packet is only cloned the first time it is
    /// seen.
    pub fn intern_ref(&mut self, pk: &Packet) -> PacketId {
        let fp = fingerprint(pk);
        match self.probe(fp, pk) {
            Probe::Hit(id) => {
                self.stats.hits += 1;
                id
            }
            miss => self.insert(fp, pk.clone(), miss),
        }
    }

    /// Interns the scratch buffer, cloning it only on a miss.
    fn intern_scratch(&mut self) -> PacketId {
        let fp = fingerprint(&self.scratch);
        match self.probe(fp, &self.scratch) {
            Probe::Hit(id) => {
                self.stats.hits += 1;
                id
            }
            miss => {
                let pk = self.scratch.clone();
                self.insert(fp, pk, miss)
            }
        }
    }

    /// Returns the id of `get(id)` moved to `loc` (the paper's
    /// `pkt[sw:pt ← loc]`). The original id still resolves to the original
    /// packet.
    ///
    /// This is the splice-intern fast path: the candidate is built in the
    /// reused scratch buffer via [`Packet::set_loc`]'s front-splice, so the
    /// steady-state cost (candidate already interned) is one copy into
    /// scratch plus one fingerprint probe — no allocation.
    pub fn set_loc(&mut self, id: PacketId, loc: Loc) -> PacketId {
        self.scratch.clone_from(&self.slots[id.index()]);
        self.scratch.set_loc(loc);
        self.intern_scratch()
    }

    /// Returns the id of `get(id)` with `field` set to `value`; the
    /// original id is untouched. Same scratch-buffer fast path as
    /// [`set_loc`](PacketArena::set_loc).
    pub fn with(&mut self, id: PacketId, field: Field, value: Value) -> PacketId {
        self.scratch.clone_from(&self.slots[id.index()]);
        self.scratch.set(field, value);
        self.intern_scratch()
    }

    /// Returns the id of `get(id)` with both location fields removed, plus
    /// the removed `(switch, port)` values — the per-hop inverse of
    /// [`set_loc`](PacketArena::set_loc). The original id is untouched.
    pub fn take_loc(&mut self, id: PacketId) -> (PacketId, Option<Value>, Option<Value>) {
        self.scratch.clone_from(&self.slots[id.index()]);
        let (sw, pt) = self.scratch.take_loc();
        (self.intern_scratch(), sw, pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_ids_resolve() {
        let mut arena = PacketArena::new();
        let a = arena.intern(Packet::new().with(Field::IpDst, 1));
        let b = arena.intern(Packet::new().with(Field::IpDst, 2));
        let c = arena.intern(Packet::new().with(Field::IpDst, 1));
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).get(Field::IpDst), Some(1));
        assert_eq!(arena.get(b).get(Field::IpDst), Some(2));
        // By-reference interning agrees with by-value interning.
        assert_eq!(arena.intern_ref(&Packet::new().with(Field::IpDst, 2)), b);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn field_order_canonicalization() {
        // The same record built in different insertion orders interns to
        // one id: packets keep their fields sorted, and the fingerprint
        // walks the sorted record.
        let mut arena = PacketArena::new();
        let a = arena.intern(Packet::new().with(Field::IpDst, 4).with(Field::Vlan, 2));
        let b = arena.intern(Packet::new().with(Field::Vlan, 2).with(Field::IpDst, 4));
        let c = arena.intern([(Field::Vlan, 2), (Field::IpDst, 4)].into_iter().collect::<Packet>());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn set_loc_splice_intern() {
        let mut arena = PacketArena::new();
        let base = arena.intern(Packet::new().with(Field::IpDst, 9));
        let at1 = arena.set_loc(base, Loc::new(1, 1));
        assert_eq!(arena.get(at1).loc(), Some(Loc::new(1, 1)));
        assert_eq!(arena.get(at1).get(Field::IpDst), Some(9));
        // Original id untouched; re-splicing the same location is a hit.
        assert_eq!(arena.get(base).loc(), None);
        assert_eq!(arena.set_loc(base, Loc::new(1, 1)), at1);
        assert_eq!(arena.len(), 2);
        // Moving an already-located packet replaces, not accumulates.
        let at2 = arena.set_loc(at1, Loc::new(2, 3));
        assert_eq!(arena.get(at2).loc(), Some(Loc::new(2, 3)));
        assert_eq!(arena.get(at2).len(), 3);
        // And interning the equivalent owned packet lands on the same slot.
        let owned = Packet::new().with(Field::IpDst, 9);
        let mut located = owned.clone();
        located.set_loc(Loc::new(2, 3));
        assert_eq!(arena.intern(located), at2);
    }

    #[test]
    fn with_writes_one_field() {
        let mut arena = PacketArena::new();
        let a = arena.intern(Packet::new().with(Field::Vlan, 1));
        let b = arena.with(a, Field::Vlan, 2);
        let c = arena.with(a, Field::IpSrc, 5);
        assert_eq!(arena.get(b).get(Field::Vlan), Some(2));
        assert_eq!(arena.get(c).get(Field::Vlan), Some(1));
        assert_eq!(arena.get(c).get(Field::IpSrc), Some(5));
        // Overwriting with the current value is the identity.
        assert_eq!(arena.with(a, Field::Vlan, 1), a);
    }

    #[test]
    fn ids_stable_across_take_loc() {
        let mut arena = PacketArena::new();
        let located = arena.intern(Packet::at(Loc::new(4, 7)).with(Field::IpDst, 2));
        let (bare, sw, pt) = arena.take_loc(located);
        assert_eq!((sw, pt), (Some(4), Some(7)));
        assert_eq!(arena.get(bare).loc(), None);
        assert_eq!(arena.get(bare).get(Field::IpDst), Some(2));
        // The located id still resolves to the located packet, and the
        // round trip lands back on it.
        assert_eq!(arena.get(located).loc(), Some(Loc::new(4, 7)));
        assert_eq!(arena.set_loc(bare, Loc::new(4, 7)), located);
        // take_loc on an unlocated packet is the identity.
        assert_eq!(arena.take_loc(bare), (bare, None, None));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn growth_past_initial_capacity() {
        let mut arena = PacketArena::with_capacity(2);
        let ids: Vec<PacketId> =
            (0..300).map(|v| arena.intern(Packet::new().with(Field::IpDst, v))).collect();
        assert_eq!(arena.len(), 300);
        // Every id issued before the growth still resolves correctly, and
        // re-interning is a hit everywhere.
        for (v, &id) in ids.iter().enumerate() {
            assert_eq!(arena.get(id).get(Field::IpDst), Some(v as u64));
            assert_eq!(arena.intern(Packet::new().with(Field::IpDst, v as u64)), id);
        }
        assert_eq!(arena.len(), 300);
    }

    #[test]
    fn recycling_reuses_unreferenced_slots() {
        let mut arena = PacketArena::new();
        arena.enable_recycling();
        assert!(arena.recycling());
        let a = arena.intern(Packet::new().with(Field::IpDst, 1));
        arena.retain(a);
        // An unretained newborn is reclaimed by the sweep...
        let tmp = arena.intern(Packet::new().with(Field::IpDst, 2));
        assert_eq!(arena.len(), 2);
        arena.sweep();
        // ...and its slot is reused by the next insert.
        let b = arena.intern(Packet::new().with(Field::IpDst, 3));
        assert_eq!(b, tmp);
        assert_eq!(arena.len(), 2);
        arena.retain(b);
        arena.sweep();
        // Retained ids survive sweeps and still dedup.
        assert_eq!(arena.intern(Packet::new().with(Field::IpDst, 1)), a);
        assert_eq!(arena.intern(Packet::new().with(Field::IpDst, 3)), b);
        assert_eq!(arena.get(a).get(Field::IpDst), Some(1));
        // Releasing the last reference frees the slot immediately: the
        // content is forgotten (a re-intern claims the slot afresh) and
        // the storage is reused.
        arena.release(b);
        let c = arena.intern(Packet::new().with(Field::IpDst, 4));
        assert_eq!(c.index(), b.index());
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn recycling_bounds_a_mutation_chain() {
        // The simulator's per-hop lifecycle — retain the output, release
        // the input, sweep the intermediates — keeps the arena at the
        // number of live packets, however long the chain runs.
        let mut arena = PacketArena::new();
        arena.enable_recycling();
        let mut id = arena.intern(Packet::new().with(Field::IpDst, 9));
        arena.retain(id);
        arena.sweep();
        for hop in 0..10_000u64 {
            let moved = arena.set_loc(id, Loc::new(hop % 64, hop % 4));
            arena.retain(moved);
            arena.release(id);
            arena.sweep();
            id = moved;
        }
        assert_eq!(arena.get(id).loc(), Some(Loc::new(9_999 % 64, 9_999 % 4)));
        assert_eq!(arena.get(id).get(Field::IpDst), Some(9));
        assert!(arena.len() <= 2, "arena grew with chain length: {} slots", arena.len());
    }

    #[test]
    fn recycling_off_is_append_only() {
        // Without recycling, retain/release/sweep are no-ops and slots are
        // permanent — the default contract traces rely on.
        let mut arena = PacketArena::new();
        assert!(!arena.recycling());
        let a = arena.intern(Packet::new().with(Field::IpDst, 5));
        arena.retain(a);
        arena.release(a);
        arena.release(a);
        arena.sweep();
        assert_eq!(arena.get(a).get(Field::IpDst), Some(5));
        assert_eq!(arena.intern(Packet::new().with(Field::IpDst, 5)), a);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn empty_packet_interns() {
        let mut arena = PacketArena::new();
        assert!(arena.is_empty());
        let a = arena.intern(Packet::new());
        assert_eq!(arena.intern(Packet::new()), a);
        assert!(arena.get(a).is_empty());
        assert!(!arena.is_empty());
    }
}
