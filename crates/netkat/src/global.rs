//! The global compiler: splitting link-programs into per-switch tables.
//!
//! The paper's programs (Fig. 9) describe end-to-end *paths*: an ingress
//! test, followed by port assignments and physical link traversals. This
//! module symbolically executes such a policy into *path clauses* and emits
//! one prioritized flow table per switch, pushing the ingress predicate
//! through assignments exactly as the paper's `(∃f:ϕ) ∧ f=n` rule does
//! (Fig. 6).
//!
//! Iteration (`*`) is supported only over link-free bodies; the paper's
//! examples are loop-free (Section 3.1 restricts to loop-free ETSs).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::NetkatError;
use crate::field::{Field, Value};
use crate::flowtable::FlowTable;
use crate::local::compile_local;
use crate::policy::Policy;
use crate::pred::Pred;

/// Fuel for symbolic star iteration.
const STAR_FUEL: usize = 256;

/// A satisfiable conjunction of equality and disequality tests.
///
/// This is the `ϕ` of the paper's Figs. 5–6: a conjunction of `f = n` and
/// `f ≠ n` literals, closed under the `(∃f : ϕ)` stripping operation.
///
/// # Examples
///
/// ```
/// use netkat::{Field, TestConj};
/// let mut c = TestConj::new();
/// assert!(c.add_eq(Field::Port, 2));
/// assert!(!c.add_eq(Field::Port, 3)); // contradiction
/// assert!(c.add_neq(Field::IpDst, 4));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TestConj {
    eqs: BTreeMap<Field, Value>,
    neqs: BTreeMap<Field, BTreeSet<Value>>,
}

impl TestConj {
    /// The empty (always-true) conjunction.
    pub fn new() -> TestConj {
        TestConj::default()
    }

    /// Adds `field = value`; returns `false` if it contradicts the
    /// conjunction (which is then left in an unspecified but satisfiable
    /// state — callers must discard it).
    pub fn add_eq(&mut self, field: Field, value: Value) -> bool {
        if let Some(&v) = self.eqs.get(&field) {
            return v == value;
        }
        if self.neqs.get(&field).is_some_and(|s| s.contains(&value)) {
            return false;
        }
        self.neqs.remove(&field);
        self.eqs.insert(field, value);
        true
    }

    /// Adds `field ≠ value`; returns `false` on contradiction.
    pub fn add_neq(&mut self, field: Field, value: Value) -> bool {
        if let Some(&v) = self.eqs.get(&field) {
            return v != value;
        }
        self.neqs.entry(field).or_default().insert(value);
        true
    }

    /// The equality constraint on `field`, if any.
    pub fn eq(&self, field: Field) -> Option<Value> {
        self.eqs.get(&field).copied()
    }

    /// Returns `true` if `field ≠ value` is entailed.
    pub fn excludes(&self, field: Field, value: Value) -> bool {
        self.eqs.get(&field).is_some_and(|&v| v != value)
            || self.neqs.get(&field).is_some_and(|s| s.contains(&value))
    }

    /// Removes every literal mentioning `field` (the paper's `∃f : ϕ`).
    pub fn strip(&mut self, field: Field) {
        self.eqs.remove(&field);
        self.neqs.remove(&field);
    }

    /// Converts to a [`Pred`].
    pub fn to_pred(&self) -> Pred {
        let eqs = self.eqs.iter().map(|(&f, &v)| Pred::test(f, v));
        let neqs =
            self.neqs.iter().flat_map(|(&f, vs)| vs.iter().map(move |&v| Pred::test(f, v).not()));
        Pred::all(eqs.chain(neqs))
    }

    /// Iterates over the equality literals.
    pub fn eqs(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.eqs.iter().map(|(&f, &v)| (f, v))
    }

    /// Iterates over the disequality literals.
    pub fn neqs(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.neqs.iter().flat_map(|(&f, vs)| vs.iter().map(move |&v| (f, v)))
    }
}

impl fmt::Display for TestConj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (field, v) in self.eqs() {
            if !first {
                write!(f, " & ")?;
            }
            write!(f, "{field}={v}")?;
            first = false;
        }
        for (field, v) in self.neqs() {
            if !first {
                write!(f, " & ")?;
            }
            write!(f, "{field}!={v}")?;
            first = false;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// One hop of a path clause: what a switch must match and do.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Hop {
    /// The switch this hop executes on; `None` means "any switch" (a clause
    /// that never traverses a link and never tests `sw`).
    pub switch: Option<u64>,
    /// Arrival constraints on the packet (port and header fields).
    pub arrival: TestConj,
    /// Field writes performed at this hop (including the output port).
    pub mods: BTreeMap<Field, Value>,
}

impl Hop {
    /// The policy fragment `filter arrival; mods…` this hop denotes on its
    /// switch.
    pub fn to_policy(&self) -> Policy {
        let mut arrival = self.arrival.clone();
        arrival.strip(Field::Switch);
        let mods = self.mods.iter().map(|(&f, &v)| Policy::modify(f, v));
        Policy::filter(arrival.to_pred()).seq(Policy::seq_all(mods))
    }
}

/// A complete path clause: the hops a matching packet takes, in order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathClause {
    /// The hops, ingress first.
    pub hops: Vec<Hop>,
}

/// Symbolic execution state: the pending (unfinished) hop plus history.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
struct SymState {
    switch: Option<u64>,
    arrival: TestConj,
    mods: BTreeMap<Field, Value>,
    hops: Vec<Hop>,
}

impl SymState {
    fn finish_hop(&self) -> PathClause {
        let mut hops = self.hops.clone();
        hops.push(Hop {
            switch: self.switch,
            arrival: self.arrival.clone(),
            mods: self.mods.clone(),
        });
        PathClause { hops }
    }

    /// The value of `field` as currently seen by a test: the latest write if
    /// any, otherwise the arrival constraint.
    fn test_eq(&mut self, field: Field, value: Value) -> bool {
        if field == Field::Switch {
            return match self.switch {
                Some(s) => s == value,
                None => {
                    if self.arrival.excludes(Field::Switch, value) {
                        return false;
                    }
                    self.switch = Some(value);
                    true
                }
            };
        }
        match self.mods.get(&field) {
            Some(&v) => v == value,
            None => self.arrival.add_eq(field, value),
        }
    }

    fn test_neq(&mut self, field: Field, value: Value) -> bool {
        if field == Field::Switch {
            return match self.switch {
                Some(s) => s != value,
                None => self.arrival.add_neq(Field::Switch, value),
            };
        }
        match self.mods.get(&field) {
            Some(&v) => v != value,
            None => self.arrival.add_neq(field, value),
        }
    }
}

/// Symbolically executes a policy into its path clauses.
///
/// # Errors
///
/// * [`NetkatError::StarOverLinks`] if a `*` body contains links.
/// * [`NetkatError::StarDiverged`] if symbolic iteration fails to converge.
///
/// # Examples
///
/// ```
/// use netkat::{path_clauses, Field, Loc, Policy, Pred};
/// let p = Policy::filter(Pred::port(2))
///     .seq(Policy::modify(Field::Port, 1))
///     .seq(Policy::link(Loc::new(1, 1), Loc::new(4, 1)))
///     .seq(Policy::modify(Field::Port, 2));
/// let clauses = path_clauses(&p)?;
/// assert_eq!(clauses.len(), 1);
/// assert_eq!(clauses[0].hops.len(), 2);
/// assert_eq!(clauses[0].hops[0].switch, Some(1));
/// assert_eq!(clauses[0].hops[1].switch, Some(4));
/// # Ok::<(), netkat::NetkatError>(())
/// ```
pub fn path_clauses(pol: &Policy) -> Result<Vec<PathClause>, NetkatError> {
    let states = exec(pol, vec![SymState::default()])?;
    let mut clauses: Vec<PathClause> = states.iter().map(SymState::finish_hop).collect();
    clauses.sort();
    clauses.dedup();
    Ok(clauses)
}

fn exec(pol: &Policy, states: Vec<SymState>) -> Result<Vec<SymState>, NetkatError> {
    match pol {
        Policy::Filter(pred) => exec_pred(pred, true, states),
        Policy::Modify(f, v) => Ok(states
            .into_iter()
            .map(|mut s| {
                s.mods.insert(*f, *v);
                s
            })
            .collect()),
        Policy::Union(a, b) => {
            let mut out = exec(a, states.clone())?;
            out.extend(exec(b, states)?);
            dedup(&mut out);
            Ok(out)
        }
        Policy::Seq(a, b) => {
            let mid = exec(a, states)?;
            exec(b, mid)
        }
        Policy::Star(a) => {
            if a.has_links() {
                return Err(NetkatError::StarOverLinks);
            }
            let mut acc = states.clone();
            dedup(&mut acc);
            let mut frontier = acc.clone();
            for _ in 0..STAR_FUEL {
                let stepped = exec(a, frontier)?;
                let fresh: Vec<SymState> =
                    stepped.into_iter().filter(|s| !acc.contains(s)).collect();
                if fresh.is_empty() {
                    return Ok(acc);
                }
                acc.extend(fresh.iter().cloned());
                dedup(&mut acc);
                frontier = fresh;
            }
            Err(NetkatError::StarDiverged)
        }
        Policy::Link(src, dst) => {
            let mut out = Vec::new();
            for mut s in states {
                // The packet must be at src.sw.
                match s.switch {
                    Some(sw) if sw != src.sw => continue,
                    Some(_) => {}
                    None => {
                        if s.arrival.excludes(Field::Switch, src.sw) {
                            continue;
                        }
                        s.switch = Some(src.sw);
                    }
                }
                // …and at port src.pt (post-modification).
                match s.mods.get(&Field::Port) {
                    Some(&p) if p != src.pt => continue,
                    Some(_) => {}
                    None => {
                        if !s.arrival.add_eq(Field::Port, src.pt) {
                            continue;
                        }
                    }
                }
                // Close the current hop and open the next at dst.
                let mut hops = s.hops;
                let mut closed_arrival = s.arrival.clone();
                closed_arrival.strip(Field::Switch);
                hops.push(Hop {
                    switch: Some(src.sw),
                    arrival: closed_arrival,
                    mods: s.mods.clone(),
                });
                // The packet arriving at dst carries the fields produced at
                // src: modified fields have known values; unmodified header
                // fields keep their arrival constraints.
                let mut arrival = TestConj::new();
                arrival.add_eq(Field::Port, dst.pt);
                for (f, v) in s.arrival.eqs() {
                    if !f.is_location() && !s.mods.contains_key(&f) {
                        arrival.add_eq(f, v);
                    }
                }
                for (f, v) in s.arrival.neqs() {
                    if !f.is_location() && !s.mods.contains_key(&f) {
                        arrival.add_neq(f, v);
                    }
                }
                for (&f, &v) in &s.mods {
                    if !f.is_location() {
                        let ok = arrival.add_eq(f, v);
                        debug_assert!(ok, "fresh arrival cannot contradict");
                    }
                }
                out.push(SymState { switch: Some(dst.sw), arrival, mods: BTreeMap::new(), hops });
            }
            Ok(out)
        }
    }
}

fn exec_pred(
    pred: &Pred,
    positive: bool,
    states: Vec<SymState>,
) -> Result<Vec<SymState>, NetkatError> {
    match (pred, positive) {
        (Pred::True, true) | (Pred::False, false) => Ok(states),
        (Pred::True, false) | (Pred::False, true) => Ok(Vec::new()),
        (Pred::Test(f, v), true) => {
            Ok(states.into_iter().filter_map(|mut s| s.test_eq(*f, *v).then_some(s)).collect())
        }
        (Pred::Test(f, v), false) => {
            Ok(states.into_iter().filter_map(|mut s| s.test_neq(*f, *v).then_some(s)).collect())
        }
        (Pred::And(a, b), true) | (Pred::Or(a, b), false) => {
            let mid = exec_pred(a, positive, states)?;
            exec_pred(b, positive, mid)
        }
        (Pred::Or(a, b), true) | (Pred::And(a, b), false) => {
            let mut out = exec_pred(a, positive, states.clone())?;
            out.extend(exec_pred(b, positive, states)?);
            dedup(&mut out);
            Ok(out)
        }
        (Pred::Not(a), _) => exec_pred(a, !positive, states),
    }
}

fn dedup(states: &mut Vec<SymState>) {
    states.sort();
    states.dedup();
}

/// The result of global compilation: one table per switch.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SwitchTables {
    /// Per-switch prioritized flow tables.
    pub tables: BTreeMap<u64, FlowTable>,
}

impl SwitchTables {
    /// Total number of rules across all switches.
    pub fn rule_count(&self) -> usize {
        self.tables.values().map(FlowTable::len).sum()
    }

    /// The table for `switch`, or an empty (drop-everything) table.
    pub fn table(&self, switch: u64) -> FlowTable {
        self.tables.get(&switch).cloned().unwrap_or_default()
    }
}

impl fmt::Display for SwitchTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (sw, table) in &self.tables {
            writeln!(f, "switch {sw}:")?;
            write!(f, "{table}")?;
        }
        Ok(())
    }
}

/// Compiles a link-program into per-switch flow tables.
///
/// `switches` lists every switch that should receive a table; clauses whose
/// hop has no determined switch are installed on all of them.
///
/// # Errors
///
/// Propagates the errors of [`path_clauses`] and of local compilation.
///
/// # Examples
///
/// ```
/// use netkat::{compile_global, Field, Loc, Policy, Pred};
/// let p = Policy::filter(Pred::port(2))
///     .seq(Policy::modify(Field::Port, 1))
///     .seq(Policy::link(Loc::new(1, 1), Loc::new(4, 1)))
///     .seq(Policy::modify(Field::Port, 2));
/// let tables = compile_global(&p, &[1, 4])?;
/// assert!(tables.tables[&1].len() >= 1);
/// assert!(tables.tables[&4].len() >= 1);
/// # Ok::<(), netkat::NetkatError>(())
/// ```
pub fn compile_global(pol: &Policy, switches: &[u64]) -> Result<SwitchTables, NetkatError> {
    let clauses = path_clauses(pol)?;
    let mut per_switch: BTreeMap<u64, Vec<Policy>> = BTreeMap::new();
    for clause in &clauses {
        for hop in &clause.hops {
            let frag = hop.to_policy();
            match hop.switch {
                Some(sw) => per_switch.entry(sw).or_default().push(frag),
                None => {
                    for &sw in switches {
                        if !hop.arrival.excludes(Field::Switch, sw) {
                            per_switch.entry(sw).or_default().push(frag.clone());
                        }
                    }
                }
            }
        }
    }
    let mut tables = BTreeMap::new();
    for &sw in switches {
        let frags = per_switch.remove(&sw).unwrap_or_default();
        let pol = Policy::union_all(frags);
        tables.insert(sw, compile_local(&pol)?);
    }
    Ok(SwitchTables { tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Loc, Packet};

    /// The paper's firewall outgoing clause:
    /// `pt=2 & ip_dst=4; pt<-1; (1:1)->(4:1); pt<-2`
    fn outgoing() -> Policy {
        Policy::filter(Pred::port(2).and(Pred::test(Field::IpDst, 4)))
            .seq(Policy::modify(Field::Port, 1))
            .seq(Policy::link(Loc::new(1, 1), Loc::new(4, 1)))
            .seq(Policy::modify(Field::Port, 2))
    }

    #[test]
    fn single_clause_two_hops() {
        let clauses = path_clauses(&outgoing()).unwrap();
        assert_eq!(clauses.len(), 1);
        let hops = &clauses[0].hops;
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].switch, Some(1));
        assert_eq!(hops[0].arrival.eq(Field::Port), Some(2));
        assert_eq!(hops[0].arrival.eq(Field::IpDst), Some(4));
        assert_eq!(hops[0].mods.get(&Field::Port), Some(&1));
        assert_eq!(hops[1].switch, Some(4));
        assert_eq!(hops[1].arrival.eq(Field::Port), Some(1));
        // The predicate was pushed through: ip_dst=4 still constrains hop 2.
        assert_eq!(hops[1].arrival.eq(Field::IpDst), Some(4));
        assert_eq!(hops[1].mods.get(&Field::Port), Some(&2));
    }

    #[test]
    fn compiled_tables_forward_hop_by_hop() {
        let tables = compile_global(&outgoing(), &[1, 4]).unwrap();
        // Ingress at s1 pt2.
        let pk = Packet::new().with(Field::Port, 2).with(Field::IpDst, 4);
        let out1 = tables.tables[&1].apply(&pk);
        assert_eq!(out1.len(), 1);
        let sent = out1.into_iter().next().unwrap();
        assert_eq!(sent.get(Field::Port), Some(1));
        // Arrives at s4 pt1 (the link rewrites location in the real network).
        let arrived = sent.with(Field::Port, 1);
        let out4 = tables.tables[&4].apply(&arrived);
        assert_eq!(out4.len(), 1);
        assert_eq!(out4.into_iter().next().unwrap().get(Field::Port), Some(2));
        // A packet to a different destination is dropped at ingress.
        let other = Packet::new().with(Field::Port, 2).with(Field::IpDst, 9);
        assert!(tables.tables[&1].apply(&other).is_empty());
    }

    #[test]
    fn union_of_clauses_keeps_paths_separate() {
        let back = Policy::filter(Pred::port(2).and(Pred::test(Field::IpDst, 1)))
            .seq(Policy::modify(Field::Port, 1))
            .seq(Policy::link(Loc::new(4, 1), Loc::new(1, 1)))
            .seq(Policy::modify(Field::Port, 2));
        let p = outgoing().union(back);
        let clauses = path_clauses(&p).unwrap();
        assert_eq!(clauses.len(), 2);
        let tables = compile_global(&p, &[1, 4]).unwrap();
        // s4 ingress: H4 replying to H1.
        let pk = Packet::new().with(Field::Port, 2).with(Field::IpDst, 1);
        let out = tables.tables[&4].apply(&pk);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn disequality_tests_compile() {
        // pt=2 & ip_dst!=4; pt<-3 installed everywhere.
        let p = Policy::filter(Pred::port(2).and(Pred::test(Field::IpDst, 4).not()))
            .seq(Policy::modify(Field::Port, 3));
        let tables = compile_global(&p, &[1, 2]).unwrap();
        let yes = Packet::new().with(Field::Port, 2).with(Field::IpDst, 5);
        let no = Packet::new().with(Field::Port, 2).with(Field::IpDst, 4);
        for sw in [1, 2] {
            assert_eq!(tables.tables[&sw].apply(&yes).len(), 1);
            assert!(tables.tables[&sw].apply(&no).is_empty());
        }
    }

    #[test]
    fn contradictory_test_kills_clause() {
        let p = Policy::filter(Pred::port(2))
            .seq(Policy::filter(Pred::port(3)))
            .seq(Policy::modify(Field::Vlan, 1));
        assert_eq!(path_clauses(&p).unwrap().len(), 0);
    }

    #[test]
    fn test_after_modify_is_constant_folded() {
        // pt<-1; pt=1 survives; pt<-1; pt=2 dies.
        let live = Policy::modify(Field::Port, 1).seq(Policy::filter(Pred::port(1)));
        assert_eq!(path_clauses(&live).unwrap().len(), 1);
        let dead = Policy::modify(Field::Port, 1).seq(Policy::filter(Pred::port(2)));
        assert_eq!(path_clauses(&dead).unwrap().len(), 0);
    }

    #[test]
    fn link_requires_consistent_switch() {
        // After traversing to switch 4, a link from switch 3 cannot fire.
        let p = Policy::link(Loc::new(1, 1), Loc::new(4, 1))
            .seq(Policy::link(Loc::new(3, 1), Loc::new(2, 1)));
        assert_eq!(path_clauses(&p).unwrap().len(), 0);
        // …but a chained link from switch 4 can, once the packet is moved to
        // the outgoing port.
        let q = Policy::link(Loc::new(1, 1), Loc::new(4, 1))
            .seq(Policy::modify(Field::Port, 2))
            .seq(Policy::link(Loc::new(4, 2), Loc::new(2, 1)));
        let clauses = path_clauses(&q).unwrap();
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].hops.len(), 3);
        // Middle hop: arrive at 4:1, leave via port 2.
        assert_eq!(clauses[0].hops[1].switch, Some(4));
        assert_eq!(clauses[0].hops[1].arrival.eq(Field::Port), Some(1));
        assert_eq!(clauses[0].hops[1].mods.get(&Field::Port), Some(&2));
        // A link whose source port contradicts the arrival port (without an
        // intervening assignment) kills the clause too.
        let r = Policy::link(Loc::new(1, 1), Loc::new(4, 1))
            .seq(Policy::link(Loc::new(4, 2), Loc::new(2, 1)));
        assert_eq!(path_clauses(&r).unwrap().len(), 0);
    }

    #[test]
    fn star_over_links_is_rejected() {
        let p = Policy::link(Loc::new(1, 1), Loc::new(2, 1)).star();
        assert_eq!(path_clauses(&p), Err(NetkatError::StarOverLinks));
    }

    #[test]
    fn link_free_star_converges() {
        let p = Policy::filter(Pred::port(1)).seq(Policy::modify(Field::Port, 2)).star();
        let clauses = path_clauses(&p).unwrap();
        // id, and pt=1;pt<-2.
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn switch_test_pins_clause() {
        let p =
            Policy::filter(Pred::switch(7).and(Pred::port(1))).seq(Policy::modify(Field::Port, 2));
        let tables = compile_global(&p, &[6, 7]).unwrap();
        let pk = Packet::new().with(Field::Port, 1);
        assert!(tables.tables[&6].apply(&pk).is_empty());
        assert_eq!(tables.tables[&7].apply(&pk).len(), 1);
    }

    #[test]
    fn negated_switch_test_excludes() {
        let p = Policy::filter(Pred::switch(7).not().and(Pred::port(1)))
            .seq(Policy::modify(Field::Port, 2));
        let tables = compile_global(&p, &[6, 7]).unwrap();
        let pk = Packet::new().with(Field::Port, 1);
        assert_eq!(tables.tables[&6].apply(&pk).len(), 1);
        assert!(tables.tables[&7].apply(&pk).is_empty());
    }
}
