//! Wildcarded configuration-ID guards.

use std::fmt;

/// A wildcard pattern over configuration IDs: a rule guarded by
/// `WildcardMask { bits, care }` applies to configuration `t` iff
/// `t & care == bits`.
///
/// # Examples
///
/// ```
/// use rule_optimizer::WildcardMask;
/// // `1*`: the high bit of a 2-bit ID is 1.
/// let m = WildcardMask::new(0b10, 0b10);
/// assert!(m.matches(0b10));
/// assert!(m.matches(0b11));
/// assert!(!m.matches(0b01));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WildcardMask {
    /// The required bit values (within `care`).
    pub bits: u64,
    /// Which bits are significant (`0` bits are wildcards).
    pub care: u64,
}

impl WildcardMask {
    /// Creates a mask.
    ///
    /// # Panics
    ///
    /// Panics if `bits` sets a bit outside `care`.
    pub fn new(bits: u64, care: u64) -> WildcardMask {
        assert_eq!(bits & !care, 0, "bits must lie within the care mask");
        WildcardMask { bits, care }
    }

    /// The fully-wildcarded mask (matches every ID).
    pub fn any() -> WildcardMask {
        WildcardMask { bits: 0, care: 0 }
    }

    /// Returns `true` if the mask matches configuration `id`.
    pub fn matches(self, id: u64) -> bool {
        id & self.care == self.bits
    }

    /// Renders as a binary string of `width` digits with `*` wildcards,
    /// most significant bit first.
    pub fn render(self, width: u32) -> String {
        (0..width)
            .rev()
            .map(|i| {
                if self.care & (1 << i) == 0 {
                    '*'
                } else if self.bits & (1 << i) != 0 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl fmt::Display for WildcardMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = 64 - self.care.leading_zeros().min(63);
        write!(f, "{}", self.render(width.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching() {
        let m = WildcardMask::new(0b10, 0b11);
        assert!(m.matches(0b10));
        assert!(!m.matches(0b11));
        assert!(WildcardMask::any().matches(12345));
    }

    #[test]
    fn rendering() {
        assert_eq!(WildcardMask::new(0b10, 0b10).render(2), "1*");
        assert_eq!(WildcardMask::new(0b01, 0b11).render(2), "01");
        assert_eq!(WildcardMask::any().render(3), "***");
    }

    #[test]
    #[should_panic(expected = "within the care mask")]
    fn bits_outside_care_panic() {
        WildcardMask::new(0b100, 0b011);
    }
}
