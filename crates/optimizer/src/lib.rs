//! # rule-optimizer
//!
//! The rule-sharing optimization of Section 5.3 of *Event-Driven Network
//! Programming* (PLDI 2016). Each configuration's rules are guarded by its
//! numeric ID; when the same rule appears in several configurations whose
//! IDs share high-order bits, one copy with a wildcarded guard suffices.
//! Assigning IDs well is the optimization problem; [`optimize`] implements
//! the paper's polynomial bottom-up pairing heuristic, which reduced rule
//! counts by 32–37% in the paper's experiments.
//!
//! The module is generic over the rule type — any `Ord + Clone` value works
//! — so it serves both the real compiled rules of `nes-runtime` and the
//! synthetic configurations of the Fig. 17 experiment.
//!
//! ```
//! use std::collections::BTreeSet;
//! use rule_optimizer::optimize;
//!
//! let configs: Vec<BTreeSet<&str>> = vec![
//!     ["r1", "r2"].into_iter().collect(),
//!     ["r1", "r3"].into_iter().collect(),
//!     ["r2", "r3"].into_iter().collect(),
//!     ["r1", "r2"].into_iter().collect(),
//! ];
//! let opt = optimize(&configs);
//! assert_eq!(opt.original_count, 8);
//! assert_eq!(opt.optimized_count(), 5); // the paper's Fig. 18 trie (b)
//! ```

#![warn(missing_docs)]

mod mask;
mod trie;

pub use mask::WildcardMask;
pub use trie::{optimize, optimize_in_order, Optimized};

/// Generates the random configurations of the Fig. 17 experiment:
/// `count` configurations, each a uniformly random `rules_per_config`-subset
/// of a `universe_size`-rule universe (rules are plain integers).
pub fn random_configs(
    count: usize,
    rules_per_config: usize,
    universe_size: usize,
    seed: u64,
) -> Vec<std::collections::BTreeSet<u32>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_configs_with(&mut rng, count, rules_per_config, universe_size)
}

/// Like [`random_configs`], but drawing from a caller-owned RNG so a sweep
/// over many instances can thread *one* seeded stream through all of them
/// instead of re-seeding per point (re-seeding correlates the points: every
/// instance at the same seed starts from the same shuffle).
pub fn random_configs_with<R: rand::Rng>(
    rng: &mut R,
    count: usize,
    rules_per_config: usize,
    universe_size: usize,
) -> Vec<std::collections::BTreeSet<u32>> {
    use rand::seq::SliceRandom;
    let universe: Vec<u32> = (0..universe_size as u32).collect();
    (0..count)
        .map(|_| {
            let mut pool = universe.clone();
            pool.shuffle(rng);
            pool.truncate(rules_per_config);
            pool.into_iter().collect()
        })
        .collect()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn arb_configs() -> impl Strategy<Value = Vec<BTreeSet<u8>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u8..12, 0..8), 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The optimizer never changes what rules a configuration sees and
        /// never increases the rule count — under both pairing strategies.
        #[test]
        fn semantics_preserved_and_never_worse(configs in arb_configs()) {
            for opt in [optimize(&configs), optimize_in_order(&configs)] {
                prop_assert!(opt.optimized_count() <= opt.original_count);
                for (i, c) in configs.iter().enumerate() {
                    prop_assert_eq!(&opt.effective_rules(i), c, "config {}", i);
                }
            }
        }

        /// Ablation: the greedy heuristic never loses to naive in-order
        /// assignment... is NOT a theorem (greedy pairing is myopic across
        /// levels), but semantics always hold and on identical-config
        /// inputs both collapse fully.
        #[test]
        fn identical_configs_collapse_under_both(n in 1usize..6) {
            let configs = vec![[1u8, 2, 3].into_iter().collect::<BTreeSet<u8>>(); n];
            prop_assert_eq!(optimize(&configs).optimized_count(), 3);
            prop_assert_eq!(optimize_in_order(&configs).optimized_count(), 3);
        }

        /// Every real configuration gets a unique ID within range.
        #[test]
        fn ids_are_unique_and_in_range(configs in arb_configs()) {
            let opt = optimize(&configs);
            let mut seen = BTreeSet::new();
            for i in 0..configs.len() {
                let id = opt.id_of(i).expect("every config placed");
                prop_assert!(id < (1u64 << opt.id_bits).max(1));
                prop_assert!(seen.insert(id), "duplicate id {}", id);
            }
        }
    }

    #[test]
    fn random_configs_are_seeded_and_sized() {
        let a = random_configs(8, 5, 20, 1);
        let b = random_configs(8, 5, 20, 1);
        let c = random_configs(8, 5, 20, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|s| s.len() == 5));
    }

    /// The headline Fig. 17 shape: on 64 random configurations of 20 rules,
    /// the heuristic saves a substantial fraction (the paper reports ~32%).
    #[test]
    fn random_64_configs_save_a_third() {
        let configs = random_configs(64, 20, 40, 42);
        let opt = optimize(&configs);
        assert_eq!(opt.original_count, 64 * 20);
        let savings = opt.savings();
        assert!(savings > 0.20, "expected ≳ a fifth savings, got {savings:.3}");
    }
}
