//! The rule-sharing trie heuristic (Section 5.3).
//!
//! Configurations are placed at the leaves of a complete binary trie; each
//! interior node holds the intersection of its children's rule sets and a
//! wildcarded ID mask covering its subtree. A rule is installed once at the
//! highest node that contains it (i.e. each node pays for
//! `|rules(node) ∖ rules(parent)|`), so the assignment of configurations to
//! leaves determines the total rule count. The paper's polynomial heuristic
//! builds the trie bottom-up, at each level pairing nodes to maximize the
//! sum of the cardinalities of the resulting intersections; we implement the
//! greedy variant: repeatedly take the available pair with the largest
//! intersection.

use std::collections::BTreeSet;

use crate::mask::WildcardMask;

/// The result of optimizing a set of configurations.
#[derive(Clone, Debug)]
pub struct Optimized<R> {
    /// `leaf_order[i]` is the index (into the input slice) of the
    /// configuration assigned to leaf `i`; padded dummy configurations are
    /// `None`.
    pub leaf_order: Vec<Option<usize>>,
    /// Every installed rule with its wildcard guard.
    pub guarded_rules: Vec<(WildcardMask, R)>,
    /// Number of ID bits (`2^k` leaves).
    pub id_bits: u32,
    /// Rule count before optimization (one full copy per configuration,
    /// exact-match guards).
    pub original_count: usize,
}

impl<R> Optimized<R> {
    /// Number of installed rules after optimization.
    pub fn optimized_count(&self) -> usize {
        self.guarded_rules.len()
    }

    /// The fraction of rules saved, in `[0, 1]`.
    pub fn savings(&self) -> f64 {
        if self.original_count == 0 {
            return 0.0;
        }
        1.0 - self.optimized_count() as f64 / self.original_count as f64
    }

    /// The new configuration ID of input configuration `original`.
    pub fn id_of(&self, original: usize) -> Option<u64> {
        self.leaf_order.iter().position(|&o| o == Some(original)).map(|i| i as u64)
    }
}

impl<R: Ord + Clone> Optimized<R> {
    /// Reconstructs the effective rule set of input configuration
    /// `original` from the guarded rules (for validation): all rules whose
    /// mask matches its new ID.
    pub fn effective_rules(&self, original: usize) -> BTreeSet<R> {
        let Some(id) = self.id_of(original) else { return BTreeSet::new() };
        self.guarded_rules.iter().filter(|(m, _)| m.matches(id)).map(|(_, r)| r.clone()).collect()
    }
}

#[derive(Clone, Debug)]
struct Node<R> {
    rules: BTreeSet<R>,
    /// Leaves covered, in order, as unique tokens (indices into the padded
    /// input array — dummies included, so tokens never collide).
    leaves: Vec<usize>,
}

/// How leaves are paired when building the trie.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Pairing {
    /// The paper's heuristic: greedily pair nodes with the largest rule
    /// intersection.
    Greedy,
    /// Ablation baseline: pair nodes in their given order (configuration
    /// IDs keep their original numbering) — the naive assignment that
    /// produces tries like the paper's Fig. 18(a).
    InOrder,
}

/// Runs the trie heuristic on `configs` (each a set of rules).
///
/// The leaf count is padded to the next power of two with dummy
/// configurations holding *all* rules (as the paper prescribes), which never
/// receive traffic and maximize sharing among the pads.
pub fn optimize<R: Ord + Clone>(configs: &[BTreeSet<R>]) -> Optimized<R> {
    optimize_with(configs, Pairing::Greedy)
}

/// The ablation baseline: the same trie construction and rule sharing, but
/// configurations keep their original IDs (adjacent pairing). The delta to
/// [`optimize`] isolates the value of the paper's pairing heuristic.
pub fn optimize_in_order<R: Ord + Clone>(configs: &[BTreeSet<R>]) -> Optimized<R> {
    optimize_with(configs, Pairing::InOrder)
}

fn optimize_with<R: Ord + Clone>(configs: &[BTreeSet<R>], pairing: Pairing) -> Optimized<R> {
    let original_count: usize = configs.iter().map(BTreeSet::len).sum();
    if configs.is_empty() {
        return Optimized {
            leaf_order: Vec::new(),
            guarded_rules: Vec::new(),
            id_bits: 0,
            original_count,
        };
    }
    let leaf_count = configs.len().next_power_of_two();
    let id_bits = leaf_count.trailing_zeros();
    let universe: BTreeSet<R> = configs.iter().flatten().cloned().collect();

    let mut level: Vec<Node<R>> = configs
        .iter()
        .enumerate()
        .map(|(i, rules)| Node { rules: rules.clone(), leaves: vec![i] })
        .chain(
            (configs.len()..leaf_count).map(|i| Node { rules: universe.clone(), leaves: vec![i] }),
        )
        .collect();

    // Bottom-up pairing.
    let mut levels: Vec<Vec<Node<R>>> = vec![level.clone()];
    while level.len() > 1 {
        let n = level.len();
        let selected: Vec<(usize, usize)> = match pairing {
            Pairing::InOrder => (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect(),
            Pairing::Greedy => {
                let mut pairs: Vec<(usize, usize, usize)> = Vec::new(); // (shared, i, j)
                for i in 0..n {
                    for j in (i + 1)..n {
                        let shared = level[i].rules.intersection(&level[j].rules).count();
                        pairs.push((shared, i, j));
                    }
                }
                // Largest intersection first; ties broken by indices for
                // determinism.
                pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
                let mut used = vec![false; n];
                let mut out = Vec::with_capacity(n / 2);
                for (_, i, j) in pairs {
                    if used[i] || used[j] {
                        continue;
                    }
                    used[i] = true;
                    used[j] = true;
                    out.push((i, j));
                }
                out
            }
        };
        let mut next: Vec<Node<R>> = Vec::with_capacity(n / 2);
        for (i, j) in selected {
            let rules: BTreeSet<R> =
                level[i].rules.intersection(&level[j].rules).cloned().collect();
            let mut leaves = level[i].leaves.clone();
            leaves.extend(level[j].leaves.iter().copied());
            next.push(Node { rules, leaves });
        }
        level = next;
        levels.push(level.clone());
    }

    // The root's leaf order fixes the configuration IDs. Tokens at or past
    // `configs.len()` are padding dummies.
    let token_order = level[0].leaves.clone();
    let leaf_order: Vec<Option<usize>> =
        token_order.iter().map(|&t| if t < configs.len() { Some(t) } else { None }).collect();
    let mut position_of_token = vec![0u64; leaf_count];
    for (pos, &t) in token_order.iter().enumerate() {
        position_of_token[t] = pos as u64;
    }

    // Emit rules: each node pays for rules not already owned by an ancestor.
    // Walk levels top-down; a node at level d (from leaves) covers 2^d
    // leaves, all contiguous in the root's order by construction.
    let mut guarded_rules: Vec<(WildcardMask, R)> = Vec::new();
    let top = levels.len() - 1;
    for (depth_from_leaves, nodes) in levels.iter().enumerate().rev() {
        let subtree = 1u64 << depth_from_leaves;
        for node in nodes {
            // Padding dummies hold the whole rule universe to maximize
            // sharing opportunities during pairing, but they never receive
            // traffic: subtrees containing no real configuration install
            // nothing.
            if !node.leaves.iter().any(|&t| t < configs.len()) {
                continue;
            }
            let first = position_of_token[node.leaves[0]];
            debug_assert_eq!(first % subtree, 0, "subtrees are aligned");
            let care = if id_bits == 0 { 0 } else { (!(subtree - 1)) & ((1 << id_bits) - 1) };
            let mask = WildcardMask::new(first & care, care);
            // Parent rules: intersection owned higher up. Recompute by
            // checking membership in the ancestor chain, i.e. any rule
            // present in the enclosing node at the next level.
            let parent_rules: Option<&BTreeSet<R>> = if depth_from_leaves == top {
                None
            } else {
                levels[depth_from_leaves + 1]
                    .iter()
                    .find(|p| p.leaves.contains(&node.leaves[0]))
                    .map(|p| &p.rules)
            };
            for rule in &node.rules {
                if parent_rules.is_none_or(|p| !p.contains(rule)) {
                    guarded_rules.push((mask, rule.clone()));
                }
            }
        }
    }

    Optimized { leaf_order, guarded_rules, id_bits, original_count }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Fig. 18 example: C0={r1,r2}, C1={r1,r3}, C2={r2,r3},
    /// C3={r1,r2}. The good trie (b) needs 5 rules; the naive count is 8 and
    /// the bad trie (a) needs 6.
    #[test]
    fn fig18_reaches_the_good_trie() {
        let configs =
            vec![set(&["r1", "r2"]), set(&["r1", "r3"]), set(&["r2", "r3"]), set(&["r1", "r2"])];
        let opt = optimize(&configs);
        assert_eq!(opt.original_count, 8);
        assert_eq!(opt.optimized_count(), 5, "greedy pairing finds trie (b)");
        // Semantics preserved for every configuration.
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(&opt.effective_rules(i), c, "config {i}");
        }
    }

    /// The same example with naive in-order IDs builds exactly the paper's
    /// trie (a): 6 rules. The gap to 5 is the heuristic's contribution.
    #[test]
    fn fig18_in_order_builds_trie_a() {
        let configs =
            vec![set(&["r1", "r2"]), set(&["r1", "r3"]), set(&["r2", "r3"]), set(&["r1", "r2"])];
        let naive = optimize_in_order(&configs);
        assert_eq!(naive.optimized_count(), 6, "in-order IDs yield trie (a)");
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(&naive.effective_rules(i), c, "config {i}");
            // In-order keeps the original numbering.
            assert_eq!(naive.id_of(i), Some(i as u64));
        }
        assert!(optimize(&configs).optimized_count() < naive.optimized_count());
    }

    #[test]
    fn identical_configs_collapse_fully() {
        let configs = vec![set(&["a", "b"]); 8];
        let opt = optimize(&configs);
        assert_eq!(opt.original_count, 16);
        // All shared at the root: two rules with all-wildcard guards.
        assert_eq!(opt.optimized_count(), 2);
        assert!(opt.guarded_rules.iter().all(|(m, _)| *m == WildcardMask::any()));
    }

    #[test]
    fn disjoint_configs_save_nothing() {
        let configs = vec![set(&["a"]), set(&["b"]), set(&["c"]), set(&["d"])];
        let opt = optimize(&configs);
        assert_eq!(opt.optimized_count(), opt.original_count);
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(&opt.effective_rules(i), c);
        }
    }

    #[test]
    fn padding_to_power_of_two() {
        // Three configs pad to four leaves; the dummy holds the universe.
        let configs = vec![set(&["a", "b"]), set(&["a"]), set(&["b"])];
        let opt = optimize(&configs);
        assert_eq!(opt.leaf_order.len(), 4);
        assert!(opt.leaf_order.contains(&None));
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(&opt.effective_rules(i), c, "config {i}");
        }
    }

    #[test]
    fn single_config_is_trivial() {
        let configs = vec![set(&["a", "b", "c"])];
        let opt = optimize(&configs);
        assert_eq!(opt.optimized_count(), 3);
        assert_eq!(opt.id_bits, 0);
        assert_eq!(opt.effective_rules(0), configs[0]);
    }

    #[test]
    fn empty_input() {
        let opt = optimize::<String>(&[]);
        assert_eq!(opt.optimized_count(), 0);
        assert_eq!(opt.original_count, 0);
        assert_eq!(opt.savings(), 0.0);
    }

    #[test]
    fn never_worse_than_naive() {
        // A few structured cases; the property test in lib.rs covers random
        // ones.
        let cases = vec![
            vec![set(&["a", "b"]), set(&["b", "c"]), set(&["c", "a"]), set(&["a", "b", "c"])],
            vec![set(&[]), set(&["x"]), set(&["x", "y"]), set(&["y"])],
        ];
        for configs in cases {
            let opt = optimize(&configs);
            assert!(opt.optimized_count() <= opt.original_count);
            for (i, c) in configs.iter().enumerate() {
                assert_eq!(&opt.effective_rules(i), c);
            }
        }
    }

    #[test]
    fn savings_fraction() {
        let configs = vec![set(&["a", "b"]); 2];
        let opt = optimize(&configs);
        assert_eq!(opt.original_count, 4);
        assert_eq!(opt.optimized_count(), 2);
        assert!((opt.savings() - 0.5).abs() < 1e-9);
    }
}
