//! # nes-runtime
//!
//! The implementation strategy of Section 4 of *Event-Driven Network
//! Programming* (PLDI 2016), deployed on the `netsim` simulator:
//!
//! * [`CompiledNes`] assigns an integer tag to every event-set of a network
//!   event structure and installs each configuration's rules proactively,
//!   guarded by the tag;
//! * [`NesDataPlane`] implements the operational semantics of Fig. 7 —
//!   ingress stamping, digest learning, event triggering, per-tag
//!   forwarding, and the optional controller broadcast;
//! * [`UncoordDataPlane`] is the uncoordinated baseline of Section 5.1 —
//!   events punted to a slow controller that pushes configurations in
//!   random order;
//! * [`verify_nes_run`] / [`verify_uncoordinated_run`] check a finished run
//!   against Definition 6 (the paper's Theorem 1 says the former never
//!   fails; the baseline demonstrably does);
//! * [`attach_online_checker`] attaches the incremental Definition 6 checker
//!   to an engine before the run, so stats-only executions too large to
//!   record still get a verdict in bounded memory;
//! * [`campaign_nes`] chains many successive updates into one NES — the
//!   rolling update campaigns the scenario layer scripts.

#![warn(missing_docs)]

mod campaign;
mod compile;
mod dataplane;
mod deploy;
mod program;
mod reliable;
mod static_plane;
mod uncoordinated;
mod verify;

pub use campaign::{
    campaign_mark, campaign_nes, campaign_pred, campaign_trigger, CampaignStep, CAMPAIGN_MARK_BASE,
};
pub use compile::{CompiledNes, RuleBreakdown};
pub use dataplane::NesDataPlane;
pub use deploy::{CompilePath, DeployKnobs, OptimizeMode};
pub use program::{tagged_lookup, SwitchProgram};
pub use reliable::{retry_budget_from_env, Reliable};
pub use static_plane::StaticDataPlane;
pub use uncoordinated::UncoordDataPlane;
pub use verify::{
    attach_online_checker, nes_engine, nes_engine_with, nes_engine_with_path,
    nes_reliable_engine_with, uncoordinated_engine, verify_nes_run, verify_reliable_nes_run,
    verify_uncoordinated_run,
};
