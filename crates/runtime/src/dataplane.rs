//! The NES data plane: the operational semantics of Fig. 7 as a
//! [`netsim::DataPlane`].
//!
//! * **IN** — packets entering from a host are stamped with the tag of the
//!   ingress switch's current (effective) event-set.
//! * **SWITCH** — the switch unions the packet's digest into its local
//!   event-set, fires any enabled events the arrival matches, notifies the
//!   controller, forwards the packet under *its stamped tag's*
//!   configuration, and adds its own knowledge to the outgoing digest.
//! * **CTRLRECV/CTRLSEND** — the controller accumulates fired events and
//!   (optionally, as the paper's optimization) broadcasts its view to all
//!   switches.

use std::collections::{BTreeMap, HashMap};

use edn_core::{EventId, EventSet};
use netkat::{Field, FxBuildHasher, Loc, LocatedView, LookupPath, Packet, PacketArena, PacketId};
use netsim::{table_outputs, CtrlMsg, DataPlane, SimTime, StepResult, StepResultId};

use crate::compile::CompiledNes;
use crate::deploy::{CompilePath, DeployKnobs, Deployment, OptimizeMode};

/// The deployed NES runtime (switch state + controller).
#[derive(Clone, Debug)]
pub struct NesDataPlane {
    compiled: CompiledNes,
    /// The installed tables, in the layout the deployment knobs chose:
    /// tag-guarded per-switch programs (Section 4.1, scratch compilation),
    /// delta-patched per-`(switch, tag)` tables (`EDN_COMPILE=delta`), or
    /// trie-compressed wildcard-guarded tables (`EDN_OPTIMIZE=on`,
    /// Section 5.3). All layouts forward identically — the delta and
    /// plumbing equivalence suites pin that byte for byte.
    deployment: Deployment,
    /// The resolved deployment knobs (lookup path, compile path,
    /// optimizer), fixed at construction so runs never consult the
    /// environment mid-flight.
    knobs: DeployKnobs,
    /// Per-switch known events (`E` in Fig. 7), dense: `local[slot]` with
    /// slots assigned by `switch_slot`. The switch step reads and writes
    /// this two or three times per packet, so it must not walk a tree.
    local: Vec<EventSet>,
    /// `switch id → slot in local`, grown on demand for switches outside
    /// the deployment list (mirroring the old map's `entry` semantics).
    switch_slot: HashMap<u64, u32, FxBuildHasher>,
    /// Controller's accumulated events (`R` in Fig. 7).
    controller: EventSet,
    /// Whether the controller broadcasts its view to all switches
    /// (the CTRLSEND optimization of Section 4.1).
    broadcast: bool,
    /// Switch ids (for broadcasting).
    switches: Vec<u64>,
    /// First time each switch learned each event (for the Fig. 16(b)
    /// convergence experiment).
    discovery: BTreeMap<(u64, EventId), SimTime>,
    /// Global fire log, in order (a hint for the correctness checker).
    fired_log: Vec<(SimTime, EventId)>,
    /// Memoized `known → (effective set, tag)`: the enabling fixpoint is a
    /// pure function of the known-events set, and switch knowledge only
    /// grows at (rare) event learns, so the per-packet hot path reduces to
    /// one map probe.
    effective_cache: BTreeMap<EventSet, (EventSet, u64)>,
    /// Reused arena-path buffers: the lookup packet and the (single-cast)
    /// output packet are built here instead of being allocated per hop —
    /// only the finished output is interned, and in steady state (content
    /// already seen) that interning is a fingerprint probe, so a hop
    /// allocates nothing.
    lookup_buf: Packet,
    out_buf: Packet,
}

impl NesDataPlane {
    /// Deploys a compiled NES on the given switches, with every deployment
    /// knob taken from the environment (`EDN_LOOKUP`, `EDN_COMPILE`,
    /// `EDN_OPTIMIZE`).
    pub fn new(compiled: CompiledNes, switches: Vec<u64>, broadcast: bool) -> NesDataPlane {
        NesDataPlane::with_knobs(compiled, switches, broadcast, DeployKnobs::from_env())
    }

    /// Deploys a compiled NES on an explicit lookup path, the remaining
    /// knobs from the environment.
    pub fn with_path(
        compiled: CompiledNes,
        switches: Vec<u64>,
        broadcast: bool,
        path: LookupPath,
    ) -> NesDataPlane {
        NesDataPlane::with_knobs(
            compiled,
            switches,
            broadcast,
            DeployKnobs::from_env().with_path(path),
        )
    }

    /// Deploys a compiled NES with every knob pinned explicitly — the
    /// constructor the differential suites use, so in-process test legs
    /// never race on environment variables.
    pub fn with_knobs(
        compiled: CompiledNes,
        switches: Vec<u64>,
        broadcast: bool,
        knobs: DeployKnobs,
    ) -> NesDataPlane {
        let switch_slot =
            switches.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect::<HashMap<_, _, _>>();
        let local = vec![EventSet::empty(); switches.len()];
        let deployment = Deployment::deploy(&compiled, knobs);
        NesDataPlane {
            compiled,
            deployment,
            knobs,
            local,
            switch_slot,
            controller: EventSet::empty(),
            broadcast,
            switches,
            discovery: BTreeMap::new(),
            fired_log: Vec::new(),
            effective_cache: BTreeMap::new(),
            lookup_buf: Packet::new(),
            out_buf: Packet::new(),
        }
    }

    /// The effective event-set and tag for a known-events set, memoized.
    fn effective_of(&mut self, known: EventSet) -> (EventSet, u64) {
        if let Some(&hit) = self.effective_cache.get(&known) {
            return hit;
        }
        let effective = self.compiled.effective_set(known);
        let tag = self.compiled.tag_for_known(known);
        self.effective_cache.insert(known, (effective, tag));
        (effective, tag)
    }

    /// The lookup path this deployment dispatches through.
    pub fn lookup_path(&self) -> LookupPath {
        self.knobs.path
    }

    /// The compile path this deployment was built with.
    pub fn compile_path(&self) -> CompilePath {
        self.knobs.compile
    }

    /// Whether the rule-sharing optimizer is on the hot path.
    pub fn optimize_mode(&self) -> OptimizeMode {
        self.knobs.optimize
    }

    /// Total rule adds + removes the delta compile path applied along the
    /// tag chain (`None` unless this deployment was built with
    /// [`CompilePath::Delta`]) — the OpenFlow mod count a real controller
    /// would have pushed instead of whole-table swaps.
    pub fn delta_rule_mods(&self) -> Option<u64> {
        self.deployment.delta_rule_mods()
    }

    /// The optimizer's `(installed, original)` rule counts (`None` unless
    /// this deployment was built with [`OptimizeMode::On`]).
    pub fn optimized_rule_counts(&self) -> Option<(usize, usize)> {
        self.deployment.optimized_rule_counts()
    }

    /// The compiled NES.
    pub fn compiled(&self) -> &CompiledNes {
        &self.compiled
    }

    /// A switch's current known event-set.
    pub fn local_events(&self, sw: u64) -> EventSet {
        self.switch_slot.get(&sw).map(|&i| self.local[i as usize]).unwrap_or_else(EventSet::empty)
    }

    /// When `sw` first learned `event`, if it has.
    pub fn discovery_time(&self, sw: u64, event: EventId) -> Option<SimTime> {
        self.discovery.get(&(sw, event)).copied()
    }

    /// The events fired so far, in order — usable as the checker's sequence
    /// hint.
    pub fn fired_sequence(&self) -> Vec<EventId> {
        self.fired_log.iter().map(|&(_, e)| e).collect()
    }

    /// The fire log with timestamps.
    pub fn fired_log(&self) -> &[(SimTime, EventId)] {
        &self.fired_log
    }

    /// The dense-state slot for `sw`, assigned on first contact.
    fn slot_of(&mut self, sw: u64) -> usize {
        match self.switch_slot.get(&sw) {
            Some(&i) => i as usize,
            None => {
                let i = self.local.len() as u32;
                self.switch_slot.insert(sw, i);
                self.local.push(EventSet::empty());
                i as usize
            }
        }
    }

    fn learn(&mut self, sw: u64, events: EventSet, now: SimTime) {
        let slot = self.slot_of(sw);
        self.learn_at(slot, sw, events, now);
    }

    /// [`learn`](NesDataPlane::learn) with the slot already resolved — the
    /// per-packet path, which learns something new only at (rare) event
    /// firings and digest fronts.
    fn learn_at(&mut self, slot: usize, sw: u64, events: EventSet, now: SimTime) {
        let known = &mut self.local[slot];
        let fresh = events.difference(*known);
        if fresh.is_empty() {
            return;
        }
        *known = known.union(events);
        for e in fresh.iter() {
            self.discovery.entry((sw, e)).or_insert(now);
        }
    }
}

impl DataPlane for NesDataPlane {
    fn process(
        &mut self,
        sw: u64,
        pt: u64,
        mut packet: Packet,
        from_host: bool,
        now: SimTime,
    ) -> StepResult {
        // SWITCH step 1: union the packet's digest into local state.
        let digest = EventSet::from_bits(packet.get(Field::Digest).unwrap_or(0));
        self.learn(sw, digest, now);
        let known = self.local_events(sw);

        // IN: stamp host-entering packets with the current tag.
        let effective = self.effective_of(known);
        if from_host {
            packet.set(Field::Tag, effective.1);
        }

        // SWITCH step 2: fire enabled events this arrival matches.
        let effective = effective.0;
        let fired = self.compiled.triggered(effective, &packet, Loc::new(sw, pt));
        let mut notifications = Vec::new();
        if !fired.is_empty() {
            self.learn(sw, fired, now);
            for e in fired.iter() {
                self.fired_log.push((now, e));
            }
            notifications.push(CtrlMsg::Events(fired.bits()));
        }
        let known = self.local_events(sw);

        // SWITCH step 3: forward under the packet's stamped configuration,
        // through the switch's installed tag-guarded table (the guard makes
        // the per-tag block of the packet's own tag the only one that can
        // match, so this agrees with the packet's configuration table —
        // `program::tests` pin that equivalence).
        let tag = match packet.get(Field::Tag) {
            Some(tag) => tag,
            None => self.effective_of(known).1,
        };
        // The packet is not needed after the table application: locate and
        // tag it in place instead of cloning a lookup copy.
        let mut lookup = packet;
        lookup.set_loc(Loc::new(sw, pt));
        lookup.set(Field::Tag, tag);
        let mut out = Vec::new();
        self.deployment.apply_into(self.knobs.path, sw, tag, &lookup, &mut out);
        let mut outputs = table_outputs(pt, out);
        for (_, out) in &mut outputs {
            // SWITCH step 4: the outgoing digest carries everything this
            // switch now knows.
            out.set(Field::Digest, digest.union(known).bits());
            out.set(Field::Tag, tag);
        }
        StepResult { outputs, notifications }
    }

    /// The native arena path: identical, observable step for observable
    /// step, to [`process`](DataPlane::process) — IN stamp, trigger,
    /// per-tag forwarding, digest stamp — but with the table consulted
    /// through a zero-copy [`LocatedView`] and an identity fast path for
    /// hops that leave the packet's content unchanged (the steady state:
    /// clone-free and allocation-free). The plumbing-equivalence
    /// differential tests replay full runs through both paths and diff
    /// Stats and traces byte for byte.
    fn process_arena(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
    ) -> StepResultId {
        let mut out = StepResultId::default();
        self.process_arena_into(sw, pt, packet, from_host, now, arena, &mut out);
        out
    }

    /// [`process_arena`](DataPlane::process_arena) writing into the
    /// engine's reused step buffer — the per-hop entry point, which keeps
    /// the steady state free of output-vector allocations.
    #[allow(clippy::too_many_arguments)]
    fn process_arena_into(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
        out: &mut StepResultId,
    ) {
        out.clear();
        // SWITCH step 1: union the packet's digest into local state.
        let slot = self.slot_of(sw);
        let digest = EventSet::from_bits(arena.get(packet).get(Field::Digest).unwrap_or(0));
        self.learn_at(slot, sw, digest, now);
        let known = self.local[slot];

        // IN: stamp host-entering packets with the current tag.
        let effective = self.effective_of(known);
        let stamped = if from_host { arena.with(packet, Field::Tag, effective.1) } else { packet };

        // SWITCH step 2: fire enabled events this arrival matches.
        let effective = effective.0;
        let fired = self.compiled.triggered(effective, arena.get(stamped), Loc::new(sw, pt));
        if !fired.is_empty() {
            self.learn_at(slot, sw, fired, now);
            for e in fired.iter() {
                self.fired_log.push((now, e));
            }
            out.notifications.push(CtrlMsg::Events(fired.bits()));
        }
        let known = self.local[slot];

        // SWITCH steps 3+4: forward under the stamped tag and stamp the
        // outgoing digest. The table is consulted through a zero-copy
        // [`LocatedView`] (packet + location + tag overlay), and when every
        // effect of the hop is idempotent on the packet's content — the
        // steady state: location fields are stripped from outputs anyway,
        // the digest already carries everything this switch knows, the tag
        // is unchanged — the output *is* the input id. Only
        // content-changing hops materialize packets (in reused buffers,
        // interned by reference).
        let tag = match arena.get(stamped).get(Field::Tag) {
            Some(tag) => tag,
            None => self.effective_of(known).1,
        };
        let loc = Loc::new(sw, pt);
        let out_digest = digest.union(known).bits();
        {
            let base = arena.get(stamped);
            let view = LocatedView { base, loc, tag: Some(tag) };
            let rule = self.deployment.lookup_on(self.knobs.path, sw, tag, &view);
            if let Some(rule) = rule {
                if rule.actions.len() == 1 {
                    let action = rule.actions.iter().next().expect("len 1");
                    let mut out_pt = pt;
                    let mut identity =
                        base.get(Field::Switch).is_none() && base.get(Field::Port).is_none();
                    for (f, v) in action.writes() {
                        match f {
                            // Location writes are stripped from outputs;
                            // a port write only picks the egress port.
                            Field::Switch => {}
                            Field::Port => out_pt = v,
                            f if base.get(f) != Some(v) => identity = false,
                            _ => {}
                        }
                    }
                    if identity
                        && base.get(Field::Digest) == Some(out_digest)
                        && base.get(Field::Tag) == Some(tag)
                    {
                        out.outputs.push((out_pt, stamped));
                    } else {
                        let mut buf = std::mem::take(&mut self.out_buf);
                        buf.clone_from(base);
                        buf.take_loc();
                        for (f, v) in action.writes() {
                            if !f.is_location() {
                                buf.set(f, v);
                            }
                        }
                        buf.set(Field::Digest, out_digest);
                        buf.set(Field::Tag, tag);
                        out.outputs.push((out_pt, arena.intern_ref(&buf)));
                        self.out_buf = buf;
                    }
                } else if !rule.actions.is_empty() {
                    // Multicast (rare): materialize the lookup packet and
                    // the same sorted, deduplicated output set
                    // `ActionSet::apply` defines.
                    let mut lookup = std::mem::take(&mut self.lookup_buf);
                    lookup.clone_from(base);
                    lookup.set_loc(loc);
                    lookup.set(Field::Tag, tag);
                    for mut cast in rule.actions.apply(&lookup) {
                        let (_, out_pt) = cast.take_loc();
                        cast.set(Field::Digest, out_digest);
                        cast.set(Field::Tag, tag);
                        out.outputs.push((out_pt.unwrap_or(pt), arena.intern(cast)));
                    }
                    self.lookup_buf = lookup;
                }
            }
        }
    }

    fn on_notify(&mut self, msg: CtrlMsg, _now: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
        let CtrlMsg::Events(bits) = msg else { return Vec::new() };
        // CTRLRECV: move events into the controller.
        self.controller = self.controller.union(EventSet::from_bits(bits));
        if !self.broadcast {
            return Vec::new();
        }
        // CTRLSEND: push the controller's whole view to every switch.
        let view = self.controller.bits();
        self.switches
            .iter()
            .enumerate()
            .map(|(i, &sw)| (SimTime::from_micros(10 * i as u64), sw, CtrlMsg::Events(view)))
            .collect()
    }

    fn deliver(&mut self, sw: u64, msg: CtrlMsg, now: SimTime) {
        if let CtrlMsg::Events(bits) = msg {
            self.learn(sw, EventSet::from_bits(bits), now);
        }
    }

    /// Folds a shard's state back in after a sharded run: per-switch
    /// event-sets and discovery times merge losslessly (each switch was
    /// driven by exactly one shard); the controller state lives on shard
    /// 0 already (other shards' copies are stale clones, unioned
    /// defensively); the global fire log merges stably by timestamp —
    /// deterministic, though not guaranteed to reproduce the solo
    /// interleaving for distinct same-microsecond fires (the log is a
    /// checker *hint*, not part of the byte-identity contract).
    fn absorb_shard(&mut self, other: Self, owned: &[u64]) {
        for &sw in owned {
            let events = other.local_events(sw);
            if !events.is_empty() {
                let slot = self.slot_of(sw);
                self.local[slot] = events;
            }
        }
        for (key, t) in other.discovery {
            self.discovery
                .entry(key)
                .and_modify(|existing| *existing = (*existing).min(t))
                .or_insert(t);
        }
        self.controller = self.controller.union(other.controller);
        let mine = std::mem::take(&mut self.fired_log);
        let mut merged = Vec::with_capacity(mine.len() + other.fired_log.len());
        let (mut a, mut b) = (mine.into_iter().peekable(), other.fired_log.into_iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&(ta, _)), Some(&(tb, _))) if tb < ta => merged.push(b.next().expect("b")),
                (Some(_), _) => merged.push(a.next().expect("a")),
                (None, Some(_)) => merged.push(b.next().expect("b")),
                (None, None) => break,
            }
        }
        self.fired_log = merged;
    }

    /// Reports the compiled lookup index's fingerprint probe outcomes,
    /// summed over every distinct table this plane instance drove (the
    /// optimized layout has no fingerprint index and reports zero).
    fn contribute_metrics(&self, reg: &mut edn_obs::Registry) {
        let (hits, fallbacks) = self.deployment.lookup_stats();
        reg.counter_add(edn_obs::Scope::Shard, "flowindex.fp_hits", hits);
        reg.counter_add(edn_obs::Scope::Shard, "flowindex.fp_fallbacks", fallbacks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::{Config, Event, EventStructure, NetworkEventStructure};
    use netkat::{Action, ActionSet, FlowTable, Match, Pred, Rule};

    /// One switch (1): hosts at ports 2 (src) and 3 (dst).
    /// C∅ forwards 2→3; C{e0} also 3→2. Event e0: arrival of dst=300 at 1:2.
    fn firewall_nes() -> NetworkEventStructure {
        let mk = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(200, Loc::new(1, 2));
            c.add_host(300, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 300), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), mk(vec![fwd(2, 3)])),
                (EventSet::singleton(e0), mk(vec![fwd(2, 3), fwd(3, 2)])),
            ],
        )
        .unwrap()
    }

    fn plane() -> NesDataPlane {
        NesDataPlane::new(CompiledNes::compile(firewall_nes()), vec![1], false)
    }

    #[test]
    fn ingress_stamps_tag_zero_initially() {
        let mut dp = plane();
        let pk = Packet::new().with(Field::IpDst, 999);
        let r = dp.process(1, 2, pk, true, SimTime::ZERO);
        assert_eq!(r.outputs.len(), 1);
        let (pt, out) = &r.outputs[0];
        assert_eq!(*pt, 3);
        assert_eq!(out.get(Field::Tag), Some(0));
        assert!(r.notifications.is_empty());
    }

    #[test]
    fn trigger_fires_event_but_packet_keeps_old_config() {
        let mut dp = plane();
        let pk = Packet::new().with(Field::IpDst, 300);
        let r = dp.process(1, 2, pk, true, SimTime::ZERO);
        // Event fired and was reported.
        assert_eq!(r.notifications, vec![CtrlMsg::Events(1)]);
        assert_eq!(dp.local_events(1), EventSet::singleton(EventId::new(0)));
        assert_eq!(dp.fired_sequence(), vec![EventId::new(0)]);
        // The triggering packet is still stamped with the *pre-event* tag
        // (IN stamps before the SWITCH trigger step).
        assert_eq!(r.outputs[0].1.get(Field::Tag), Some(0));
        // Its digest carries the fired event.
        assert_eq!(r.outputs[0].1.get(Field::Digest), Some(1));
    }

    #[test]
    fn packets_after_event_use_new_config() {
        let mut dp = plane();
        dp.process(1, 2, Packet::new().with(Field::IpDst, 300), true, SimTime::ZERO);
        // Reply direction now allowed.
        let r = dp.process(1, 3, Packet::new().with(Field::IpDst, 200), true, SimTime::ZERO);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, 2);
        assert_eq!(r.outputs[0].1.get(Field::Tag), Some(1));
        // Before the event, that same packet would have been dropped.
        let mut fresh = plane();
        let r = fresh.process(1, 3, Packet::new().with(Field::IpDst, 200), true, SimTime::ZERO);
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn digest_teaches_other_switches() {
        let mut dp = NesDataPlane::new(CompiledNes::compile(firewall_nes()), vec![1, 2], false);
        // A packet carrying digest {e0} arrives at switch 2 (not from host).
        let pk = Packet::new().with(Field::Digest, 1).with(Field::Tag, 1);
        dp.process(2, 1, pk, false, SimTime::from_millis(3));
        assert_eq!(dp.local_events(2), EventSet::singleton(EventId::new(0)));
        assert_eq!(dp.discovery_time(2, EventId::new(0)), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn controller_broadcast_spreads_events() {
        let mut dp = NesDataPlane::new(CompiledNes::compile(firewall_nes()), vec![1, 2], true);
        let pushes = dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO);
        assert_eq!(pushes.len(), 2);
        for (_, sw, msg) in pushes {
            assert_eq!(msg, CtrlMsg::Events(1));
            dp.deliver(sw, msg, SimTime::from_millis(5));
        }
        assert_eq!(dp.local_events(2), EventSet::singleton(EventId::new(0)));
        // Without broadcast, no pushes.
        let mut quiet = NesDataPlane::new(CompiledNes::compile(firewall_nes()), vec![1, 2], false);
        assert!(quiet.on_notify(CtrlMsg::Events(1), SimTime::ZERO).is_empty());
    }

    #[test]
    fn lookup_paths_agree_step_by_step() {
        // Drive the same packet sequence through a linear-path and an
        // indexed-path deployment; every step must produce identical
        // outputs, notifications, and switch state.
        let mk = |path| {
            NesDataPlane::with_path(CompiledNes::compile(firewall_nes()), vec![1], false, path)
        };
        let mut linear = mk(LookupPath::Linear);
        let mut indexed = mk(LookupPath::Indexed);
        assert_eq!(indexed.lookup_path(), LookupPath::Indexed);
        let steps = [
            (2u64, 999u64, true),
            (3, 200, true), // blocked pre-event
            (2, 300, true), // fires e0
            (3, 200, true), // allowed post-event
            (9, 300, false),
        ];
        for (pt, dst, from_host) in steps {
            let pk = Packet::new().with(Field::IpDst, dst);
            let a = linear.process(1, pt, pk.clone(), from_host, SimTime::ZERO);
            let b = indexed.process(1, pt, pk, from_host, SimTime::ZERO);
            assert_eq!(a, b, "paths diverged at pt {pt}, dst {dst}");
            assert_eq!(linear.local_events(1), indexed.local_events(1));
        }
    }

    #[test]
    fn deployments_agree_step_by_step() {
        // Drive the same packet sequence through every (compile, optimize)
        // knob combination; each step must produce identical outputs,
        // notifications, and switch state. (EDN_OPTIMIZE=on overrides the
        // compile path, but both combinations must still work.)
        let knob_matrix = [
            (CompilePath::Scratch, OptimizeMode::Off),
            (CompilePath::Delta, OptimizeMode::Off),
            (CompilePath::Scratch, OptimizeMode::On),
            (CompilePath::Delta, OptimizeMode::On),
        ];
        let mk = |compile, optimize| {
            NesDataPlane::with_knobs(
                CompiledNes::compile(firewall_nes()),
                vec![1],
                false,
                crate::deploy::DeployKnobs { compile, optimize, ..Default::default() },
            )
        };
        let mut reference = mk(CompilePath::Scratch, OptimizeMode::Off);
        let mut legs: Vec<NesDataPlane> = knob_matrix[1..].iter().map(|&(c, o)| mk(c, o)).collect();
        assert_eq!(legs[0].compile_path(), CompilePath::Delta);
        assert!(legs[0].delta_rule_mods().is_some());
        assert!(legs[1].optimize_mode().is_on());
        assert!(legs[1].optimized_rule_counts().is_some());
        let steps = [
            (2u64, 999u64, true),
            (3, 200, true), // blocked pre-event
            (2, 300, true), // fires e0
            (3, 200, true), // allowed post-event
            (9, 300, false),
        ];
        for (pt, dst, from_host) in steps {
            let pk = Packet::new().with(Field::IpDst, dst);
            let want = reference.process(1, pt, pk.clone(), from_host, SimTime::ZERO);
            for (leg, &(c, o)) in legs.iter_mut().zip(&knob_matrix[1..]) {
                let got = leg.process(1, pt, pk.clone(), from_host, SimTime::ZERO);
                assert_eq!(
                    got,
                    want,
                    "compile {}/optimize {} diverged at pt {pt}, dst {dst}",
                    c.label(),
                    o.label()
                );
                assert_eq!(leg.local_events(1), reference.local_events(1));
            }
        }
    }

    #[test]
    fn event_fires_only_once() {
        let mut dp = plane();
        dp.process(1, 2, Packet::new().with(Field::IpDst, 300), true, SimTime::ZERO);
        let r = dp.process(1, 2, Packet::new().with(Field::IpDst, 300), true, SimTime::ZERO);
        assert!(r.notifications.is_empty(), "already-fired events do not re-fire");
        assert_eq!(dp.fired_sequence().len(), 1);
    }
}
