//! A static data plane: one fixed configuration, no tags, no events.
//!
//! This is the Fig. 16(a) reference point — "the initial (static)
//! configuration of the program running on un-modified OpenFlow 1.0
//! reference switches" — against which the NES runtime's overhead is
//! measured.

use edn_core::Config;
use netkat::{Field, Loc, Packet};
use netsim::{CtrlMsg, DataPlane, SimTime, StepResult};

/// A data plane that forwards under a single fixed [`Config`].
#[derive(Clone, Debug)]
pub struct StaticDataPlane {
    config: Config,
}

impl StaticDataPlane {
    /// Deploys the configuration.
    pub fn new(config: Config) -> StaticDataPlane {
        StaticDataPlane { config }
    }

    /// The deployed configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

impl DataPlane for StaticDataPlane {
    fn process(&mut self, sw: u64, pt: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
        let Some(table) = self.config.table(sw) else { return StepResult::drop() };
        let mut lookup = packet;
        lookup.set_loc(Loc::new(sw, pt));
        let mut outputs = Vec::new();
        for mut out in table.apply(&lookup) {
            let out_pt = out.get(Field::Port).unwrap_or(pt);
            out.unset(Field::Switch);
            out.unset(Field::Port);
            outputs.push((out_pt, out));
        }
        StepResult { outputs, notifications: Vec::new() }
    }

    fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
        Vec::new()
    }

    fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Action, ActionSet, FlowTable, Match, Rule};

    #[test]
    fn forwards_under_the_fixed_config() {
        let mut config = Config::new();
        config.install(
            1,
            FlowTable::from_rules([Rule::new(
                Match::new().with(Field::Port, 2),
                ActionSet::single(Action::assign(Field::Port, 3)),
            )]),
        );
        let mut dp = StaticDataPlane::new(config);
        let r = dp.process(1, 2, Packet::new(), true, SimTime::ZERO);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, 3);
        assert!(r.notifications.is_empty());
        // Non-matching port drops.
        assert!(dp.process(1, 9, Packet::new(), true, SimTime::ZERO).outputs.is_empty());
        // Controller messages are inert.
        assert!(dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO).is_empty());
    }
}
