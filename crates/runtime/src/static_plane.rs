//! A static data plane: one fixed configuration, no tags, no events.
//!
//! This is the Fig. 16(a) reference point — "the initial (static)
//! configuration of the program running on un-modified OpenFlow 1.0
//! reference switches" — against which the NES runtime's overhead is
//! measured.

use std::collections::BTreeMap;

use edn_core::Config;
use netkat::{CompiledTable, Field, Loc, LocatedView, LookupPath, Packet, PacketArena, PacketId};
use netsim::{table_outputs, CtrlMsg, DataPlane, SimTime, StepResult, StepResultId};

use crate::deploy::{OptimizeMode, OptimizedTables};

/// A data plane that forwards under a single fixed [`Config`].
#[derive(Clone, Debug)]
pub struct StaticDataPlane {
    config: Config,
    /// Per-switch compiled tables, built once at deployment.
    index: BTreeMap<u64, CompiledTable>,
    path: LookupPath,
    /// The trie-compressed layout, when `EDN_OPTIMIZE=on`: the degenerate
    /// single-configuration case (one leaf, all-wildcard guards), routed
    /// through the same guarded scan as the NES plane so the optimizer's
    /// hot path is exercised under both data planes.
    optimized: Option<OptimizedTables>,
    /// Reused arena-path buffers (see `NesDataPlane`): lookup and output
    /// packets are built here; a steady-state hop allocates nothing.
    lookup_buf: Packet,
    out_buf: Packet,
}

impl StaticDataPlane {
    /// Deploys the configuration, with the lookup path and optimizer mode
    /// taken from the environment (`EDN_LOOKUP`, `EDN_OPTIMIZE`).
    pub fn new(config: Config) -> StaticDataPlane {
        StaticDataPlane::with_knobs(config, LookupPath::from_env(), OptimizeMode::from_env())
    }

    /// Deploys the configuration on an explicit lookup path, the optimizer
    /// mode from the environment.
    pub fn with_path(config: Config, path: LookupPath) -> StaticDataPlane {
        StaticDataPlane::with_knobs(config, path, OptimizeMode::from_env())
    }

    /// Deploys the configuration with every knob pinned explicitly.
    pub fn with_knobs(config: Config, path: LookupPath, optimize: OptimizeMode) -> StaticDataPlane {
        let index = config
            .switches()
            .filter_map(|sw| config.table(sw).map(|t| (sw, t.compile())))
            .collect();
        let optimized = optimize.is_on().then(|| OptimizedTables::from_config(&config));
        StaticDataPlane {
            config,
            index,
            path,
            optimized,
            lookup_buf: Packet::new(),
            out_buf: Packet::new(),
        }
    }

    /// The deployed configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The lookup path this deployment dispatches through.
    pub fn lookup_path(&self) -> LookupPath {
        self.path
    }

    /// Whether the rule-sharing optimizer is on the hot path.
    pub fn optimize_mode(&self) -> OptimizeMode {
        if self.optimized.is_some() {
            OptimizeMode::On
        } else {
            OptimizeMode::Off
        }
    }
}

impl DataPlane for StaticDataPlane {
    fn process(&mut self, sw: u64, pt: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
        let mut lookup = packet;
        lookup.set_loc(Loc::new(sw, pt));
        let rule = if let Some(optimized) = &self.optimized {
            optimized.lookup_on(sw, 0, &lookup)
        } else {
            match self.path {
                LookupPath::Linear => self.config.table(sw).and_then(|t| t.lookup_on(&lookup)),
                LookupPath::Indexed => self.index.get(&sw).and_then(|t| t.lookup_on(&lookup)),
            }
        };
        let mut out = Vec::new();
        if let Some(rule) = rule {
            rule.actions.apply_into(&lookup, &mut out);
        }
        StepResult { outputs: table_outputs(pt, out), notifications: Vec::new() }
    }

    /// The native arena path: a zero-copy [`LocatedView`] table lookup
    /// (on the plane's selected lookup path) plus the identity-hop fast
    /// path — a hop whose writes change nothing forwards the input id
    /// without materializing or interning anything.
    fn process_arena(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
    ) -> StepResultId {
        let mut out = StepResultId::default();
        self.process_arena_into(sw, pt, packet, from_host, now, arena, &mut out);
        out
    }

    /// [`process_arena`](DataPlane::process_arena) writing into the
    /// engine's reused step buffer: zero-copy view lookup, identity fast
    /// path, reused buffers for content-changing hops — a steady-state
    /// hop allocates nothing at all.
    fn process_arena_into(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        _from_host: bool,
        _now: SimTime,
        arena: &mut PacketArena,
        out: &mut StepResultId,
    ) {
        out.clear();
        // Same structure as `NesDataPlane::process_arena_into`, minus
        // events.
        let loc = Loc::new(sw, pt);
        let base = arena.get(packet);
        let view = LocatedView { base, loc, tag: None };
        let rule = if let Some(optimized) = &self.optimized {
            optimized.lookup_on(sw, 0, &view)
        } else {
            match self.path {
                LookupPath::Linear => self.config.table(sw).and_then(|t| t.lookup_on(&view)),
                LookupPath::Indexed => self.index.get(&sw).and_then(|t| t.lookup_on(&view)),
            }
        };
        if let Some(rule) = rule {
            if rule.actions.len() == 1 {
                let action = rule.actions.iter().next().expect("len 1");
                let mut out_pt = pt;
                let mut identity =
                    base.get(Field::Switch).is_none() && base.get(Field::Port).is_none();
                for (f, v) in action.writes() {
                    match f {
                        Field::Switch => {}
                        Field::Port => out_pt = v,
                        f if base.get(f) != Some(v) => identity = false,
                        _ => {}
                    }
                }
                if identity {
                    out.outputs.push((out_pt, packet));
                } else {
                    let mut buf = std::mem::take(&mut self.out_buf);
                    buf.clone_from(base);
                    buf.take_loc();
                    for (f, v) in action.writes() {
                        if !f.is_location() {
                            buf.set(f, v);
                        }
                    }
                    out.outputs.push((out_pt, arena.intern_ref(&buf)));
                    self.out_buf = buf;
                }
            } else if !rule.actions.is_empty() {
                // Multicast (rare): materialize the lookup packet and
                // `ActionSet::apply`'s sorted output set.
                let mut lookup = std::mem::take(&mut self.lookup_buf);
                lookup.clone_from(base);
                lookup.set_loc(loc);
                for mut cast in rule.actions.apply(&lookup) {
                    let (_, out_pt) = cast.take_loc();
                    out.outputs.push((out_pt.unwrap_or(pt), arena.intern(cast)));
                }
                self.lookup_buf = lookup;
            }
        }
    }

    fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
        Vec::new()
    }

    fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}

    /// Reports the compiled lookup index's fingerprint probe outcomes,
    /// summed over the per-switch tables.
    fn contribute_metrics(&self, reg: &mut edn_obs::Registry) {
        let (mut hits, mut fallbacks) = (0u64, 0u64);
        for table in self.index.values() {
            let (h, f) = table.lookup_stats();
            hits += h;
            fallbacks += f;
        }
        reg.counter_add(edn_obs::Scope::Shard, "flowindex.fp_hits", hits);
        reg.counter_add(edn_obs::Scope::Shard, "flowindex.fp_fallbacks", fallbacks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Action, ActionSet, Field, FlowTable, Match, Rule};

    fn config() -> Config {
        let mut config = Config::new();
        config.install(
            1,
            FlowTable::from_rules([Rule::new(
                Match::new().with(Field::Port, 2),
                ActionSet::single(Action::assign(Field::Port, 3)),
            )]),
        );
        config
    }

    #[test]
    fn forwards_under_the_fixed_config() {
        let mut dp = StaticDataPlane::new(config());
        let r = dp.process(1, 2, Packet::new(), true, SimTime::ZERO);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, 3);
        assert!(r.notifications.is_empty());
        // Non-matching port drops.
        assert!(dp.process(1, 9, Packet::new(), true, SimTime::ZERO).outputs.is_empty());
        // Controller messages are inert.
        assert!(dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO).is_empty());
    }

    #[test]
    fn both_lookup_paths_agree() {
        let mut linear = StaticDataPlane::with_path(config(), LookupPath::Linear);
        let mut indexed = StaticDataPlane::with_path(config(), LookupPath::Indexed);
        assert_eq!(linear.lookup_path(), LookupPath::Linear);
        assert_eq!(indexed.lookup_path(), LookupPath::Indexed);
        for (sw, pt) in [(1u64, 2u64), (1, 9), (7, 2)] {
            let pk = Packet::new().with(Field::Vlan, 5);
            assert_eq!(
                linear.process(sw, pt, pk.clone(), true, SimTime::ZERO),
                indexed.process(sw, pt, pk, true, SimTime::ZERO),
                "paths diverged at {sw}:{pt}"
            );
        }
    }
}
