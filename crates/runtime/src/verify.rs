//! End-to-end glue: deploy an NES on the simulator, run a scenario, and
//! check the recorded trace against Definition 6.

use edn_core::{
    check_correct, CorrectnessViolation, NetworkEventStructure, OnlineChecker, OnlineHandle,
    OnlineViolation,
};
use netsim::{DataPlane, Engine, RunResult, SimParams, SimTopology};

use crate::compile::CompiledNes;
use crate::dataplane::NesDataPlane;
use crate::deploy::DeployKnobs;
use crate::uncoordinated::UncoordDataPlane;

/// Builds an engine running `nes` with the paper's runtime.
///
/// `broadcast` enables the controller-assisted event dissemination. The
/// flow-table lookup path comes from the environment (`EDN_LOOKUP`,
/// default indexed); use [`nes_engine_with_path`] to pin it. The shard
/// count also comes from the environment (`EDN_SHARDS`, default 1 =
/// single-threaded); override it with
/// [`Engine::with_shards`](netsim::Engine::with_shards) — results are
/// byte-identical at any shard count.
pub fn nes_engine(
    nes: NetworkEventStructure,
    topo: SimTopology,
    params: SimParams,
    broadcast: bool,
    hosts: netsim::BoxedHosts,
) -> Engine<NesDataPlane> {
    nes_engine_with(nes, topo, params, broadcast, hosts, DeployKnobs::from_env())
}

/// [`nes_engine`] with an explicit flow-table lookup path (the remaining
/// deployment knobs come from the environment).
pub fn nes_engine_with_path(
    nes: NetworkEventStructure,
    topo: SimTopology,
    params: SimParams,
    broadcast: bool,
    hosts: netsim::BoxedHosts,
    path: netkat::LookupPath,
) -> Engine<NesDataPlane> {
    nes_engine_with(nes, topo, params, broadcast, hosts, DeployKnobs::from_env().with_path(path))
}

/// [`nes_engine`] with every deployment knob pinned explicitly — the
/// constructor the differential suites use, so in-process legs never race
/// on environment variables. The shard count still comes from the
/// environment; override with
/// [`Engine::with_shards`](netsim::Engine::with_shards).
pub fn nes_engine_with(
    nes: NetworkEventStructure,
    topo: SimTopology,
    params: SimParams,
    broadcast: bool,
    hosts: netsim::BoxedHosts,
    knobs: DeployKnobs,
) -> Engine<NesDataPlane> {
    let switches = topo.switches().to_vec();
    let dataplane = NesDataPlane::with_knobs(CompiledNes::compile(nes), switches, broadcast, knobs);
    Engine::new(topo, params, dataplane, hosts).with_shards(netsim::shard_count_from_env())
}

/// [`nes_engine_with`] with the paper's runtime wrapped in the
/// [`Reliable`](crate::Reliable) ack/retry layer — the deployment for
/// lossy control channels (`EDN_CHANNEL=lossy`, or
/// [`Engine::with_channel`](netsim::Engine::with_channel)). `budget` is
/// the maximum retransmissions per message; after the run, check
/// [`Reliable::degraded`](crate::Reliable::degraded) on the returned
/// data plane.
pub fn nes_reliable_engine_with(
    nes: NetworkEventStructure,
    topo: SimTopology,
    params: SimParams,
    broadcast: bool,
    hosts: netsim::BoxedHosts,
    knobs: DeployKnobs,
    budget: u32,
) -> Engine<crate::Reliable<NesDataPlane>> {
    let switches = topo.switches().to_vec();
    let inner = NesDataPlane::with_knobs(CompiledNes::compile(nes), switches, broadcast, knobs);
    let dataplane = crate::Reliable::with_budget(inner, budget);
    Engine::new(topo, params, dataplane, hosts).with_shards(netsim::shard_count_from_env())
}

/// Builds an engine running `nes` with the uncoordinated baseline. Like
/// [`nes_engine`], the shard count comes from the environment
/// (`EDN_SHARDS`) — the baseline's per-switch state merges losslessly,
/// so results are byte-identical at any shard count.
pub fn uncoordinated_engine(
    nes: NetworkEventStructure,
    topo: SimTopology,
    params: SimParams,
    update_delay: netsim::SimTime,
    seed: u64,
    hosts: netsim::BoxedHosts,
) -> Engine<UncoordDataPlane> {
    let switches = topo.switches().to_vec();
    let dataplane = UncoordDataPlane::new(CompiledNes::compile(nes), switches, update_delay, seed);
    Engine::new(topo, params, dataplane, hosts).with_shards(netsim::shard_count_from_env())
}

/// Attaches an online Definition 6 checker to an engine *before* the run:
/// the engine streams every processing step into the checker, which
/// discharges its happens-before obligations incrementally and retires
/// trace prefixes — so even a [`TraceMode::StatsOnly`](netsim::TraceMode)
/// run produces a verdict, in memory bounded by the packets in flight.
///
/// Call [`OnlineHandle::verdict`] after the run finishes. An engine with an
/// observer runs single-threaded regardless of `EDN_SHARDS` (results are
/// byte-identical at any shard count, so the verdict is too).
///
/// # Errors
///
/// Returns [`OnlineViolation::CapacityExceeded`] if the NES has more
/// reachable configurations than the checker's window (64).
pub fn attach_online_checker<D: DataPlane>(
    engine: &mut Engine<D>,
    nes: &NetworkEventStructure,
) -> Result<OnlineHandle, OnlineViolation> {
    let (observer, handle) = OnlineChecker::observer(nes)?;
    engine.set_observer(observer);
    Ok(handle)
}

/// Checks a finished NES-runtime run against Definition 6, using the
/// runtime's own fire log as the candidate event sequence.
///
/// # Errors
///
/// Returns the checker's violation, which for a correct runtime indicates a
/// bug in either the runtime or the checker — the paper's Theorem 1 says
/// every execution of the implementation is correct.
pub fn verify_nes_run(result: &RunResult<NesDataPlane>) -> Result<(), CorrectnessViolation> {
    let hint = result.dataplane.fired_sequence();
    check_correct(&result.trace, result.dataplane.compiled().nes(), Some(&hint))
}

/// [`verify_nes_run`] for a run wrapped in the reliability layer: the
/// wrapper restores exactly-once in-order message delivery, so the inner
/// runtime's fire log is the candidate sequence exactly as in the ideal
/// case. Callers must additionally consult
/// [`Reliable::degraded`](crate::Reliable::degraded) — a degraded run
/// may have missed messages and gets no Theorem 1 guarantee.
///
/// # Errors
///
/// Returns the checker's violation (see [`verify_nes_run`]).
pub fn verify_reliable_nes_run(
    result: &RunResult<crate::Reliable<NesDataPlane>>,
) -> Result<(), CorrectnessViolation> {
    let hint = result.dataplane.inner().fired_sequence();
    check_correct(&result.trace, result.dataplane.inner().compiled().nes(), Some(&hint))
}

/// Checks a finished uncoordinated-baseline run against Definition 6.
///
/// # Errors
///
/// Returns the violation — which is the *expected* outcome on the paper's
/// case studies: the baseline provides no event-driven consistency.
pub fn verify_uncoordinated_run(
    result: &RunResult<UncoordDataPlane>,
    nes: &NetworkEventStructure,
) -> Result<(), CorrectnessViolation> {
    check_correct(&result.trace, nes, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::{Config, Event, EventId, EventSet, EventStructure};
    use netkat::{Action, ActionSet, Field, FlowTable, Loc, Match, Pred, Rule};
    use netsim::traffic::{ping_outcomes, schedule_pings, Ping, ScenarioHosts};
    use netsim::SimTime;

    /// One switch, two hosts; the firewall-flavoured NES used across the
    /// runtime tests.
    fn nes_and_topo() -> (NetworkEventStructure, SimTopology) {
        let mk = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(200, Loc::new(1, 2));
            c.add_host(300, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 300), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        let nes = NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), mk(vec![fwd(2, 3)])),
                (EventSet::singleton(e0), mk(vec![fwd(2, 3), fwd(3, 2)])),
            ],
        )
        .unwrap();
        let topo = SimTopology::new([1]).host(200, Loc::new(1, 2)).host(300, Loc::new(1, 3));
        (nes, topo)
    }

    #[test]
    fn nes_runtime_run_is_correct_and_pings_succeed() {
        let (nes, topo) = nes_and_topo();
        let mut engine =
            nes_engine(nes, topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        let pings = vec![
            // Before the event: 300 -> 200 must fail.
            Ping { time: SimTime::from_millis(1), src: 300, dst: 200, id: 1 },
            // Trigger: 200 -> 300. Its own reply also tests the new config.
            Ping { time: SimTime::from_millis(100), src: 200, dst: 300, id: 2 },
            // After the event: 300 -> 200 must succeed.
            Ping { time: SimTime::from_millis(200), src: 300, dst: 200, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let outcomes = ping_outcomes(&pings, &result.stats);
        assert!(!outcomes[0].request_delivered, "pre-event reverse traffic blocked");
        assert!(outcomes[1].replied.is_some(), "trigger ping answered");
        assert!(outcomes[2].replied.is_some(), "post-event reverse traffic flows");
        verify_nes_run(&result).expect("Theorem 1: runtime traces are correct");
    }

    #[test]
    fn online_checker_agrees_with_post_hoc_on_correct_run() {
        let (nes, topo) = nes_and_topo();
        let mut engine = nes_engine(
            nes.clone(),
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
        );
        let handle = attach_online_checker(&mut engine, &nes).expect("tiny NES fits the window");
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: 300, dst: 200, id: 1 },
            Ping { time: SimTime::from_millis(100), src: 200, dst: 300, id: 2 },
            Ping { time: SimTime::from_millis(200), src: 300, dst: 200, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        verify_nes_run(&result).expect("post-hoc checker accepts the run");
        handle.verdict().expect("online checker agrees");
    }

    #[test]
    fn online_checker_flags_the_uncoordinated_run() {
        let (nes, topo) = nes_and_topo();
        let mut engine = uncoordinated_engine(
            nes.clone(),
            topo,
            SimParams::default(),
            SimTime::from_millis(500),
            42,
            Box::new(ScenarioHosts::new()),
        );
        let handle = attach_online_checker(&mut engine, &nes).expect("tiny NES fits the window");
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: 200, dst: 300, id: 1 },
            Ping { time: SimTime::from_millis(10), src: 300, dst: 200, id: 2 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        assert!(verify_uncoordinated_run(&result, &nes).is_err(), "post-hoc flags the run");
        assert!(handle.verdict().is_err(), "online checker flags it too");
    }

    /// At `EDN_METRICS=full` a checker violation leaves a crash dump
    /// behind: the engine's flight recorder (auto-attached to the checker
    /// by `set_observer`) records the violation alongside the preceding
    /// event firings, and its JSON dump names the violation kind.
    #[test]
    fn violation_lands_in_the_flight_recorder() {
        let (nes, topo) = nes_and_topo();
        let mut engine = uncoordinated_engine(
            nes.clone(),
            topo,
            SimParams::default(),
            SimTime::from_millis(500),
            42,
            Box::new(ScenarioHosts::new()),
        )
        .with_metrics(netsim::MetricsLevel::Full);
        let flight = engine.flight_recorder().expect("full level attaches the recorder");
        let handle = attach_online_checker(&mut engine, &nes).expect("tiny NES fits the window");
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: 200, dst: 300, id: 1 },
            Ping { time: SimTime::from_millis(10), src: 300, dst: 200, id: 2 },
        ];
        schedule_pings(&mut engine, &pings);
        engine.run_until(SimTime::from_secs(2));
        let violation = handle.verdict().expect_err("the baseline run violates Definition 6");
        let dump = flight.dump_json();
        assert!(dump.contains(&format!("\"{}\"", violation.name())), "dump: {dump}");
    }

    #[test]
    fn uncoordinated_run_violates_consistency() {
        let (nes, topo) = nes_and_topo();
        let mut engine = uncoordinated_engine(
            nes.clone(),
            topo,
            SimParams::default(),
            SimTime::from_millis(500),
            42,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: 200, dst: 300, id: 1 },
            // Right after the trigger, before the controller push lands:
            Ping { time: SimTime::from_millis(10), src: 300, dst: 200, id: 2 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        let outcomes = ping_outcomes(&pings, &result.stats);
        // The second ping arrives at the switch that HAS seen the event but
        // still runs the old configuration: incorrectly dropped.
        assert!(!outcomes[1].request_delivered, "baseline drops the packet");
        let verdict = verify_uncoordinated_run(&result, &nes);
        assert!(verdict.is_err(), "the checker flags the uncoordinated run");
    }

    /// The tentpole proof obligation in miniature: over a lossy channel
    /// the reliability-wrapped runtime still satisfies Definition 6 —
    /// the wrapper restores the ideal message sequence, so Theorem 1's
    /// guarantee carries over.
    #[test]
    fn reliable_runtime_survives_a_lossy_channel() {
        let (nes, topo) = nes_and_topo();
        let mut engine = nes_reliable_engine_with(
            nes,
            topo,
            SimParams::default(),
            false,
            Box::new(ScenarioHosts::new()),
            DeployKnobs::from_env(),
            8,
        )
        .with_channel(netsim::ChannelModel::lossy(99));
        let pings = vec![
            Ping { time: SimTime::from_millis(1), src: 300, dst: 200, id: 1 },
            Ping { time: SimTime::from_millis(100), src: 200, dst: 300, id: 2 },
            Ping { time: SimTime::from_millis(400), src: 300, dst: 200, id: 3 },
        ];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(2));
        assert!(!result.dataplane.degraded(), "a generous budget survives 6% loss");
        verify_reliable_nes_run(&result).expect("Theorem 1 holds over a lossy channel");
    }

    #[test]
    fn trigger_packet_itself_uses_old_config() {
        // The event also *allows* traffic the old config dropped; the
        // triggering packet must NOT benefit (per-packet consistency).
        let (nes, topo) = nes_and_topo();
        let mut engine =
            nes_engine(nes, topo, SimParams::default(), false, Box::new(ScenarioHosts::new()));
        // The trigger ping's reply is what tests the new config; covered in
        // the first test. Here: verify correctness holds for a run with
        // only the trigger.
        let pings = vec![Ping { time: SimTime::from_millis(1), src: 200, dst: 300, id: 1 }];
        schedule_pings(&mut engine, &pings);
        let result = engine.run_until(SimTime::from_secs(1));
        assert!(ping_outcomes(&pings, &result.stats)[0].replied.is_some());
        verify_nes_run(&result).expect("correct");
    }
}
