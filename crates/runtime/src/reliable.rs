//! The control-channel reliability layer: sequence-numbered envelopes,
//! cumulative acks, duplicate suppression, and retransmission with
//! exponential backoff — TCP's survival kit, shrunk to the southbound
//! channel.
//!
//! [`Reliable`] wraps any [`DataPlane`] and restores the exactly-once,
//! in-order message semantics the paper's runtime (Defs. 5–6) assumes,
//! on top of a channel that drops, duplicates, and reorders
//! (`netsim::ChannelModel`). The argument that consistency is preserved
//! is a simulation: every stream's receiver releases messages to the
//! inner plane exactly once, in sequence order — so the inner plane
//! observes precisely the message sequence an ideal channel would have
//! delivered, merely later. Events, tags, and digests are computed from
//! that sequence, so every consistency property of the ideal-channel run
//! carries over unchanged.
//!
//! The one escape hatch is the retry budget: a message retransmitted
//! past the budget is abandoned, the plane is marked **degraded**, and a
//! `retry_exhausted` event lands in the flight recorder — an explicit
//! loud failure instead of a silent wrong answer. The budget comes from
//! `EDN_RETRY_BUDGET` (default 8) or [`Reliable::with_budget`].
//!
//! Two independent streams exist per switch: switch→controller
//! (notifications) and controller→switch (commands). Acks ride
//! piggybacked on data envelopes and as dedicated [`CtrlMsg::Ack`]
//! messages; pure acks are never themselves acknowledged, so there is no
//! ack storm. Retransmit timers use the engine's deterministic timer
//! events, keyed per entity — lossy runs stay byte-identical across
//! shard counts.

use std::collections::BTreeMap;

use edn_obs::Hist;
use netsim::{
    CtrlMsg, DataPlane, PacketArena, PacketId, SimTime, StepResult, StepResultId, TimerStep,
    CONTROLLER_NODE,
};

/// Reads the retransmit budget from `EDN_RETRY_BUDGET` (maximum
/// retransmissions per message; unset means 8).
///
/// # Panics
///
/// Panics if the variable is set but not a number.
pub fn retry_budget_from_env() -> u32 {
    match std::env::var("EDN_RETRY_BUDGET") {
        Ok(v) => {
            v.parse().unwrap_or_else(|_| panic!("EDN_RETRY_BUDGET must be a number, got {v:?}"))
        }
        Err(_) => 8,
    }
}

/// Initial retransmission timeout; doubles on every retry. Comfortably
/// above one control-channel round trip at the default latency.
fn base_rto() -> SimTime {
    SimTime::from_millis(20)
}

/// Flattens a data message into the envelope's `(kind, bits)` payload.
fn pack(msg: CtrlMsg) -> (u8, u64) {
    match msg {
        CtrlMsg::Events(bits) => (0, bits),
        CtrlMsg::SetConfig(tag) => (1, tag),
        CtrlMsg::Reliable { .. } | CtrlMsg::Ack { .. } => {
            unreachable!("reliability plumbing is never wrapped")
        }
    }
}

/// Inverse of [`pack`].
fn unpack(kind: u8, bits: u64) -> CtrlMsg {
    match kind {
        0 => CtrlMsg::Events(bits),
        1 => CtrlMsg::SetConfig(bits),
        other => unreachable!("unknown envelope kind {other}"),
    }
}

/// One unacknowledged sent message.
#[derive(Clone, Copy, Debug)]
struct Unacked {
    kind: u8,
    bits: u64,
    /// First-transmission time (RTT samples use it, Karn-style: only
    /// never-retransmitted messages contribute).
    sent: SimTime,
    retries: u32,
    /// Current timeout (doubles per retry).
    rto: SimTime,
    /// When the next retransmission is due.
    deadline: SimTime,
}

/// Sender half of one stream.
#[derive(Clone, Debug, Default)]
struct TxState {
    /// Last assigned sequence number (1-based; 0 = nothing sent).
    next: u32,
    unacked: BTreeMap<u32, Unacked>,
}

/// Receiver half of one stream.
#[derive(Clone, Debug, Default)]
struct RxState {
    /// Highest sequence received in order; everything ≤ this was
    /// released to the inner plane exactly once.
    cum: u32,
    /// Out-of-order arrivals held for reassembly.
    hold: BTreeMap<u32, (u8, u64)>,
}

/// One endpoint's state for one switch's stream pair.
#[derive(Clone, Debug, Default)]
struct EndState {
    tx: TxState,
    rx: RxState,
}

/// Removes and returns every entry acknowledged by cumulative `ack`.
fn take_acked(tx: &mut TxState, ack: u32) -> Vec<Unacked> {
    let seqs: Vec<u32> = tx.unacked.range(..=ack).map(|(&s, _)| s).collect();
    seqs.into_iter().map(|s| tx.unacked.remove(&s).expect("just enumerated")).collect()
}

/// Retransmits every due entry of one stream (or abandons it when the
/// budget is spent), writing fresh envelopes into `out`. Free function so
/// callers can split borrows across the plane's fields.
#[allow(clippy::too_many_arguments)]
fn retransmit_due(
    st: &mut EndState,
    sw: u64,
    node: u64,
    now: SimTime,
    budget: u32,
    timers: &mut Vec<(SimTime, u64)>,
    events: &mut Vec<(&'static str, u64)>,
    degraded: &mut bool,
    retransmits: &mut u64,
    out: &mut Vec<CtrlMsg>,
) {
    let due: Vec<u32> =
        st.tx.unacked.iter().filter(|(_, u)| u.deadline <= now).map(|(&s, _)| s).collect();
    for seq in due {
        let u = st.tx.unacked.get_mut(&seq).expect("just enumerated");
        if u.retries >= budget {
            st.tx.unacked.remove(&seq);
            *degraded = true;
            events.push(("retry_exhausted", node));
            continue;
        }
        u.retries += 1;
        u.rto = SimTime::from_micros(u.rto.as_micros().saturating_mul(2));
        u.deadline = now + u.rto;
        *retransmits += 1;
        timers.push((u.deadline, node));
        out.push(CtrlMsg::Reliable { sw, seq, ack: st.rx.cum, kind: u.kind, bits: u.bits });
    }
}

/// A [`DataPlane`] adapter adding ack/retry/backoff reliability to the
/// switch↔controller channel (see the module docs for the protocol and
/// the consistency-preservation argument).
#[derive(Clone, Debug)]
pub struct Reliable<D> {
    inner: D,
    /// Maximum retransmissions per message before giving up degraded.
    budget: u32,
    /// Per-switch state held at the switch endpoint.
    sw_state: BTreeMap<u64, EndState>,
    /// Per-switch state held at the controller endpoint.
    ctrl_state: BTreeMap<u64, EndState>,
    /// Pending timer requests for the engine ([`DataPlane::drain_timers`]).
    timers: Vec<(SimTime, u64)>,
    /// Pending flight-recorder events
    /// ([`DataPlane::drain_channel_events`]).
    events: Vec<(&'static str, u64)>,
    degraded: bool,
    retransmits: u64,
    dup_suppressed: u64,
    acked: u64,
    ack_rtt_us: Hist,
}

impl<D> Reliable<D> {
    /// Wraps `inner`, reading the retry budget from `EDN_RETRY_BUDGET`.
    pub fn new(inner: D) -> Reliable<D> {
        Reliable::with_budget(inner, retry_budget_from_env())
    }

    /// Wraps `inner` with an explicit retry budget (maximum
    /// retransmissions per message).
    pub fn with_budget(inner: D, budget: u32) -> Reliable<D> {
        Reliable {
            inner,
            budget,
            sw_state: BTreeMap::new(),
            ctrl_state: BTreeMap::new(),
            timers: Vec::new(),
            events: Vec::new(),
            degraded: false,
            retransmits: 0,
            dup_suppressed: 0,
            acked: 0,
            ack_rtt_us: Hist::new(),
        }
    }

    /// The wrapped plane.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped plane.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Did any message exhaust its retry budget? A `true` here means the
    /// inner plane may have missed messages: the run must be reported as
    /// `degraded`, never silently trusted.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Total retransmissions performed so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Total duplicate receptions suppressed so far.
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }

    /// Wraps one outgoing switch→controller message into an envelope,
    /// registering it for retransmission.
    fn sw_send(&mut self, sw: u64, msg: CtrlMsg, now: SimTime) -> CtrlMsg {
        let (kind, bits) = pack(msg);
        let st = self.sw_state.entry(sw).or_default();
        st.tx.next += 1;
        let seq = st.tx.next;
        let deadline = now + base_rto();
        st.tx
            .unacked
            .insert(seq, Unacked { kind, bits, sent: now, retries: 0, rto: base_rto(), deadline });
        self.timers.push((deadline, sw));
        CtrlMsg::Reliable { sw, seq, ack: st.rx.cum, kind, bits }
    }

    /// Wraps one outgoing controller→switch command into an envelope,
    /// registering it for retransmission.
    fn ctrl_send(&mut self, sw: u64, msg: CtrlMsg, now: SimTime) -> CtrlMsg {
        let (kind, bits) = pack(msg);
        let st = self.ctrl_state.entry(sw).or_default();
        st.tx.next += 1;
        let seq = st.tx.next;
        let deadline = now + base_rto();
        st.tx
            .unacked
            .insert(seq, Unacked { kind, bits, sent: now, retries: 0, rto: base_rto(), deadline });
        self.timers.push((deadline, CONTROLLER_NODE));
        CtrlMsg::Reliable { sw, seq, ack: st.rx.cum, kind, bits }
    }

    /// Applies a cumulative ack to one sender, folding RTT samples and
    /// the acked count into the metrics.
    fn apply_ack(&mut self, end: Endpoint, sw: u64, ack: u32, now: SimTime) {
        let st = match end {
            Endpoint::Switch => self.sw_state.entry(sw).or_default(),
            Endpoint::Controller => self.ctrl_state.entry(sw).or_default(),
        };
        for u in take_acked(&mut st.tx, ack) {
            self.acked += 1;
            if u.retries == 0 {
                self.ack_rtt_us.observe(now.as_micros().saturating_sub(u.sent.as_micros()));
            }
        }
    }

    /// Runs one received envelope through receiver-side sequencing:
    /// returns the inner messages released *in order* (possibly several,
    /// when a gap closes), having suppressed duplicates and parked
    /// out-of-order arrivals. `node` labels telemetry events.
    fn receive(
        &mut self,
        end: Endpoint,
        sw: u64,
        node: u64,
        seq: u32,
        kind: u8,
        bits: u64,
    ) -> Vec<CtrlMsg> {
        let st = match end {
            Endpoint::Switch => self.sw_state.entry(sw).or_default(),
            Endpoint::Controller => self.ctrl_state.entry(sw).or_default(),
        };
        let mut released = Vec::new();
        if seq <= st.rx.cum {
            self.dup_suppressed += 1;
            self.events.push(("dup_suppressed", node));
        } else if seq == st.rx.cum + 1 {
            st.rx.cum = seq;
            released.push(unpack(kind, bits));
            while let Some((k, b)) = st.rx.hold.remove(&(st.rx.cum + 1)) {
                st.rx.cum += 1;
                released.push(unpack(k, b));
            }
        } else {
            st.rx.hold.insert(seq, (kind, bits));
        }
        released
    }

    /// The receiver's current cumulative ack for the stream ending at
    /// this endpoint.
    fn rx_cum(&mut self, end: Endpoint, sw: u64) -> u32 {
        match end {
            Endpoint::Switch => self.sw_state.entry(sw).or_default().rx.cum,
            Endpoint::Controller => self.ctrl_state.entry(sw).or_default().rx.cum,
        }
    }
}

/// Which end of a switch's stream pair an operation touches.
#[derive(Clone, Copy)]
enum Endpoint {
    Switch,
    Controller,
}

impl<D: DataPlane> DataPlane for Reliable<D> {
    fn process(
        &mut self,
        sw: u64,
        pt: u64,
        packet: netkat::Packet,
        from_host: bool,
        now: SimTime,
    ) -> StepResult {
        let mut r = self.inner.process(sw, pt, packet, from_host, now);
        for msg in r.notifications.iter_mut() {
            *msg = self.sw_send(sw, *msg, now);
        }
        r
    }

    fn process_arena(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
    ) -> StepResultId {
        let mut out = StepResultId::default();
        self.process_arena_into(sw, pt, packet, from_host, now, arena, &mut out);
        out
    }

    fn process_arena_into(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
        out: &mut StepResultId,
    ) {
        self.inner.process_arena_into(sw, pt, packet, from_host, now, arena, out);
        for msg in out.notifications.iter_mut() {
            *msg = self.sw_send(sw, *msg, now);
        }
    }

    fn on_notify(&mut self, msg: CtrlMsg, now: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
        match msg {
            CtrlMsg::Reliable { sw, seq, ack, kind, bits } => {
                // The piggybacked ack confirms our controller→switch sends.
                self.apply_ack(Endpoint::Controller, sw, ack, now);
                let released =
                    self.receive(Endpoint::Controller, sw, CONTROLLER_NODE, seq, kind, bits);
                let mut out = Vec::new();
                for inner_msg in released {
                    for (delay, sw2, cmd) in self.inner.on_notify(inner_msg, now) {
                        let wrapped = self.ctrl_send(sw2, cmd, now);
                        out.push((delay, sw2, wrapped));
                    }
                }
                // Always (re)confirm what we have — the dedicated ack also
                // covers the duplicate and out-of-order cases.
                let cum = self.rx_cum(Endpoint::Controller, sw);
                out.push((SimTime::ZERO, sw, CtrlMsg::Ack { sw, ack: cum }));
                out
            }
            // A dedicated ack from a switch confirms controller→switch sends.
            CtrlMsg::Ack { sw, ack } => {
                self.apply_ack(Endpoint::Controller, sw, ack, now);
                Vec::new()
            }
            // Unwrapped messages pass straight through (an unwrapped peer).
            other => self
                .inner
                .on_notify(other, now)
                .into_iter()
                .map(|(delay, sw, cmd)| {
                    let wrapped = self.ctrl_send(sw, cmd, now);
                    (delay, sw, wrapped)
                })
                .collect(),
        }
    }

    fn deliver(&mut self, sw: u64, msg: CtrlMsg, now: SimTime) {
        let _ = self.deliver_and_reply(sw, msg, now);
    }

    fn deliver_and_reply(&mut self, sw: u64, msg: CtrlMsg, now: SimTime) -> Vec<CtrlMsg> {
        match msg {
            CtrlMsg::Reliable { seq, ack, kind, bits, .. } => {
                // The piggybacked ack confirms our switch→controller sends.
                self.apply_ack(Endpoint::Switch, sw, ack, now);
                let released = self.receive(Endpoint::Switch, sw, sw, seq, kind, bits);
                for inner_msg in released {
                    self.inner.deliver(sw, inner_msg, now);
                }
                let cum = self.rx_cum(Endpoint::Switch, sw);
                vec![CtrlMsg::Ack { sw, ack: cum }]
            }
            // A dedicated ack from the controller confirms our sends.
            CtrlMsg::Ack { ack, .. } => {
                self.apply_ack(Endpoint::Switch, sw, ack, now);
                Vec::new()
            }
            other => {
                self.inner.deliver(sw, other, now);
                Vec::new()
            }
        }
    }

    fn drain_timers(&mut self) -> Vec<(SimTime, u64)> {
        std::mem::take(&mut self.timers)
    }

    fn on_timer(&mut self, node: u64, now: SimTime) -> TimerStep {
        let mut step = TimerStep::default();
        if node == CONTROLLER_NODE {
            for (&sw, st) in self.ctrl_state.iter_mut() {
                let mut envelopes = Vec::new();
                retransmit_due(
                    st,
                    sw,
                    CONTROLLER_NODE,
                    now,
                    self.budget,
                    &mut self.timers,
                    &mut self.events,
                    &mut self.degraded,
                    &mut self.retransmits,
                    &mut envelopes,
                );
                step.deliveries.extend(envelopes.into_iter().map(|env| (SimTime::ZERO, sw, env)));
            }
        } else if let Some(st) = self.sw_state.get_mut(&node) {
            retransmit_due(
                st,
                node,
                node,
                now,
                self.budget,
                &mut self.timers,
                &mut self.events,
                &mut self.degraded,
                &mut self.retransmits,
                &mut step.notifications,
            );
        }
        step
    }

    fn drain_channel_events(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.events)
    }

    fn absorb_shard(&mut self, other: Self, owned: &[u64]) {
        let Reliable {
            inner,
            sw_state,
            degraded,
            retransmits,
            dup_suppressed,
            acked,
            ack_rtt_us,
            ..
        } = other;
        // Each switch endpoint lives on exactly one shard; the controller
        // endpoint lives on shard 0 (self).
        for &sw in owned {
            if let Some(st) = sw_state.get(&sw) {
                self.sw_state.insert(sw, st.clone());
            }
        }
        self.degraded |= degraded;
        self.retransmits += retransmits;
        self.dup_suppressed += dup_suppressed;
        self.acked += acked;
        self.ack_rtt_us.merge(&ack_rtt_us);
        self.inner.absorb_shard(inner, owned);
    }

    fn contribute_metrics(&self, reg: &mut edn_obs::Registry) {
        // Every count is incremented at a unique dispatch site on the
        // owning shard, so the merged values are shard-invariant.
        reg.counter_add(edn_obs::Scope::Sim, "reliable.retransmits", self.retransmits);
        reg.counter_add(edn_obs::Scope::Sim, "reliable.dup_suppressed", self.dup_suppressed);
        reg.counter_add(edn_obs::Scope::Sim, "reliable.acked", self.acked);
        reg.hist_merge(edn_obs::Scope::Sim, "reliable.ack_rtt_us", &self.ack_rtt_us);
        self.inner.contribute_metrics(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::{Loc, Packet};
    use netsim::{ChannelModel, DirModel, Engine, MetricsLevel, SimParams, SimTopology, SinkHosts};

    /// A minimal inner plane that counts what the controller hears and
    /// what each switch is told — the reliability layer's contract is
    /// that these counts match an ideal channel's exactly.
    #[derive(Clone, Debug, Default)]
    struct Probe {
        sent: u64,
        heard: Vec<u64>,
        delivered: Vec<(u64, u64)>,
    }

    impl DataPlane for Probe {
        fn process(&mut self, sw: u64, _: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            let mut r = StepResult::forward(if sw == 1 { 1 } else { 2 }, packet);
            if sw == 1 {
                r.notifications.push(CtrlMsg::Events(self.sent));
                self.sent += 1;
            }
            r
        }
        fn on_notify(&mut self, msg: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            let CtrlMsg::Events(bits) = msg else { return Vec::new() };
            self.heard.push(bits);
            // Push a config named after the heard payload to switch 1.
            vec![(SimTime::ZERO, 1, CtrlMsg::SetConfig(bits))]
        }
        fn deliver(&mut self, sw: u64, msg: CtrlMsg, _: SimTime) {
            if let CtrlMsg::SetConfig(tag) = msg {
                self.delivered.push((sw, tag));
            }
        }
    }

    fn topo() -> SimTopology {
        SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).host(200, Loc::new(2, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            None,
        )
    }

    fn run_probe(
        model: ChannelModel,
        budget: u32,
        n: u64,
    ) -> (netsim::RunResult<Reliable<Probe>>, netsim::FlightRecorder) {
        let mut e = Engine::new(
            topo(),
            SimParams::default(),
            Reliable::with_budget(Probe::default(), budget),
            Box::new(SinkHosts),
        )
        .with_channel(model)
        .with_metrics(MetricsLevel::Full);
        let flight = e.flight_recorder().expect("full metrics attaches the recorder");
        for i in 0..n {
            e.inject_at(SimTime::from_millis(1 + i), 100, Packet::new());
        }
        e.run(SimTime::from_secs(30));
        (e.finish(), flight)
    }

    #[test]
    fn ideal_channel_passes_every_message_exactly_once() {
        let (r, _) = run_probe(ChannelModel::ideal(), 8, 20);
        assert!(!r.dataplane.degraded());
        assert_eq!(r.dataplane.inner().heard, (0..20).collect::<Vec<_>>());
        assert_eq!(r.dataplane.inner().delivered.len(), 20);
        assert_eq!(r.dataplane.retransmits(), 0);
        assert_eq!(r.dataplane.dup_suppressed(), 0);
    }

    #[test]
    fn lossy_channel_still_delivers_everything_in_order() {
        let (r, _) = run_probe(ChannelModel::lossy(1234), 8, 50);
        assert!(!r.dataplane.degraded(), "a generous budget never exhausts at 6% loss");
        // The inner plane saw the ideal message sequence: every
        // notification exactly once, in order, and every command.
        assert_eq!(r.dataplane.inner().heard, (0..50).collect::<Vec<_>>());
        assert_eq!(r.dataplane.inner().delivered, (0..50).map(|i| (1, i)).collect::<Vec<_>>());
        assert!(
            r.dataplane.retransmits() > 0,
            "a 6% drop rate over 100+ messages needs retransmissions"
        );
        assert_eq!(r.metrics.counter("reliable.retransmits"), Some(r.dataplane.retransmits()));
        let rtt = r.metrics.histogram("reliable.ack_rtt_us").expect("rtt histogram");
        assert!(rtt.count() > 0);
    }

    /// Satellite pin: the flight recorder shows the message-level cause
    /// of channel trouble — `drop` (engine), `dup_suppressed` (receiver),
    /// and `retry_exhausted` (sender giving up) all land in the dump.
    #[test]
    fn flight_recorder_pins_channel_event_kinds() {
        // Every switch→controller message duplicated: dup suppression on
        // the controller end, no drops.
        let dup_all = ChannelModel {
            to_ctrl: DirModel { drop_pm: 0, dup_pm: 1000, reorder_pm: 0, jitter_us: 0 },
            to_switch: DirModel::default(),
            seed: 5,
        };
        let (r, flight) = run_probe(dup_all, 8, 5);
        assert!(!r.dataplane.degraded());
        assert_eq!(r.dataplane.dup_suppressed(), 5, "each envelope's second copy suppressed");
        assert_eq!(r.dataplane.inner().heard, vec![0, 1, 2, 3, 4], "payloads released once");
        let dump = flight.dump_json();
        assert!(dump.contains("\"dup_suppressed\""), "dump: {dump}");

        // Every switch→controller message dropped, budget 1: the sender
        // retries once, then gives up degraded.
        let drop_all = ChannelModel {
            to_ctrl: DirModel { drop_pm: 1000, dup_pm: 0, reorder_pm: 0, jitter_us: 0 },
            to_switch: DirModel::default(),
            seed: 5,
        };
        let (r, flight) = run_probe(drop_all, 1, 1);
        assert!(r.dataplane.degraded(), "budget exhaustion must mark the run degraded");
        assert!(r.dataplane.inner().heard.is_empty(), "nothing ever got through");
        let dump = flight.dump_json();
        assert!(dump.contains("\"drop\""), "dump: {dump}");
        assert!(dump.contains("\"retry_exhausted\""), "dump: {dump}");
        assert_eq!(r.metrics.counter("channel.dropped"), Some(2), "original + one retry");
    }

    #[test]
    fn out_of_order_arrivals_are_reassembled() {
        // Protocol-level check, no engine: deliver ctrl→switch envelopes
        // out of order and watch the receiver release them in sequence.
        let mut p = Reliable::with_budget(Probe::default(), 8);
        let env = |seq: u32, tag: u64| CtrlMsg::Reliable { sw: 7, seq, ack: 0, kind: 1, bits: tag };
        let replies = p.deliver_and_reply(7, env(2, 20), SimTime::ZERO);
        assert_eq!(replies, vec![CtrlMsg::Ack { sw: 7, ack: 0 }], "gap: ack stays at 0");
        assert!(p.inner().delivered.is_empty(), "held, not released");
        let replies = p.deliver_and_reply(7, env(1, 10), SimTime::ZERO);
        assert_eq!(replies, vec![CtrlMsg::Ack { sw: 7, ack: 2 }], "gap closed: cumulative ack");
        assert_eq!(p.inner().delivered, vec![(7, 10), (7, 20)], "released in order");
        // A late duplicate of either is suppressed and re-acked.
        let replies = p.deliver_and_reply(7, env(1, 10), SimTime::ZERO);
        assert_eq!(replies, vec![CtrlMsg::Ack { sw: 7, ack: 2 }]);
        assert_eq!(p.dup_suppressed(), 1);
        assert_eq!(p.inner().delivered.len(), 2, "no double delivery");
    }

    #[test]
    fn retransmission_backs_off_exponentially_and_respects_acks() {
        let mut p = Reliable::with_budget(Probe::default(), 8);
        // One switch→controller send at t=0.
        let r = p.process(1, 2, Packet::new(), true, SimTime::ZERO);
        let CtrlMsg::Reliable { sw: 1, seq: 1, .. } = r.notifications[0] else {
            panic!("expected an envelope, got {:?}", r.notifications[0]);
        };
        assert_eq!(p.drain_timers(), vec![(base_rto(), 1)]);
        // First deadline: one retransmission, next timer doubled out.
        let step = p.on_timer(1, base_rto());
        assert_eq!(step.notifications.len(), 1);
        assert_eq!(p.retransmits(), 1);
        let next = p.drain_timers();
        assert_eq!(next, vec![(SimTime::from_micros(3 * base_rto().as_micros()), 1)]);
        // An ack clears the entry: the later timer fire is a no-op.
        assert!(p.deliver_and_reply(1, CtrlMsg::Ack { sw: 1, ack: 1 }, base_rto()).is_empty());
        let step = p.on_timer(1, next[0].0);
        assert_eq!(step, TimerStep::default(), "stale timer fires are no-ops");
        assert!(!p.degraded());
    }
}
