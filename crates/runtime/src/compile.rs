//! Compiling an NES for deployment (Section 4.1).
//!
//! Every event-set of the NES gets an integer *tag*; every configuration is
//! installed proactively, with each rule guarded by its tag; switches stamp
//! incoming packets with the tag of their current event-set and learn events
//! from packet digests.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use edn_core::{EventId, EventSet, NetworkEventStructure};
use netkat::{ActionSet, Match};

/// A deployable compilation of an NES.
///
/// # Examples
///
/// Compile the one-event firewall NES and inspect its tags:
///
/// ```
/// # use edn_core::*;
/// # use netkat::{Loc, Pred};
/// # let e0 = EventId::new(0);
/// # let es = EventStructure::new(
/// #     vec![Event::new(e0, Pred::True, Loc::new(4, 1))],
/// #     [EventSet::singleton(e0)],
/// # );
/// # let nes = NetworkEventStructure::new(es, [
/// #     (EventSet::empty(), Config::new()),
/// #     (EventSet::singleton(e0), Config::new()),
/// # ]).unwrap();
/// use nes_runtime::CompiledNes;
/// let compiled = CompiledNes::compile(nes);
/// assert_eq!(compiled.tag_count(), 2);
/// assert_eq!(compiled.tag_of(EventSet::empty()), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct CompiledNes {
    nes: NetworkEventStructure,
    /// Tag → event-set (sorted, so `∅` is always tag 0).
    tags: Vec<EventSet>,
    tag_of: BTreeMap<EventSet, u64>,
}

/// Installed-rule counts, split by role (Section 4.1's building blocks).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RuleBreakdown {
    /// Tag-guarded forwarding rules (one copy of each configuration rule).
    pub forwarding: usize,
    /// Ingress stamping rules (one per switch per tag).
    pub stamping: usize,
    /// Event-detection rules (one per enabled `(event-set, event)` pair, at
    /// the event's switch).
    pub detection: usize,
}

impl RuleBreakdown {
    /// Total rules installed.
    pub fn total(&self) -> usize {
        self.forwarding + self.stamping + self.detection
    }
}

impl fmt::Display for RuleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rules ({} forwarding + {} stamping + {} detection)",
            self.total(),
            self.forwarding,
            self.stamping,
            self.detection
        )
    }
}

impl CompiledNes {
    /// Compiles an NES: enumerates its event-sets and assigns tags.
    pub fn compile(nes: NetworkEventStructure) -> CompiledNes {
        let mut tags: Vec<EventSet> = nes.event_sets();
        tags.sort();
        let tag_of = tags.iter().enumerate().map(|(i, &s)| (s, i as u64)).collect();
        CompiledNes { nes, tags, tag_of }
    }

    /// The underlying NES.
    pub fn nes(&self) -> &NetworkEventStructure {
        &self.nes
    }

    /// Number of tags (= event-sets = proactively installed configurations).
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// The tag of an event-set, if it is reachable.
    pub fn tag_of(&self, set: EventSet) -> Option<u64> {
        self.tag_of.get(&set).copied()
    }

    /// The event-set of a tag.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag.
    pub fn set_of(&self, tag: u64) -> EventSet {
        self.tags[tag as usize]
    }

    /// The *effective* event-set for an arbitrary known-events set: the
    /// largest reachable event-set obtainable by repeatedly firing enabled,
    /// consistent events from `known` (in id order, deterministically).
    ///
    /// A switch may transiently know about an event whose causal
    /// prerequisites it has not heard of (e.g. a controller broadcast raced
    /// past a gossip path); such events do not take effect until their
    /// prerequisites arrive, which is exactly the enabling discipline of the
    /// SWITCH rule in Fig. 7.
    pub fn effective_set(&self, known: EventSet) -> EventSet {
        let mut cur = EventSet::empty();
        loop {
            let mut grown = false;
            for e in known.difference(cur).iter() {
                if self.nes.structure().enabled(cur, e)
                    && self.nes.structure().consistent(cur.insert(e))
                {
                    cur = cur.insert(e);
                    grown = true;
                }
            }
            if !grown {
                return cur;
            }
        }
    }

    /// The tag a switch should stamp given its known events.
    pub fn tag_for_known(&self, known: EventSet) -> u64 {
        self.tag_of(self.effective_set(known))
            .expect("effective sets are reachable by construction")
    }

    /// The rule footprint of the deployment (Section 4.1, used by the
    /// Section 5.1 per-application table).
    pub fn rule_breakdown(&self) -> RuleBreakdown {
        let mut b = RuleBreakdown::default();
        let mut switches: BTreeSet<u64> = BTreeSet::new();
        for &set in &self.tags {
            let config = self.nes.config(set);
            b.forwarding += config.rule_count();
            switches.extend(config.switches());
        }
        b.stamping = switches.len() * self.tags.len();
        for &set in &self.tags {
            for event in self.nes.events() {
                if !set.contains(event.id)
                    && self.nes.structure().enabled(set, event.id)
                    && self.nes.structure().consistent(set.insert(event.id))
                {
                    b.detection += 1;
                }
            }
        }
        b
    }

    /// The per-tag rule sets in a shape the rule-sharing optimizer consumes:
    /// `rules[tag]` is the set of `(switch, match, actions)` triples of that
    /// tag's configuration.
    pub fn config_rule_sets(&self) -> Vec<BTreeSet<(u64, Match, ActionSet)>> {
        self.tags
            .iter()
            .map(|&set| {
                let config = self.nes.config(set);
                let mut rules = BTreeSet::new();
                for sw in config.switches() {
                    if let Some(table) = config.table(sw) {
                        for rule in table.iter() {
                            rules.insert((sw, rule.pattern.clone(), rule.actions.clone()));
                        }
                    }
                }
                rules
            })
            .collect()
    }

    /// The per-tag rule sets with their table positions, the shape the
    /// optimized *deployment* consumes: `rules[tag]` is the set of
    /// `(switch, priority, match, actions)` tuples of that tag's
    /// configuration. The priority index preserves first-match-wins order
    /// for overlapping rules (e.g. a firewall's prepended drop rule), which
    /// [`config_rule_sets`](CompiledNes::config_rule_sets)'s unordered
    /// triples deliberately forget.
    pub fn prioritized_rule_sets(&self) -> Vec<BTreeSet<(u64, u32, Match, ActionSet)>> {
        self.tags
            .iter()
            .map(|&set| {
                let config = self.nes.config(set);
                let mut rules = BTreeSet::new();
                for sw in config.switches() {
                    if let Some(table) = config.table(sw) {
                        for (prio, rule) in table.iter().enumerate() {
                            rules.insert((
                                sw,
                                prio as u32,
                                rule.pattern.clone(),
                                rule.actions.clone(),
                            ));
                        }
                    }
                }
                rules
            })
            .collect()
    }

    /// One firing step: which of `candidates` actually occur given the
    /// fixed pre-arrival set `known`, per the SWITCH rule:
    /// `E′ = {e : known ⊢ e ∧ con(known ∪ E′ ∪ {e})}`.
    ///
    /// Enabling is checked against `known` *without cascading* — a renamed
    /// event chain (the bandwidth cap) advances one step per packet — while
    /// consistency is checked against the accumulated result (in id order)
    /// so a packet matching two *conflicting* events fires at most one, as
    /// Lemma 3 requires.
    pub fn fire_step(&self, known: EventSet, candidates: EventSet) -> EventSet {
        let mut fired = EventSet::empty();
        for e in candidates.iter() {
            if known.contains(e) || fired.contains(e) {
                continue;
            }
            if self.nes.structure().enabled(known, e)
                && self.nes.structure().consistent(known.union(fired).insert(e))
            {
                fired = fired.insert(e);
            }
        }
        fired
    }

    /// Events newly triggered by a packet arrival: [`fire_step`] applied to
    /// the events the located packet matches.
    ///
    /// [`fire_step`]: CompiledNes::fire_step
    pub fn triggered(
        &self,
        known: EventSet,
        packet: &netkat::Packet,
        loc: netkat::Loc,
    ) -> EventSet {
        let matching: EventSet =
            self.nes.events().iter().filter(|e| e.matches(packet, loc)).map(|e| e.id).collect();
        self.fire_step(known, matching)
    }

    /// All event ids.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        self.nes.events().iter().map(|e| e.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::{Config, Event, EventStructure};
    use netkat::{Field, Loc, Packet, Pred};

    fn chain_nes() -> NetworkEventStructure {
        // e0 then e1, both at switch 4 port 1.
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let es = EventStructure::new(
            vec![
                Event::new(e0, Pred::test(Field::IpDst, 4), Loc::new(4, 1)),
                Event::new(e1, Pred::test(Field::IpDst, 4), Loc::new(4, 1)),
            ],
            [EventSet::singleton(e0), EventSet::from_iter([e0, e1])],
        );
        NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), Config::new()),
                (EventSet::singleton(e0), Config::new()),
                (EventSet::from_iter([e0, e1]), Config::new()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tags_are_stable_and_start_empty() {
        let c = CompiledNes::compile(chain_nes());
        assert_eq!(c.tag_count(), 3);
        assert_eq!(c.set_of(0), EventSet::empty());
        assert_eq!(c.tag_of(EventSet::empty()), Some(0));
        assert_eq!(c.tag_of(EventSet::singleton(EventId::new(1))), None);
    }

    #[test]
    fn effective_set_respects_enabling() {
        let c = CompiledNes::compile(chain_nes());
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        // Knowing only e1 (prerequisite missing) has no effect.
        assert_eq!(c.effective_set(EventSet::singleton(e1)), EventSet::empty());
        // Knowing both applies both.
        assert_eq!(c.effective_set(EventSet::from_iter([e0, e1])), EventSet::from_iter([e0, e1]));
        assert_eq!(c.tag_for_known(EventSet::singleton(e1)), 0);
    }

    #[test]
    fn triggered_fires_in_order_and_respects_enabling() {
        let c = CompiledNes::compile(chain_nes());
        let pk = Packet::new().with(Field::IpDst, 4);
        let loc = Loc::new(4, 1);
        // From nothing, one packet triggers e0 only: e1's enabling is
        // checked against the pre-arrival set (no cascading), so a renamed
        // chain advances one step per packet.
        let fired = c.triggered(EventSet::empty(), &pk, loc);
        assert_eq!(fired, EventSet::singleton(EventId::new(0)));
        // From {e0}, only e1 fires.
        let fired = c.triggered(EventSet::singleton(EventId::new(0)), &pk, loc);
        assert_eq!(fired, EventSet::singleton(EventId::new(1)));
        // Wrong location: nothing.
        assert_eq!(c.triggered(EventSet::empty(), &pk, Loc::new(4, 2)), EventSet::empty());
    }

    #[test]
    fn conflicting_events_fire_at_most_one() {
        let e0 = EventId::new(0);
        let e1 = EventId::new(1);
        let es = EventStructure::new(
            vec![
                Event::new(e0, Pred::True, Loc::new(2, 1)),
                Event::new(e1, Pred::True, Loc::new(2, 1)),
            ],
            [EventSet::singleton(e0), EventSet::singleton(e1)],
        );
        let nes = NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), Config::new()),
                (EventSet::singleton(e0), Config::new()),
                (EventSet::singleton(e1), Config::new()),
            ],
        )
        .unwrap();
        let c = CompiledNes::compile(nes);
        let fired = c.triggered(EventSet::empty(), &Packet::new(), Loc::new(2, 1));
        assert_eq!(fired, EventSet::singleton(e0), "greedy pick keeps the set consistent");
    }

    #[test]
    fn rule_breakdown_counts_detection_pairs() {
        let c = CompiledNes::compile(chain_nes());
        let b = c.rule_breakdown();
        // Empty configs: no forwarding or stamping rules, but two enabled
        // (set, event) pairs: (∅, e0) and ({e0}, e1).
        assert_eq!(b.forwarding, 0);
        assert_eq!(b.stamping, 0);
        assert_eq!(b.detection, 2);
        assert_eq!(b.total(), 2);
    }
}
