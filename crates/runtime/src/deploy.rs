//! Deployment knobs and table layouts: how a compiled NES's rules actually
//! reach the data plane.
//!
//! Three layouts implement the same forwarding function:
//!
//! * **Guarded** (the default, Section 4.1): one tag-guarded table per
//!   switch, every configuration recompiled from scratch and interleaved.
//! * **Per-tag delta** (`EDN_COMPILE=delta`): one table per `(switch, tag)`
//!   pair, where tag `t`'s table is produced by *patching* tag `t-1`'s with
//!   the [`ConfigDelta`](edn_core::ConfigDelta) between the two
//!   configurations — the OpenFlow-style minimal rule add/remove mods —
//!   instead of recompiling. Unaffected switches share the previous tag's
//!   table.
//! * **Optimized** (`EDN_OPTIMIZE=on`, Section 5.3): the rule-sharing trie
//!   assigns each tag a new ID and installs each rule once, guarded by a
//!   wildcard ID mask, at the highest trie node containing it.
//!
//! The differential suites (`tests/delta_equivalence.rs`,
//! `tests/plumbing_equivalence.rs`) pin all three byte-identical on full
//! runs.

use std::collections::{BTreeMap, BTreeSet};

use edn_core::Config;
use netkat::{ActionSet, CompiledTable, FieldReader, FlowTable, LookupPath, Match, Rule};
use rule_optimizer::WildcardMask;

use crate::compile::CompiledNes;
use crate::program::SwitchProgram;

/// How successive configurations are turned into installed tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CompilePath {
    /// Recompile every configuration from scratch into one guarded table
    /// per switch (the paper's Section 4.1 deployment).
    #[default]
    Scratch,
    /// Diff successive configurations and patch the previous tag's compiled
    /// table with the minimal rule mods.
    Delta,
}

impl CompilePath {
    /// Reads `EDN_COMPILE` (default [`Scratch`](CompilePath::Scratch)).
    ///
    /// # Panics
    ///
    /// Panics if `EDN_COMPILE` is set to anything but `scratch` or `delta`.
    pub fn from_env() -> CompilePath {
        match std::env::var("EDN_COMPILE") {
            Ok(v) if v == "scratch" => CompilePath::Scratch,
            Ok(v) if v == "delta" => CompilePath::Delta,
            Ok(v) => panic!("EDN_COMPILE must be `scratch` or `delta`, got {v:?}"),
            Err(_) => CompilePath::Scratch,
        }
    }

    /// The label used in benchmark output (`scratch` / `delta`).
    pub fn label(&self) -> &'static str {
        match self {
            CompilePath::Scratch => "scratch",
            CompilePath::Delta => "delta",
        }
    }
}

/// Whether the Section 5.3 rule-sharing optimizer sits on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OptimizeMode {
    /// Plain per-tag rules (one full copy per configuration).
    #[default]
    Off,
    /// Trie-compressed tables: shared rules installed once under wildcard
    /// ID guards, packet tags translated to trie IDs at lookup.
    On,
}

impl OptimizeMode {
    /// Reads `EDN_OPTIMIZE` (default [`Off`](OptimizeMode::Off)).
    ///
    /// # Panics
    ///
    /// Panics if `EDN_OPTIMIZE` is set to anything but `off` or `on`.
    pub fn from_env() -> OptimizeMode {
        match std::env::var("EDN_OPTIMIZE") {
            Ok(v) if v == "off" => OptimizeMode::Off,
            Ok(v) if v == "on" => OptimizeMode::On,
            Ok(v) => panic!("EDN_OPTIMIZE must be `off` or `on`, got {v:?}"),
            Err(_) => OptimizeMode::Off,
        }
    }

    /// The label used in benchmark output (`off` / `on`).
    pub fn label(&self) -> &'static str {
        match self {
            OptimizeMode::Off => "off",
            OptimizeMode::On => "on",
        }
    }

    /// Whether the optimizer is enabled.
    pub fn is_on(&self) -> bool {
        *self == OptimizeMode::On
    }
}

/// The full set of deployment knobs, resolved once at construction so runs
/// never consult the environment mid-flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DeployKnobs {
    /// Flow-table lookup implementation (`EDN_LOOKUP`).
    pub path: LookupPath,
    /// Scratch vs delta table construction (`EDN_COMPILE`).
    pub compile: CompilePath,
    /// Rule-sharing optimizer on the hot path (`EDN_OPTIMIZE`).
    pub optimize: OptimizeMode,
}

impl DeployKnobs {
    /// Resolves every knob from the environment.
    pub fn from_env() -> DeployKnobs {
        DeployKnobs {
            path: LookupPath::from_env(),
            compile: CompilePath::from_env(),
            optimize: OptimizeMode::from_env(),
        }
    }

    /// These knobs with an explicit lookup path.
    pub fn with_path(self, path: LookupPath) -> DeployKnobs {
        DeployKnobs { path, ..self }
    }
}

/// The installed tables of one deployment, in the layout the knobs chose.
#[derive(Clone, Debug)]
pub(crate) enum Deployment {
    /// One tag-guarded table per switch (scratch compilation).
    Guarded(BTreeMap<u64, SwitchProgram>),
    /// One table per `(switch, tag)`, delta-patched along the tag chain.
    PerTag(PerTagTables),
    /// Trie-compressed wildcard-guarded tables.
    Optimized(OptimizedTables),
}

impl Deployment {
    /// Builds the layout the knobs select. The optimizer takes precedence
    /// over the compile path: its output *is* the installed table set, so
    /// there is nothing left to patch.
    pub(crate) fn deploy(nes: &CompiledNes, knobs: DeployKnobs) -> Deployment {
        if knobs.optimize.is_on() {
            return Deployment::Optimized(OptimizedTables::from_sets(&nes.prioritized_rule_sets()));
        }
        match knobs.compile {
            CompilePath::Scratch => Deployment::Guarded(
                nes.switch_programs().into_iter().map(|p| (p.switch, p)).collect(),
            ),
            CompilePath::Delta => Deployment::PerTag(PerTagTables::build(nes)),
        }
    }

    /// The forwarding rule for a packet at `(sw, tag)`, read through `view`
    /// (which must already expose the tag, as the guarded layout matches on
    /// it). All three layouts agree; the per-tag and optimized layouts
    /// additionally dispatch on the tag directly.
    pub(crate) fn lookup_on<R: FieldReader>(
        &self,
        path: LookupPath,
        sw: u64,
        tag: u64,
        view: &R,
    ) -> Option<&Rule> {
        match self {
            Deployment::Guarded(programs) => {
                let program = programs.get(&sw)?;
                match path {
                    LookupPath::Linear => program.table.lookup_on(view),
                    LookupPath::Indexed => program.compiled.lookup_on(view),
                }
            }
            Deployment::PerTag(tables) => {
                let idx = tables.slot(sw, tag)?;
                match path {
                    LookupPath::Linear => tables.linear[idx].lookup_on(view),
                    LookupPath::Indexed => tables.compiled[idx].lookup_on(view),
                }
            }
            // The optimizer owns its layout: both lookup paths dispatch
            // through the same guarded scan.
            Deployment::Optimized(tables) => tables.lookup_on(sw, tag, view),
        }
    }

    /// Table application for the cloning (non-arena) path: lookup plus
    /// action fan-out.
    pub(crate) fn apply_into(
        &self,
        path: LookupPath,
        sw: u64,
        tag: u64,
        lookup: &netkat::Packet,
        out: &mut Vec<netkat::Packet>,
    ) {
        if let Some(rule) = self.lookup_on(path, sw, tag, lookup) {
            rule.actions.apply_into(lookup, out);
        }
    }

    /// Summed fingerprint probe outcomes of every distinct compiled table
    /// in the layout (the optimized layout has no fingerprint index).
    pub(crate) fn lookup_stats(&self) -> (u64, u64) {
        let mut totals = (0u64, 0u64);
        let mut add = |(h, f): (u64, u64)| {
            totals.0 += h;
            totals.1 += f;
        };
        match self {
            Deployment::Guarded(programs) => {
                programs.values().for_each(|p| add(p.compiled.lookup_stats()));
            }
            Deployment::PerTag(tables) => {
                tables.compiled.iter().for_each(|t| add(t.lookup_stats()));
            }
            Deployment::Optimized(_) => {}
        }
        totals
    }

    /// Total rule mods (adds + removes) the delta chain applied, if this is
    /// the per-tag layout — the OpenFlow mod count a real controller would
    /// have pushed.
    pub(crate) fn delta_rule_mods(&self) -> Option<u64> {
        match self {
            Deployment::PerTag(tables) => Some(tables.mods),
            _ => None,
        }
    }

    /// `(installed, original)` rule counts, if this is the optimized
    /// layout.
    pub(crate) fn optimized_rule_counts(&self) -> Option<(usize, usize)> {
        match self {
            Deployment::Optimized(tables) => Some(tables.rule_counts()),
            _ => None,
        }
    }
}

/// Per-`(switch, tag)` tables, delta-patched along the tag chain and
/// deduplicated: an update that leaves a switch untouched leaves its slot
/// pointing at the previous tag's table.
#[derive(Clone, Debug)]
pub(crate) struct PerTagTables {
    /// The distinct materialized tables (indexed form).
    compiled: Vec<CompiledTable>,
    /// The same tables in reference (linear scan) form.
    linear: Vec<FlowTable>,
    /// `slots[&sw][tag]` → index into `compiled`/`linear`.
    slots: BTreeMap<u64, Vec<u32>>,
    /// Total rule adds + removes applied along the chain.
    mods: u64,
}

impl PerTagTables {
    /// Compiles tag 0 from scratch, then derives each subsequent tag by
    /// diffing consecutive configurations (in tag order) and patching only
    /// the affected switches' tables.
    fn build(nes: &CompiledNes) -> PerTagTables {
        let tag_count = nes.tag_count() as u64;
        let mut switches: Vec<u64> = Vec::new();
        for tag in 0..tag_count {
            switches.extend(nes.nes().config(nes.set_of(tag)).switches());
        }
        switches.sort_unstable();
        switches.dedup();

        let mut compiled = Vec::new();
        let mut linear = Vec::new();
        let mut slots: BTreeMap<u64, Vec<u32>> =
            switches.iter().map(|&sw| (sw, Vec::with_capacity(tag_count as usize))).collect();
        let mut mods = 0u64;
        for tag in 0..tag_count {
            let config = nes.nes().config(nes.set_of(tag));
            if tag == 0 {
                for &sw in &switches {
                    let table = config.table(sw).cloned().unwrap_or_default();
                    slots.get_mut(&sw).expect("enumerated").push(compiled.len() as u32);
                    compiled.push(table.compile());
                    linear.push(table);
                }
                continue;
            }
            let prev = nes.nes().config(nes.set_of(tag - 1));
            let delta = prev.diff(config);
            mods += delta.rule_mods() as u64;
            for &sw in &switches {
                let slot = slots.get_mut(&sw).expect("enumerated");
                let prev_idx = *slot.last().expect("previous tag built");
                match delta.tables.get(&sw) {
                    Some(d) if !d.is_empty() => {
                        let mut table = linear[prev_idx as usize].clone();
                        table.splice(d);
                        let mut index = compiled[prev_idx as usize].clone();
                        index.patch(d);
                        slot.push(compiled.len() as u32);
                        compiled.push(index);
                        linear.push(table);
                    }
                    _ => slot.push(prev_idx),
                }
            }
        }
        PerTagTables { compiled, linear, slots, mods }
    }

    fn slot(&self, sw: u64, tag: u64) -> Option<usize> {
        self.slots.get(&sw)?.get(tag as usize).map(|&i| i as usize)
    }
}

/// The Section 5.3 trie-compressed layout: every rule installed once,
/// guarded by a wildcard mask over the trie-assigned configuration ID;
/// packet tags are translated to IDs at lookup, so traces keep the
/// canonical tag stamps and stay byte-identical to the plain layouts.
#[derive(Clone, Debug)]
pub(crate) struct OptimizedTables {
    /// `new_id[tag]` → the trie's ID for that configuration.
    new_id: Vec<u64>,
    /// Per-switch guarded rules, stably sorted by original priority. For
    /// any single ID at most one rule per priority is mask-active, so the
    /// ascending-priority first-match scan reproduces exact table order.
    switches: BTreeMap<u64, Vec<(WildcardMask, Rule)>>,
    /// Rules installed after sharing.
    installed: usize,
    /// Rules before sharing (one full copy per configuration).
    original: usize,
}

impl OptimizedTables {
    /// Runs the trie heuristic on per-tag `(switch, priority, match,
    /// actions)` rule sets and lays the guarded output out per switch.
    fn from_sets(sets: &[BTreeSet<(u64, u32, Match, ActionSet)>]) -> OptimizedTables {
        let opt = rule_optimizer::optimize(sets);
        let new_id =
            (0..sets.len()).map(|i| opt.id_of(i).expect("every configuration is placed")).collect();
        let installed = opt.optimized_count();
        let original = opt.original_count;
        let mut by_switch: BTreeMap<u64, Vec<(WildcardMask, u32, Rule)>> = BTreeMap::new();
        for (mask, (sw, prio, pattern, actions)) in opt.guarded_rules {
            by_switch.entry(sw).or_default().push((mask, prio, Rule::new(pattern, actions)));
        }
        let switches = by_switch
            .into_iter()
            .map(|(sw, mut rules)| {
                rules.sort_by_key(|&(_, prio, _)| prio);
                (sw, rules.into_iter().map(|(mask, _, rule)| (mask, rule)).collect())
            })
            .collect();
        OptimizedTables { new_id, switches, installed, original }
    }

    /// The degenerate single-configuration case (a static deployment): one
    /// leaf, all-wildcard guards.
    pub(crate) fn from_config(config: &Config) -> OptimizedTables {
        let mut rules = BTreeSet::new();
        for sw in config.switches() {
            if let Some(table) = config.table(sw) {
                for (prio, rule) in table.iter().enumerate() {
                    rules.insert((sw, prio as u32, rule.pattern.clone(), rule.actions.clone()));
                }
            }
        }
        OptimizedTables::from_sets(&[rules])
    }

    /// First mask-active match in priority order.
    pub(crate) fn lookup_on<R: FieldReader>(&self, sw: u64, tag: u64, view: &R) -> Option<&Rule> {
        let id = *self.new_id.get(tag as usize)?;
        self.switches
            .get(&sw)?
            .iter()
            .find(|(mask, rule)| mask.matches(id) && rule.pattern.matches_on(view))
            .map(|(_, rule)| rule)
    }

    /// `(installed, original)` rule counts — the optimizer's savings.
    pub(crate) fn rule_counts(&self) -> (usize, usize) {
        (self.installed, self.original)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::{Event, EventId, EventSet, EventStructure, NetworkEventStructure};
    use netkat::{Action, Field, Loc, Packet, Pred};

    /// The firewall NES used across the runtime tests: one switch, two
    /// hosts, a reply rule unlocked by e0. Crucially config `{e0}` keeps
    /// the shared 2→3 rule, so the optimizer has something to share and
    /// the delta path a non-trivial splice.
    fn firewall_nes() -> NetworkEventStructure {
        let mk = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(200, Loc::new(1, 2));
            c.add_host(300, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 300), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), mk(vec![fwd(2, 3)])),
                (EventSet::singleton(e0), mk(vec![fwd(2, 3), fwd(3, 2)])),
            ],
        )
        .unwrap()
    }

    fn layouts(nes: &CompiledNes) -> Vec<(&'static str, Deployment)> {
        vec![
            ("guarded", Deployment::deploy(nes, DeployKnobs::default())),
            (
                "per-tag",
                Deployment::deploy(
                    nes,
                    DeployKnobs { compile: CompilePath::Delta, ..DeployKnobs::default() },
                ),
            ),
            (
                "optimized",
                Deployment::deploy(
                    nes,
                    DeployKnobs { optimize: OptimizeMode::On, ..DeployKnobs::default() },
                ),
            ),
        ]
    }

    /// All three layouts, on both lookup paths, return rules with identical
    /// actions for every `(port, dst, tag)` the firewall distinguishes.
    #[test]
    fn all_layouts_forward_identically() {
        let nes = CompiledNes::compile(firewall_nes());
        let layouts = layouts(&nes);
        for tag in 0..nes.tag_count() as u64 {
            for pt in [2u64, 3, 9] {
                for dst in [200u64, 300, 7] {
                    let mut pk = Packet::new().with(Field::IpDst, dst);
                    pk.set_loc(Loc::new(1, pt));
                    pk.set(Field::Tag, tag);
                    let reference = layouts[0]
                        .1
                        .lookup_on(LookupPath::Indexed, 1, tag, &pk)
                        .map(|r| r.actions.clone());
                    for (name, layout) in &layouts {
                        for path in [LookupPath::Linear, LookupPath::Indexed] {
                            let got =
                                layout.lookup_on(path, 1, tag, &pk).map(|r| r.actions.clone());
                            assert_eq!(
                                got,
                                reference,
                                "{name}/{} diverged at tag {tag}, pt {pt}, dst {dst}",
                                path.label()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Unknown switches and out-of-range tags drop on every layout.
    #[test]
    fn unknown_switch_or_tag_drops_everywhere() {
        let nes = CompiledNes::compile(firewall_nes());
        let mut pk = Packet::new().with(Field::IpDst, 300);
        pk.set_loc(Loc::new(1, 2));
        pk.set(Field::Tag, 0);
        let mut bad_tag = pk.clone();
        bad_tag.set(Field::Tag, 99);
        for (name, layout) in layouts(&nes) {
            assert!(
                layout.lookup_on(LookupPath::Indexed, 77, 0, &pk).is_none(),
                "{name}: unknown switch"
            );
            assert!(
                layout.lookup_on(LookupPath::Indexed, 1, 99, &bad_tag).is_none(),
                "{name}: unknown tag"
            );
        }
    }

    /// The delta chain for the firewall applies exactly one mod (the
    /// appended reply rule) and shares nothing else; the optimizer shares
    /// the common 2→3 rule.
    #[test]
    fn layout_introspection_reports_the_expected_shape() {
        let nes = CompiledNes::compile(firewall_nes());
        let per_tag = Deployment::deploy(
            &nes,
            DeployKnobs { compile: CompilePath::Delta, ..Default::default() },
        );
        assert_eq!(per_tag.delta_rule_mods(), Some(1), "one appended reply rule");
        assert_eq!(per_tag.optimized_rule_counts(), None);
        let optimized = Deployment::deploy(
            &nes,
            DeployKnobs { optimize: OptimizeMode::On, ..Default::default() },
        );
        let (installed, original) = optimized.optimized_rule_counts().expect("optimized layout");
        assert_eq!(original, 3, "one full copy per configuration");
        assert_eq!(installed, 2, "the shared 2→3 rule is installed once");
        assert_eq!(optimized.delta_rule_mods(), None);
        let guarded = Deployment::deploy(&nes, DeployKnobs::default());
        assert_eq!(guarded.delta_rule_mods(), None);
        assert_eq!(guarded.optimized_rule_counts(), None);
    }

    /// An event that *removes* and *reinstalls* switches exercises the
    /// delta layout's empty-table and fresh-install paths.
    #[test]
    fn per_tag_handles_removed_and_added_switches() {
        let fwd = Rule::new(
            Match::new().with(Field::Port, 1),
            ActionSet::single(Action::assign(Field::Port, 2)),
        );
        let mut c0 = Config::new();
        c0.install(1, FlowTable::from_rules([fwd.clone()]));
        let mut c1 = Config::new();
        c1.install(2, FlowTable::from_rules([fwd.clone()]));
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::True, Loc::new(1, 1))],
            [EventSet::singleton(e0)],
        );
        let nes = CompiledNes::compile(
            NetworkEventStructure::new(
                es,
                [(EventSet::empty(), c0), (EventSet::singleton(e0), c1)],
            )
            .unwrap(),
        );
        let per_tag = Deployment::deploy(
            &nes,
            DeployKnobs { compile: CompilePath::Delta, ..Default::default() },
        );
        let guarded = Deployment::deploy(&nes, DeployKnobs::default());
        for tag in [0u64, 1] {
            for sw in [1u64, 2] {
                let mut pk = Packet::new();
                pk.set_loc(Loc::new(sw, 1));
                pk.set(Field::Tag, tag);
                assert_eq!(
                    per_tag.lookup_on(LookupPath::Indexed, sw, tag, &pk).map(|r| &r.actions),
                    guarded.lookup_on(LookupPath::Indexed, sw, tag, &pk).map(|r| &r.actions),
                    "sw {sw} tag {tag}"
                );
            }
        }
        // Two mods: remove from switch 1, install on switch 2.
        assert_eq!(per_tag.delta_rule_mods(), Some(2));
    }

    /// The degenerate static-plane case: one configuration, all-wildcard
    /// guards, same lookups as the raw table.
    #[test]
    fn static_optimized_matches_the_raw_table() {
        let mut config = Config::new();
        config.install(
            1,
            FlowTable::from_rules([
                Rule::new(Match::new().with(Field::Port, 2), ActionSet::drop()),
                Rule::new(
                    Match::new().with(Field::Port, 2).with(Field::IpDst, 9),
                    ActionSet::single(Action::assign(Field::Port, 3)),
                ),
            ]),
        );
        let optimized = OptimizedTables::from_config(&config);
        let table = config.table(1).unwrap();
        for pt in [2u64, 3] {
            for dst in [9u64, 10] {
                let mut pk = Packet::new().with(Field::IpDst, dst);
                pk.set_loc(Loc::new(1, pt));
                assert_eq!(
                    optimized.lookup_on(1, 0, &pk).map(|r| &r.actions),
                    table.lookup_on(&pk).map(|r| &r.actions),
                    "pt {pt} dst {dst}"
                );
            }
        }
        // Duplicate-priority first-wins: the overlapping drop rule sits at
        // priority 0 and shadows the more specific rule, as in the table.
        let mut pk = Packet::new().with(Field::IpDst, 9);
        pk.set_loc(Loc::new(1, 2));
        assert!(optimized.lookup_on(1, 0, &pk).unwrap().actions.is_drop());
    }

    #[test]
    fn knob_parsing_defaults_and_labels() {
        assert_eq!(CompilePath::default(), CompilePath::Scratch);
        assert_eq!(CompilePath::Scratch.label(), "scratch");
        assert_eq!(CompilePath::Delta.label(), "delta");
        assert_eq!(OptimizeMode::default(), OptimizeMode::Off);
        assert_eq!(OptimizeMode::Off.label(), "off");
        assert_eq!(OptimizeMode::On.label(), "on");
        assert!(OptimizeMode::On.is_on());
        assert!(!OptimizeMode::Off.is_on());
        let knobs = DeployKnobs::default().with_path(LookupPath::Linear);
        assert_eq!(knobs.path, LookupPath::Linear);
        assert_eq!(knobs.compile, CompilePath::Scratch);
    }
}
