//! Rolling update campaigns: many successive event-driven updates as one
//! chain-shaped network event structure.
//!
//! The paper's case studies fire a *single* update per run. An operator's
//! day looks different: dozens of policy pushes against live traffic. A
//! campaign models that as a chain NES — events `e₀, e₁, …` with the
//! prefix-set family `{e₀}, {e₀,e₁}, …` — so update `i` can only fire
//! after updates `0..i`, the reachable event-sets are exactly the `n+1`
//! prefixes, and the whole campaign deploys through the unmodified runtime
//! (tags, digests, Theorem 1) and fits the online checker's windows for
//! `n ≤ 63`.
//!
//! Each step is triggered by a packet matching a step-specific predicate at
//! a fixed location; [`campaign_mark`]/[`campaign_trigger`] provide a
//! ready-made marker scheme (a reserved `Field::Vlan` value per step) that
//! ordinary workload traffic never carries, so steps advance exactly when
//! their trigger packet arrives.

use edn_core::{Config, Event, EventId, EventSet, EventStructure, NesError, NetworkEventStructure};
use netkat::{Field, Loc, Packet, Pred};
use netsim::traffic::udp_packet;

/// Base `Field::Vlan` value for campaign trigger markers.
pub const CAMPAIGN_MARK_BASE: u64 = 0xCA00;

/// One step of a campaign: when a packet matching `trigger` arrives at
/// `loc` (and every earlier step has fired), the network moves to `config`.
#[derive(Clone, Debug)]
pub struct CampaignStep {
    /// The predicate whose arrival at `loc` fires this step.
    pub trigger: Pred,
    /// Where the trigger is detected (switch ingress).
    pub loc: Loc,
    /// The configuration the network runs after this step fires.
    pub config: Config,
}

/// Builds the chain NES of a campaign: `initial` is `g(∅)` and step `i`
/// (event `i`, enabled only after steps `0..i`) moves the network to
/// `steps[i].config`.
///
/// # Errors
///
/// Returns the underlying [`NesError`] if a configuration is rejected.
///
/// # Panics
///
/// Panics if `steps` has more than 63 entries (the event-id universe).
pub fn campaign_nes(
    initial: Config,
    steps: Vec<CampaignStep>,
) -> Result<NetworkEventStructure, NesError> {
    assert!(steps.len() <= 63, "campaigns are limited to 63 steps, got {}", steps.len());
    let events: Vec<Event> = steps
        .iter()
        .enumerate()
        .map(|(i, s)| Event::new(EventId::new(i), s.trigger.clone(), s.loc))
        .collect();
    // The prefix-set family: {e0}, {e0,e1}, … — sequential enabling.
    let mut family = Vec::with_capacity(steps.len());
    let mut prefix = EventSet::empty();
    for i in 0..steps.len() {
        prefix = prefix.insert(EventId::new(i));
        family.push(prefix);
    }
    let es = EventStructure::new(events, family.iter().copied());
    let mut g = vec![(EventSet::empty(), initial)];
    for (set, step) in family.into_iter().zip(steps) {
        g.push((set, step.config));
    }
    NetworkEventStructure::new(es, g)
}

/// The `Field::Vlan` marker value identifying campaign step `i`.
pub fn campaign_mark(i: usize) -> u64 {
    CAMPAIGN_MARK_BASE + i as u64
}

/// A marker predicate for campaign step `i` (pair with the trigger host's
/// attachment as the step location).
pub fn campaign_pred(i: usize) -> Pred {
    Pred::test(Field::Vlan, campaign_mark(i))
}

/// The trigger packet for campaign step `i`: a `src → dst` datagram
/// carrying the step's marker. `dst` should be a host whose routing every
/// campaign configuration preserves, so the trigger's own trace stays
/// consistent under both the replaced and the new configuration.
pub fn campaign_trigger(src: u64, dst: u64, i: usize) -> Packet {
    udp_packet(src, dst, u64::MAX - i as u64, 0).with(Field::Vlan, campaign_mark(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{attach_online_checker, nes_engine, verify_nes_run};
    use netkat::{Action, ActionSet, FlowTable, Match, Rule};
    use netsim::{SimParams, SimTime, SimTopology, SinkHosts};

    /// One switch (1), hosts 100/101/102 at ports 1/2/3. The base config
    /// routes only to 100; step i unlocks routing to host 100+i+1.
    fn fixture(n: usize) -> (NetworkEventStructure, SimTopology) {
        let hosts: Vec<(u64, u64)> = (0..=n as u64).map(|i| (100 + i, 1 + i)).collect();
        let mk = |unlocked: usize| {
            let mut c = Config::new();
            let rules: Vec<Rule> = hosts[..=unlocked]
                .iter()
                .map(|&(h, pt)| {
                    Rule::new(
                        Match::new().with(Field::IpDst, h),
                        ActionSet::single(Action::assign(Field::Port, pt)),
                    )
                })
                .collect();
            c.install(1, FlowTable::from_rules(rules));
            for &(h, pt) in &hosts {
                c.add_host(h, Loc::new(1, pt));
            }
            c
        };
        let steps = (0..n)
            .map(|i| CampaignStep {
                trigger: campaign_pred(i),
                loc: Loc::new(1, 1),
                config: mk(i + 1),
            })
            .collect();
        let nes = campaign_nes(mk(0), steps).expect("chain NES builds");
        let mut topo = SimTopology::new([1]);
        for &(h, pt) in &hosts {
            topo = topo.host(h, Loc::new(1, pt));
        }
        (nes, topo)
    }

    #[test]
    fn chain_nes_has_prefix_event_sets() {
        let (nes, _) = fixture(3);
        let sets = nes.structure().event_sets();
        assert_eq!(sets.len(), 4, "∅ plus three prefixes");
        for (k, set) in sets.iter().enumerate() {
            assert_eq!(set.iter().count(), k, "set {k} is the length-{k} prefix");
        }
    }

    #[test]
    fn steps_fire_in_order_and_unlock_routing() {
        let (nes, topo) = fixture(2);
        let mut engine =
            nes_engine(nes.clone(), topo, SimParams::default(), false, Box::new(SinkHosts));
        let handle = attach_online_checker(&mut engine, &nes).expect("fits the window");
        // Probe to 102 before any step: dropped under g(∅).
        engine.inject_at(SimTime::from_millis(1), 100, udp_packet(100, 102, 1, 0));
        // Step 0 at 10 ms, its probe at 12 ms (unlocks 101, not 102).
        engine.inject_at(SimTime::from_millis(10), 100, campaign_trigger(100, 100, 0));
        engine.inject_at(SimTime::from_millis(12), 100, udp_packet(100, 101, 2, 0));
        // Step 1 at 20 ms; now 102 is routable.
        engine.inject_at(SimTime::from_millis(20), 100, campaign_trigger(100, 100, 1));
        engine.inject_at(SimTime::from_millis(22), 100, udp_packet(100, 102, 3, 0));
        let result = engine.run_until(SimTime::from_secs(1));
        assert_eq!(result.dataplane.fired_sequence().len(), 2, "both steps fired");
        assert_eq!(result.stats.delivered_to(101).count(), 1);
        assert_eq!(result.stats.delivered_to(102).count(), 1, "only the post-step probe lands");
        verify_nes_run(&result).expect("Theorem 1 covers campaigns");
        handle.verdict().expect("online checker agrees");
    }

    #[test]
    fn out_of_order_trigger_does_not_fire() {
        let (nes, topo) = fixture(2);
        let mut engine = nes_engine(nes, topo, SimParams::default(), false, Box::new(SinkHosts));
        // Step 1's trigger arrives first: the chain forbids it.
        engine.inject_at(SimTime::from_millis(10), 100, campaign_trigger(100, 100, 1));
        let result = engine.run_until(SimTime::from_secs(1));
        assert!(result.dataplane.fired_sequence().is_empty(), "e1 needs e0 first");
    }
}
