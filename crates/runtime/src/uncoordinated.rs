//! The uncoordinated-update baseline (Section 5.1's comparison strategy).
//!
//! Events are punted to the controller, which — after a configurable delay,
//! modelling slow rule installation — pushes the new configuration to the
//! switches one by one in a (seeded) random order. Until a switch receives
//! the push it keeps forwarding under its stale configuration: no tags, no
//! digests, no consistency.

use std::collections::BTreeMap;

use edn_core::EventSet;
use netkat::{Loc, Packet};
use netsim::{table_outputs, CtrlMsg, DataPlane, SimTime, StepResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::compile::CompiledNes;

/// The uncoordinated baseline data plane.
#[derive(Clone, Debug)]
pub struct UncoordDataPlane {
    compiled: CompiledNes,
    /// Per-switch currently-installed tag.
    current: BTreeMap<u64, u64>,
    /// The controller's event view.
    controller: EventSet,
    /// Extra delay before pushing updated configurations.
    update_delay: SimTime,
    /// Per-switch installation jitter bound (uniform in `0..jitter`).
    jitter: SimTime,
    switches: Vec<u64>,
    rng: StdRng,
}

impl UncoordDataPlane {
    /// Deploys the baseline with the given controller `update_delay` and a
    /// deterministic `seed` for push-order randomness.
    pub fn new(
        compiled: CompiledNes,
        switches: Vec<u64>,
        update_delay: SimTime,
        seed: u64,
    ) -> UncoordDataPlane {
        let current = switches.iter().map(|&s| (s, 0)).collect();
        UncoordDataPlane {
            compiled,
            current,
            controller: EventSet::empty(),
            update_delay,
            jitter: SimTime::from_millis(20),
            switches,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The tag a switch currently runs.
    pub fn current_tag(&self, sw: u64) -> u64 {
        self.current.get(&sw).copied().unwrap_or(0)
    }
}

impl DataPlane for UncoordDataPlane {
    fn process(
        &mut self,
        sw: u64,
        pt: u64,
        packet: Packet,
        _from_host: bool,
        _now: SimTime,
    ) -> StepResult {
        // Event detection: matching arrivals are punted to the controller
        // (it decides whether they constitute state transitions).
        let loc = Loc::new(sw, pt);
        let mut notifications = Vec::new();
        let mut matched = EventSet::empty();
        for event in self.compiled.nes().events() {
            if event.matches(&packet, loc) {
                matched = matched.insert(event.id);
            }
        }
        if !matched.is_empty() {
            notifications.push(CtrlMsg::Events(matched.bits()));
        }
        // Forwarding under the stale per-switch configuration.
        let tag = self.current_tag(sw);
        let config = self.compiled.nes().config(self.compiled.set_of(tag));
        let mut lookup = packet;
        lookup.set_loc(loc);
        let Some(table) = config.table(sw) else {
            return StepResult { outputs: Vec::new(), notifications };
        };
        let mut out = Vec::new();
        table.apply_into(&lookup, &mut out);
        StepResult { outputs: table_outputs(pt, out), notifications }
    }

    fn on_notify(&mut self, msg: CtrlMsg, _now: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
        let CtrlMsg::Events(bits) = msg else { return Vec::new() };
        // The controller applies the enabling discipline centrally: one
        // notification = one packet arrival = one firing step (a renamed
        // chain advances a single state per packet).
        let before = self.controller;
        let fired = self.compiled.fire_step(self.controller, EventSet::from_bits(bits));
        self.controller = self.controller.union(fired);
        let after = self.controller;
        if before == after {
            return Vec::new();
        }
        let tag = self.compiled.tag_of(after).expect("effective sets are reachable");
        // Push the new configuration to every switch after the update
        // delay, in random order with random jitter.
        let mut order = self.switches.clone();
        order.shuffle(&mut self.rng);
        order
            .into_iter()
            .map(|sw| {
                let jitter = SimTime::from_micros(self.rng.gen_range(0..=self.jitter.as_micros()));
                (self.update_delay + jitter, sw, CtrlMsg::SetConfig(tag))
            })
            .collect()
    }

    fn deliver(&mut self, sw: u64, msg: CtrlMsg, _now: SimTime) {
        if let CtrlMsg::SetConfig(tag) = msg {
            self.current.insert(sw, tag);
        }
    }

    fn absorb_shard(&mut self, other: Self, owned: &[u64]) {
        // Per-switch installed tags live on the owning shard; the
        // controller view and its push-order RNG advance only on shard 0
        // (`on_notify` runs there), so `self`'s copies are authoritative.
        for &sw in owned {
            if let Some(&tag) = other.current.get(&sw) {
                self.current.insert(sw, tag);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::{Config, Event, EventId, EventStructure, NetworkEventStructure};
    use netkat::{Action, ActionSet, Field, FlowTable, Match, Pred, Rule};

    fn firewall_nes() -> NetworkEventStructure {
        let mk = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(200, Loc::new(1, 2));
            c.add_host(300, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 300), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), mk(vec![fwd(2, 3)])),
                (EventSet::singleton(e0), mk(vec![fwd(2, 3), fwd(3, 2)])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stale_config_until_push_arrives() {
        let compiled = CompiledNes::compile(firewall_nes());
        let mut dp = UncoordDataPlane::new(compiled, vec![1], SimTime::from_millis(500), 42);
        // Trigger packet: forwarded AND notified.
        let r = dp.process(1, 2, Packet::new().with(Field::IpDst, 300), true, SimTime::ZERO);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.notifications.len(), 1);
        // Reply direction still dropped — the switch has not been updated.
        let r = dp.process(1, 3, Packet::new().with(Field::IpDst, 200), true, SimTime::ZERO);
        assert!(r.outputs.is_empty());
        // Controller schedules a delayed push.
        let pushes = dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO);
        assert_eq!(pushes.len(), 1);
        let (delay, sw, msg) = pushes[0];
        assert!(delay >= SimTime::from_millis(500));
        dp.deliver(sw, msg, SimTime::from_millis(600));
        assert_eq!(dp.current_tag(1), 1);
        // Now replies flow.
        let r = dp.process(1, 3, Packet::new().with(Field::IpDst, 200), true, SimTime::ZERO);
        assert_eq!(r.outputs.len(), 1);
    }

    #[test]
    fn duplicate_notifications_push_once() {
        let compiled = CompiledNes::compile(firewall_nes());
        let mut dp = UncoordDataPlane::new(compiled, vec![1], SimTime::ZERO, 7);
        assert_eq!(dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO).len(), 1);
        assert!(dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO).is_empty());
    }

    #[test]
    fn push_order_is_seeded() {
        let nes = firewall_nes();
        let run = |seed| {
            let mut dp = UncoordDataPlane::new(
                CompiledNes::compile(nes.clone()),
                vec![1, 2, 3, 4, 5, 6],
                SimTime::ZERO,
                seed,
            );
            dp.on_notify(CtrlMsg::Events(1), SimTime::ZERO)
                .into_iter()
                .map(|(_, sw, _)| sw)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1), "same seed, same order");
        assert_ne!(run(1), run(2), "different seeds diverge (with high probability)");
    }
}
