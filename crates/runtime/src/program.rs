//! Concrete per-switch programs: the five building blocks of Section 4.1
//! rendered as installable rules.
//!
//! The paper's implementation recipe is: (1) encode event-sets as flat
//! tags, (2) compile every configuration, (3) guard each rule with its
//! configuration's tag, (4) stamp incoming packets with the current tag,
//! (5) learn events from digests. [`SwitchProgram`] materializes steps
//! (2)–(4) as one prioritized table per switch (the stamping and learning
//! steps additionally touch the switch register, which the table format
//! notes but cannot express — that part is the `NesDataPlane` logic).

use std::fmt;

use netkat::{CompiledTable, Field, FlowTable, Loc, Match, Packet, Rule};

use crate::compile::CompiledNes;

/// The rules installed on one switch, with their tag guards.
#[derive(Clone, Debug)]
pub struct SwitchProgram {
    /// The switch.
    pub switch: u64,
    /// The tag-guarded forwarding table (all configurations interleaved,
    /// grouped by tag, first match wins within the packet's tag). This is
    /// the reference representation; [`SwitchProgram::apply`] dispatches
    /// through the [`compiled`](SwitchProgram::compiled) index built from
    /// it at construction.
    pub table: FlowTable,
    /// The indexed form of [`table`](SwitchProgram::table), compiled once
    /// at construction — the tag guard makes every per-tag block a
    /// hashable same-signature run.
    pub compiled: CompiledTable,
    /// Stamping entries: `(tag, ingress ports)` — on ingress from a host,
    /// a packet is stamped with the switch's current tag.
    pub stamp_tags: Vec<u64>,
    /// Detection entries: `(event-set tag, event id, match)` pairs telling
    /// the switch which arrivals fire which events in which local states.
    pub detections: Vec<(u64, usize, Match)>,
}

impl SwitchProgram {
    /// Looks up the forwarding behaviour for a tagged packet through the
    /// compiled index, which must agree with the packet's configuration
    /// table (and, by the index's differential tests, with the reference
    /// [`FlowTable::apply`] on [`table`](SwitchProgram::table)).
    pub fn apply(&self, packet: &Packet) -> std::collections::BTreeSet<Packet> {
        self.compiled.apply(packet)
    }
}

impl fmt::Display for SwitchProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "switch {} program:", self.switch)?;
        writeln!(f, "  stamping: one rule per tag {:?}", self.stamp_tags)?;
        for (tag, event, m) in &self.detections {
            writeln!(f, "  detect: in state {tag}, arrival matching {m} fires e{event}")?;
        }
        write!(f, "{}", self.table)
    }
}

impl CompiledNes {
    /// Materializes the guarded per-switch program (Section 4.1 steps 2–4).
    pub fn switch_program(&self, switch: u64) -> SwitchProgram {
        let mut rules = Vec::new();
        let mut stamp_tags = Vec::new();
        let mut detections = Vec::new();
        for tag in 0..self.tag_count() as u64 {
            let set = self.set_of(tag);
            let config = self.nes().config(set);
            if let Some(table) = config.table(switch) {
                for rule in table.iter() {
                    let mut pattern = rule.pattern.clone();
                    let ok = pattern.add(Field::Tag, tag);
                    debug_assert!(ok, "configuration rules never match the tag field");
                    rules.push(Rule::new(pattern, rule.actions.clone()));
                }
            }
            stamp_tags.push(tag);
            for event in self.nes().events() {
                if event.loc.sw == switch
                    && !set.contains(event.id)
                    && self.nes().structure().enabled(set, event.id)
                    && self.nes().structure().consistent(set.insert(event.id))
                {
                    // The detection match: the event guard's tests plus the
                    // arrival port.
                    let mut m = Match::new();
                    for (field, value) in event.pred.tests() {
                        let _ = m.add(field, value);
                    }
                    let _ = m.add(Field::Port, event.loc.pt);
                    detections.push((tag, event.id.index(), m));
                }
            }
        }
        let table = FlowTable::from_rules(rules);
        let compiled = table.compile();
        SwitchProgram { switch, table, compiled, stamp_tags, detections }
    }

    /// Every switch's program.
    pub fn switch_programs(&self) -> Vec<SwitchProgram> {
        let mut switches: Vec<u64> = Vec::new();
        for tag in 0..self.tag_count() as u64 {
            switches.extend(self.nes().config(self.set_of(tag)).switches());
        }
        switches.sort_unstable();
        switches.dedup();
        switches.into_iter().map(|sw| self.switch_program(sw)).collect()
    }
}

/// Convenience: a located packet tagged for lookup in a guarded program.
pub fn tagged_lookup(packet: &Packet, loc: Loc, tag: u64) -> Packet {
    let mut pk = packet.clone();
    pk.set_loc(loc);
    pk.set(Field::Tag, tag);
    pk
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::{Config, Event, EventId, EventSet, EventStructure, NetworkEventStructure};
    use netkat::{Action, ActionSet, Pred};

    fn firewall_nes() -> NetworkEventStructure {
        let mk = |rules: Vec<Rule>| {
            let mut c = Config::new();
            c.install(1, FlowTable::from_rules(rules));
            c.add_host(200, Loc::new(1, 2));
            c.add_host(300, Loc::new(1, 3));
            c
        };
        let fwd = |a: u64, b: u64| {
            Rule::new(
                Match::new().with(Field::Port, a),
                ActionSet::single(Action::assign(Field::Port, b)),
            )
        };
        let e0 = EventId::new(0);
        let es = EventStructure::new(
            vec![Event::new(e0, Pred::test(Field::IpDst, 300), Loc::new(1, 2))],
            [EventSet::singleton(e0)],
        );
        NetworkEventStructure::new(
            es,
            [
                (EventSet::empty(), mk(vec![fwd(2, 3)])),
                (EventSet::singleton(e0), mk(vec![fwd(2, 3), fwd(3, 2)])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn guarded_lookup_agrees_with_per_tag_configs() {
        let compiled = CompiledNes::compile(firewall_nes());
        let program = compiled.switch_program(1);
        for tag in 0..compiled.tag_count() as u64 {
            let config = compiled.nes().config(compiled.set_of(tag));
            let table = config.table(1).unwrap();
            for pt in [2u64, 3, 9] {
                for dst in [200u64, 300] {
                    let base = Packet::new().with(Field::IpDst, dst);
                    let tagged = tagged_lookup(&base, Loc::new(1, pt), tag);
                    let mut untagged = base.clone();
                    untagged.set_loc(Loc::new(1, pt));
                    // The guarded program must behave exactly like the
                    // packet's own configuration (modulo the tag field the
                    // guard leaves on the packet).
                    let got: std::collections::BTreeSet<Packet> =
                        program.apply(&tagged).into_iter().map(|p| p.erase_virtual()).collect();
                    assert_eq!(got, table.apply(&untagged), "tag {tag}, pt {pt}, dst {dst}");
                }
            }
        }
    }

    #[test]
    fn compiled_index_mirrors_reference_table() {
        let compiled = CompiledNes::compile(firewall_nes());
        let program = compiled.switch_program(1);
        assert_eq!(program.compiled.len(), program.table.len());
        for tag in 0..compiled.tag_count() as u64 {
            for pt in [2u64, 3, 9] {
                for dst in [200u64, 300, 7] {
                    let pk =
                        tagged_lookup(&Packet::new().with(Field::IpDst, dst), Loc::new(1, pt), tag);
                    assert_eq!(
                        program.compiled.lookup_index(&pk),
                        program.table.lookup_index(&pk),
                        "index diverged on {pk}"
                    );
                    assert_eq!(program.apply(&pk), program.table.apply(&pk));
                }
            }
        }
    }

    #[test]
    fn guarded_rule_count_equals_breakdown_forwarding() {
        let compiled = CompiledNes::compile(firewall_nes());
        let total: usize = compiled.switch_programs().iter().map(|p| p.table.len()).sum();
        assert_eq!(total, compiled.rule_breakdown().forwarding);
    }

    #[test]
    fn detection_entries_cover_enabled_pairs() {
        let compiled = CompiledNes::compile(firewall_nes());
        let program = compiled.switch_program(1);
        // One detection: in tag 0 (∅), an arrival of dst=300 at port 2
        // fires e0; in tag 1 the event is consumed.
        assert_eq!(program.detections.len(), 1);
        let (tag, event, m) = &program.detections[0];
        assert_eq!((*tag, *event), (0, 0));
        assert!(m.matches(&Packet::new().with(Field::IpDst, 300).with(Field::Port, 2)));
        // Display mentions the firing.
        assert!(program.to_string().contains("fires e0"));
    }

    #[test]
    fn stamping_lists_every_tag() {
        let compiled = CompiledNes::compile(firewall_nes());
        assert_eq!(compiled.switch_program(1).stamp_tags, vec![0, 1]);
    }
}
