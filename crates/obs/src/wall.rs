//! Wall-clock sampling helpers: the one audited place the benches take
//! `Instant::now()`.
//!
//! Wall-clock numbers are inherently nondeterministic, so they live in
//! [`Scope::Wall`](crate::Scope::Wall) metrics and in bench columns that
//! the byte-identity CI checks never compare. Keeping the sampling here
//! (instead of ad-hoc `Instant::now()` pairs in every bin) makes that
//! segregation auditable with one grep.

use std::time::Instant;

/// A started wall-clock timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Nanoseconds since [`start`](Stopwatch::start), saturated to `u64`
    /// — for sampled profiling of sub-microsecond phases.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Microseconds since [`start`](Stopwatch::start), saturated to `u64`.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Milliseconds since [`start`](Stopwatch::start), saturated to `u64`.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }
}

/// Folds repeated wall-clock samples down to their minimum — the standard
/// "best of N reps" estimator the scale sweeps report.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinWall {
    best: Option<u64>,
}

impl MinWall {
    /// An empty fold.
    pub fn new() -> Self {
        MinWall::default()
    }

    /// Records one sample (in any fixed unit; the sweeps use µs).
    pub fn record(&mut self, sample: u64) {
        self.best = Some(self.best.map_or(sample, |b| b.min(sample)));
    }

    /// Times `f` once with a [`Stopwatch`] and records the µs sample;
    /// returns `f`'s output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.record(sw.elapsed_us());
        out
    }

    /// The minimum recorded sample, or 0 when nothing was recorded.
    pub fn best(&self) -> u64 {
        self.best.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_wall_folds_minimum() {
        let mut m = MinWall::new();
        assert_eq!(m.best(), 0);
        m.record(40);
        m.record(25);
        m.record(60);
        assert_eq!(m.best(), 25);
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let b = sw.elapsed_us();
        assert!(b >= a);
        assert!(sw.elapsed_ms() <= sw.elapsed_us());
    }

    #[test]
    fn time_runs_and_records() {
        let mut m = MinWall::new();
        let v = m.time(|| 41 + 1);
        assert_eq!(v, 42);
        // A sample was recorded (possibly 0µs on a fast machine).
        m.record(u64::MAX);
        assert!(m.best() < u64::MAX);
    }
}
