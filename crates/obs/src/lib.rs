//! Deterministic telemetry for the event-driven network stack.
//!
//! The crate provides three independent pieces, all zero-overhead when
//! metrics are off:
//!
//! * a [`Registry`] of named [counters](Registry::counter_add),
//!   [high-water gauges](Registry::gauge_max), and
//!   [power-of-two log histograms](Hist) with a deterministic merge —
//!   per-shard registries fold at `finish` in shard order, exactly like
//!   the trace merge, so sim-time-derived metrics are byte-identical
//!   across `EDN_SHARDS`;
//! * a [`FlightRecorder`] — a bounded ring of recent engine events dumped
//!   as JSON next to a violation report when an online checker fails or a
//!   bench panics;
//! * wall-clock sampling helpers ([`Stopwatch`], [`MinWall`]) so ad-hoc
//!   `Instant::now()` timing lives in one audited place.
//!
//! Metrics are classified by [`Scope`]: `sim` metrics derive only from
//! simulated time and event content and are byte-identical across shard
//! counts; `shard` metrics are deterministic for a fixed `EDN_SHARDS` but
//! legitimately vary with it (queue depths, window widths); `wall`
//! metrics are wall-clock samples and are never expected to reproduce.
//! Exporters ([`Registry::render_json`], [`Registry::render_prometheus`])
//! keep the scopes segregated so determinism checks can compare the `sim`
//! section alone.
//!
//! The instrumentation level is selected by `EDN_METRICS=off|counters|full`
//! (see [`MetricsLevel`]); `EDN_METRICS_OUT=path` makes
//! [`Registry::write_out_from_env`] persist a snapshot at the end of a
//! run (`.prom`/`.txt` extension selects Prometheus text exposition,
//! anything else JSON).

mod flight;
mod registry;
mod wall;

pub use flight::{FlightEvent, FlightRecorder};
pub use registry::{Hist, Registry, Scope};
pub use wall::{MinWall, Stopwatch};

/// How much instrumentation the engine stack should run with.
///
/// Selected by the `EDN_METRICS` environment variable:
///
/// | value | meaning |
/// |---|---|
/// | `off` (default) | no metrics; hot paths skip all bookkeeping |
/// | `counters` | cheap counters, gauges, and sim-time histograms |
/// | `full` | `counters` plus sampled wall-clock phase profiling and the flight recorder |
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MetricsLevel {
    /// No instrumentation (the default).
    #[default]
    Off,
    /// Deterministic counters, gauges, and histograms only.
    Counters,
    /// Everything: counters plus sampled wall-clock phase profiling and
    /// the flight recorder.
    Full,
}

impl MetricsLevel {
    /// Reads `EDN_METRICS` (defaults to [`MetricsLevel::Off`]; unknown
    /// values panic so typos cannot silently disable telemetry).
    pub fn from_env() -> Self {
        match std::env::var("EDN_METRICS").as_deref() {
            Ok("counters") => MetricsLevel::Counters,
            Ok("full") => MetricsLevel::Full,
            Ok("off") | Err(_) => MetricsLevel::Off,
            Ok(other) => panic!("EDN_METRICS must be off|counters|full, got `{other}`"),
        }
    }

    /// Whether any instrumentation is enabled.
    pub fn is_on(self) -> bool {
        self != MetricsLevel::Off
    }

    /// Whether sampled phase profiling and the flight recorder run.
    pub fn is_full(self) -> bool {
        self == MetricsLevel::Full
    }

    /// The knob value naming this level.
    pub fn name(self) -> &'static str {
        match self {
            MetricsLevel::Off => "off",
            MetricsLevel::Counters => "counters",
            MetricsLevel::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_predicates() {
        assert!(!MetricsLevel::Off.is_on());
        assert!(MetricsLevel::Counters.is_on());
        assert!(!MetricsLevel::Counters.is_full());
        assert!(MetricsLevel::Full.is_full());
        assert_eq!(MetricsLevel::Full.name(), "full");
        assert_eq!(MetricsLevel::default(), MetricsLevel::Off);
    }
}
