//! The metric registry: counters, high-water gauges, and power-of-two
//! log histograms, with a deterministic merge and deterministic export.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Determinism class of a metric.
///
/// The class decides which equivalence guarantee a metric carries — and
/// therefore which CI byte-identity checks may compare it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Scope {
    /// Derived from simulated time and event content only: byte-identical
    /// across `EDN_SHARDS` and across replays.
    Sim,
    /// Deterministic for a fixed shard count, but legitimately varies
    /// with `EDN_SHARDS` (per-shard queue depths, window widths, ...).
    Shard,
    /// Wall-clock samples; never expected to reproduce.
    Wall,
}

impl Scope {
    /// The lowercase label used in exports (`sim`, `shard`, `wall`).
    pub fn label(self) -> &'static str {
        match self {
            Scope::Sim => "sim",
            Scope::Shard => "shard",
            Scope::Wall => "wall",
        }
    }
}

/// A log-scale histogram with power-of-two buckets.
///
/// Bucket `0` holds the value `0`; bucket `i` (for `i >= 1`) holds values
/// in `[2^(i-1), 2^i - 1]` — i.e. values of bit length `i`. Observing and
/// merging are pure integer arithmetic, so merged histograms are exact
/// and order-independent: merge is associative and commutative (each
/// bucket, the count, and the sum add).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { buckets: [0; 65], count: 0, sum: 0 }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Folds `other` into `self` (bucketwise addition).
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket holding the `num/den` quantile
    /// (integer rank `ceil(count * num / den)`, so `quantile(50, 100)` is
    /// a p50 upper bound and `quantile(99, 100)` a p99 upper bound).
    /// Returns `0` for an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count * num).div_ceil(den)).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(upper bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c != 0).map(|(i, &c)| (bucket_upper(i), c))
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// One registered metric value.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Value {
    /// Monotone counter; merge adds.
    Counter(u64),
    /// High-water gauge; merge takes the max.
    Gauge(u64),
    /// Log histogram; merge adds bucketwise. Boxed: a `Hist` is ~540
    /// bytes against the scalar variants' 8, and registries hold many
    /// more counters than histograms.
    Hist(Box<Hist>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Hist(_) => "histogram",
        }
    }
}

/// A deterministic collection of named metrics.
///
/// Names are stored in a sorted map and every exporter walks them in
/// name order, so two registries holding the same values render to
/// byte-identical text. [`merge`](Registry::merge) is commutative and
/// associative per metric (counters add, gauges max, histograms add
/// bucketwise); the engine nevertheless folds per-shard registries in
/// shard order, mirroring the trace merge discipline.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Registry {
    metrics: BTreeMap<(Scope, String), Value>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Adds `v` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, scope: Scope, name: &str, v: u64) {
        match self.entry(scope, name, || Value::Counter(0)) {
            Value::Counter(c) => *c += v,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Raises the high-water gauge `name` to at least `v`.
    pub fn gauge_max(&mut self, scope: Scope, name: &str, v: u64) {
        match self.entry(scope, name, || Value::Gauge(0)) {
            Value::Gauge(g) => *g = (*g).max(v),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one observation in the histogram `name`.
    pub fn hist_observe(&mut self, scope: Scope, name: &str, v: u64) {
        match self.entry(scope, name, || Value::Hist(Box::new(Hist::new()))) {
            Value::Hist(h) => h.observe(v),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Folds a whole pre-aggregated histogram into `name`.
    pub fn hist_merge(&mut self, scope: Scope, name: &str, h: &Hist) {
        match self.entry(scope, name, || Value::Hist(Box::new(Hist::new()))) {
            Value::Hist(mine) => mine.merge(h),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn entry(&mut self, scope: Scope, name: &str, init: impl FnOnce() -> Value) -> &mut Value {
        self.metrics.entry((scope, name.to_owned())).or_insert_with(init)
    }

    /// Folds `other` into `self`: counters add, gauges max, histograms
    /// merge bucketwise. Panics if the same name carries different metric
    /// kinds in the two registries.
    pub fn merge(&mut self, other: &Registry) {
        for ((scope, name), value) in &other.metrics {
            match value {
                Value::Counter(v) => self.counter_add(*scope, name, *v),
                Value::Gauge(v) => self.gauge_max(*scope, name, *v),
                Value::Hist(h) => self.hist_merge(*scope, name, h),
            }
        }
    }

    /// Current value of counter `name`, if registered (any scope).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.find(name).and_then(|v| match v {
            Value::Counter(c) => Some(*c),
            _ => None,
        })
    }

    /// Current value of gauge `name`, if registered (any scope).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.find(name).and_then(|v| match v {
            Value::Gauge(g) => Some(*g),
            _ => None,
        })
    }

    /// Histogram `name`, if registered (any scope).
    pub fn histogram(&self, name: &str) -> Option<&Hist> {
        self.find(name).and_then(|v| match v {
            Value::Hist(h) => Some(h.as_ref()),
            _ => None,
        })
    }

    fn find(&self, name: &str) -> Option<&Value> {
        self.metrics.iter().find(|((_, n), _)| n == name).map(|(_, v)| v)
    }

    /// JSON snapshot of every metric, grouped by scope, names sorted.
    ///
    /// Histograms export `count`, `sum`, p50/p99 bucket upper bounds, and
    /// the non-empty buckets.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, scope) in [Scope::Sim, Scope::Shard, Scope::Wall].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": {{", scope.label());
            let mut first = true;
            for ((s, name), value) in &self.metrics {
                if s != scope {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    \"{name}\": ");
                match value {
                    Value::Counter(v) | Value::Gauge(v) => {
                        let _ = write!(out, "{v}");
                    }
                    Value::Hist(h) => {
                        let _ = write!(
                            out,
                            "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                            h.count(),
                            h.sum(),
                            h.quantile(50, 100),
                            h.quantile(99, 100)
                        );
                        for (j, (upper, count)) in h.nonzero_buckets().enumerate() {
                            if j > 0 {
                                out.push_str(", ");
                            }
                            let _ = write!(out, "[{upper}, {count}]");
                        }
                        out.push_str("]}");
                    }
                }
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// JSON snapshot of one scope only (the object that scope maps to in
    /// [`render_json`](Registry::render_json)); determinism checks compare
    /// the `sim` section alone with this.
    pub fn render_scope_json(&self, scope: Scope) -> String {
        let full = self.render_json();
        // Re-render from scratch rather than substring-matching: small,
        // and keeps the two exporters trivially consistent.
        let _ = full;
        let mut out = String::from("{");
        let mut first = true;
        for ((s, name), value) in &self.metrics {
            if *s != scope {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n  \"{name}\": ");
            match value {
                Value::Counter(v) | Value::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Hist(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                        h.count(),
                        h.sum(),
                        h.quantile(50, 100),
                        h.quantile(99, 100)
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Prometheus text exposition of every metric, names sorted.
    ///
    /// Metric names are prefixed `edn_` and suffixed with their scope
    /// label (`..._sim`, `..._shard`, `..._wall`); dots become
    /// underscores. Histograms export cumulative `_bucket{le=...}` lines
    /// plus `_sum` and `_count`, per the exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for ((scope, name), value) in &self.metrics {
            let flat = name.replace('.', "_");
            let full = format!("edn_{}_{}", flat, scope.label());
            match value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {full} counter");
                    let _ = writeln!(out, "{full} {v}");
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {full} gauge");
                    let _ = writeln!(out, "{full} {v}");
                }
                Value::Hist(h) => {
                    let _ = writeln!(out, "# TYPE {full} histogram");
                    let mut cum = 0;
                    for (upper, count) in h.nonzero_buckets() {
                        cum += count;
                        let _ = writeln!(out, "{full}_bucket{{le=\"{upper}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{full}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{full}_sum {}", h.sum());
                    let _ = writeln!(out, "{full}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Writes a snapshot to the path named by `EDN_METRICS_OUT`, if set.
    ///
    /// A `.prom` or `.txt` extension selects Prometheus text exposition;
    /// anything else gets the JSON snapshot. Returns the path written, or
    /// `None` when the knob is unset. I/O errors panic: an explicitly
    /// requested export that silently vanishes is worse than a crash.
    pub fn write_out_from_env(&self) -> Option<String> {
        let path = std::env::var("EDN_METRICS_OUT").ok().filter(|p| !p.is_empty())?;
        let body = if path.ends_with(".prom") || path.ends_with(".txt") {
            self.render_prometheus()
        } else {
            self.render_json()
        };
        std::fs::write(&path, body)
            .unwrap_or_else(|e| panic!("EDN_METRICS_OUT: cannot write `{path}`: {e}"));
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_quantiles() {
        let mut h = Hist::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.quantile(1, 100), 0); // rank 1 → the zero bucket
        assert_eq!(h.quantile(50, 100), 3); // rank 4 → bucket [2,3]
        assert_eq!(h.quantile(100, 100), u64::MAX);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(*buckets.last().unwrap(), (u64::MAX, 1));
    }

    #[test]
    fn merge_semantics_per_kind() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add(Scope::Sim, "events", 3);
        b.counter_add(Scope::Sim, "events", 4);
        a.gauge_max(Scope::Shard, "queue.depth_hw", 9);
        b.gauge_max(Scope::Shard, "queue.depth_hw", 7);
        a.hist_observe(Scope::Sim, "latency_us", 10);
        b.hist_observe(Scope::Sim, "latency_us", 1000);
        a.merge(&b);
        assert_eq!(a.counter("events"), Some(7));
        assert_eq!(a.gauge("queue.depth_hw"), Some(9));
        assert_eq!(a.histogram("latency_us").unwrap().count(), 2);
    }

    #[test]
    fn renders_are_deterministic_and_scoped() {
        let mut r = Registry::new();
        r.counter_add(Scope::Sim, "drops.no_rule", 2);
        r.gauge_max(Scope::Wall, "phase.pump_us", 5);
        r.hist_observe(Scope::Sim, "latency_us", 3);
        assert_eq!(r.render_json(), r.clone().render_json());
        let sim = r.render_scope_json(Scope::Sim);
        assert!(sim.contains("drops.no_rule"));
        assert!(!sim.contains("phase.pump_us"));
        let prom = r.render_prometheus();
        assert!(prom.contains("edn_drops_no_rule_sim 2"));
        assert!(prom.contains("# TYPE edn_latency_us_sim histogram"));
        assert!(prom.contains("edn_latency_us_sim_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn empty_hist_quantile_is_zero() {
        assert_eq!(Hist::new().quantile(99, 100), 0);
    }
}
