//! The flight recorder: a bounded ring of recent engine events, dumped
//! as JSON when something goes wrong.
//!
//! The recorder is a black box in the aviation sense: it runs only at
//! `EDN_METRICS=full`, keeps the last `capacity` events in a ring, and is
//! dumped next to the violation report when an online checker fails or a
//! bench panics — giving the queue-depth / dispatch-key / checker history
//! leading *into* the failure, which the final `Stats` cannot show.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One recorded engine event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Simulated time of the dispatch, in microseconds.
    pub t_us: u64,
    /// The event's packed tiebreak sequence (entity id and counter).
    pub seq: u64,
    /// What happened (`"inject"`, `"arrive"`, `"checker"`, ...).
    pub kind: &'static str,
    /// The entity concerned: switch/host id, or checker node index.
    pub node: u64,
    /// Event-queue depth after the dispatch (or checker live nodes).
    pub depth: u64,
}

struct Ring {
    cap: usize,
    /// Total events ever recorded (so a dump can say how many were lost).
    recorded: u64,
    buf: VecDeque<FlightEvent>,
}

/// A shared, bounded ring of recent [`FlightEvent`]s.
///
/// Handles are cheap clones of one shared ring, so the engine, the online
/// checker, and a bench's panic guard can all hold one. Recording takes a
/// mutex; the recorder is only wired in at `EDN_METRICS=full`, where the
/// run has already opted into profiling overhead.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Ring>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.inner.lock().unwrap();
        f.debug_struct("FlightRecorder")
            .field("capacity", &ring.cap)
            .field("recorded", &ring.recorded)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Mutex::new(Ring {
                cap,
                recorded: 0,
                buf: VecDeque::with_capacity(cap),
            })),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&self, ev: FlightEvent) {
        let mut ring = self.inner.lock().unwrap();
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
        }
        ring.recorded += 1;
        ring.buf.push_back(ev);
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON dump of the retained tail: an object with the total recorded
    /// count, the retained count, and the events oldest-first.
    pub fn dump_json(&self) -> String {
        let ring = self.inner.lock().unwrap();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"recorded\": {},\n  \"retained\": {},\n  \"events\": [",
            ring.recorded,
            ring.buf.len()
        );
        for (i, ev) in ring.buf.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"t_us\": {}, \"seq\": {}, \"kind\": \"{}\", \"node\": {}, \"depth\": {}}}",
                ev.t_us, ev.seq, ev.kind, ev.node, ev.depth
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`dump_json`](FlightRecorder::dump_json) to `path`.
    pub fn dump_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.dump_json())
    }

    /// The dump path named by `EDN_FLIGHT_OUT`, or the given default.
    ///
    /// Benches call this when a checker violation or panic fires, so the
    /// dump lands somewhere predictable unless the operator redirects it.
    pub fn dump_path_from_env(default: &str) -> String {
        std::env::var("EDN_FLIGHT_OUT")
            .ok()
            .filter(|p| !p.is_empty())
            .unwrap_or_else(|| default.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> FlightEvent {
        FlightEvent { t_us: t, seq: t, kind: "arrive", node: 1, depth: t }
    }

    #[test]
    fn ring_evicts_oldest() {
        let fr = FlightRecorder::new(3);
        for t in 0..5 {
            fr.record(ev(t));
        }
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.len(), 3);
        let dump = fr.dump_json();
        assert!(!dump.contains("\"t_us\": 1,"));
        assert!(dump.contains("\"t_us\": 2,"));
        assert!(dump.contains("\"t_us\": 4,"));
        assert!(dump.contains("\"recorded\": 5"));
    }

    #[test]
    fn handles_share_one_ring() {
        let fr = FlightRecorder::new(8);
        let other = fr.clone();
        other.record(ev(7));
        assert_eq!(fr.len(), 1);
        assert!(!fr.is_empty());
    }
}
