//! Property tests for the log-bucketed histogram: shard-order folding at
//! `finish` relies on `Hist::merge` being associative and commutative
//! (the merged registry must not depend on which core contributed first),
//! and on observation order being irrelevant within one histogram.

use edn_obs::{Hist, Registry, Scope};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// `(a ∪ b) ∪ c == a ∪ (b ∪ c)` — bucketwise addition associates.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
        c in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// `a ∪ b == b ∪ a` — the fold order across cores cannot matter.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Splitting one observation stream across two histograms and merging
    /// equals observing it all in one — the per-shard accumulate-then-fold
    /// scheme loses nothing.
    #[test]
    fn split_observe_then_merge_equals_direct(
        values in proptest::collection::vec(any::<u64>(), 0..128),
        split in 0usize..128,
    ) {
        let split = split.min(values.len());
        let mut halves = hist_of(&values[..split]);
        halves.merge(&hist_of(&values[split..]));
        prop_assert_eq!(halves, hist_of(&values));
        }

    /// Count and saturating sum survive any merge.
    #[test]
    fn merge_preserves_count_and_sum(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.sum(), ha.sum().saturating_add(hb.sum()));
    }

    /// Registry-level merge is commutative for every value kind, and its
    /// JSON render is a pure function of the merged content.
    #[test]
    fn registry_merge_commutes_and_renders_deterministically(
        counters in proptest::collection::vec((0u8..4, 0u64..=u32::MAX as u64), 0..16),
        gauges in proptest::collection::vec((0u8..4, any::<u64>()), 0..16),
        samples in proptest::collection::vec((0u8..4, any::<u64>()), 0..32),
        split in 0usize..32,
    ) {
        let build = |range: std::ops::Range<usize>| {
            let mut r = Registry::new();
            for (k, v) in &counters[range.start.min(counters.len())..range.end.min(counters.len())] {
                r.counter_add(Scope::Sim, &format!("c{k}"), *v);
            }
            for (k, v) in &gauges[range.start.min(gauges.len())..range.end.min(gauges.len())] {
                r.gauge_max(Scope::Shard, &format!("g{k}"), *v);
            }
            for (k, v) in &samples[range.start.min(samples.len())..range.end.min(samples.len())] {
                r.hist_observe(Scope::Sim, &format!("h{k}"), *v);
            }
            r
        };
        let ra = build(0..split);
        let rb = build(split..32);
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab.render_json(), ba.render_json());
    }
}
