//! Simulated topologies and timing/capacity parameters.

use std::collections::BTreeMap;

use netkat::Loc;

use crate::time::SimTime;

/// A directed simulated link with its timing characteristics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkSpec {
    /// Source location.
    pub src: Loc,
    /// Destination location.
    pub dst: Loc,
    /// Propagation latency.
    pub latency: SimTime,
    /// Capacity in bytes per second; `None` means infinite (no
    /// serialization delay, no queueing).
    pub capacity: Option<u64>,
}

impl LinkSpec {
    /// A link with the given latency and infinite capacity.
    pub fn new(src: Loc, dst: Loc, latency: SimTime) -> LinkSpec {
        LinkSpec { src, dst, latency, capacity: None }
    }

    /// Sets the capacity (builder style).
    pub fn with_capacity(mut self, bytes_per_sec: u64) -> LinkSpec {
        self.capacity = Some(bytes_per_sec);
        self
    }
}

/// The simulated network: switches, host attachments, and links.
///
/// # Examples
///
/// ```
/// use netsim::{SimTopology, SimTime};
/// use netkat::Loc;
/// let topo = SimTopology::new([1, 4])
///     .host(101, Loc::new(1, 2))
///     .host(104, Loc::new(4, 2))
///     .bilink(Loc::new(1, 1), Loc::new(4, 1), SimTime::from_micros(50), None);
/// assert_eq!(topo.attachment(101), Some(Loc::new(1, 2)));
/// assert!(topo.is_host(104));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimTopology {
    switches: Vec<u64>,
    hosts: BTreeMap<u64, Loc>,
    links: Vec<LinkSpec>,
    /// Latency of host attachment links.
    pub host_latency: SimTime,
}

impl SimTopology {
    /// Creates a topology over the given switches with a default host-link
    /// latency of 10 µs.
    pub fn new<I: IntoIterator<Item = u64>>(switches: I) -> SimTopology {
        SimTopology {
            switches: switches.into_iter().collect(),
            host_latency: SimTime::from_micros(10),
            ..SimTopology::default()
        }
    }

    /// Attaches a host at a switch location (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the host id collides with a switch id.
    pub fn host(mut self, id: u64, attached: Loc) -> SimTopology {
        assert!(!self.switches.contains(&id), "host id {id} collides with a switch");
        self.hosts.insert(id, attached);
        self
    }

    /// Adds a unidirectional link (builder style).
    pub fn link(mut self, spec: LinkSpec) -> SimTopology {
        self.links.push(spec);
        self
    }

    /// Adds both directions of a link with shared latency/capacity
    /// (builder style).
    pub fn bilink(
        mut self,
        a: Loc,
        b: Loc,
        latency: SimTime,
        capacity: Option<u64>,
    ) -> SimTopology {
        self.links.push(LinkSpec { src: a, dst: b, latency, capacity });
        self.links.push(LinkSpec { src: b, dst: a, latency, capacity });
        self
    }

    /// The switch identifiers.
    pub fn switches(&self) -> &[u64] {
        &self.switches
    }

    /// The hosts and their attachment points.
    pub fn hosts(&self) -> impl Iterator<Item = (u64, Loc)> + '_ {
        self.hosts.iter().map(|(&h, &l)| (h, l))
    }

    /// The inter-switch links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Returns `true` if `node` is a host.
    pub fn is_host(&self, node: u64) -> bool {
        self.hosts.contains_key(&node)
    }

    /// A host's attachment location.
    pub fn attachment(&self, host: u64) -> Option<Loc> {
        self.hosts.get(&host).copied()
    }

    /// The host (if any) attached at a switch-side location.
    pub fn host_at(&self, loc: Loc) -> Option<u64> {
        self.hosts.iter().find(|&(_, &l)| l == loc).map(|(&h, _)| h)
    }

    /// The link leaving `loc`, if any.
    pub fn link_from(&self, loc: Loc) -> Option<&LinkSpec> {
        self.links.iter().find(|l| l.src == loc)
    }
}

/// Global timing parameters of a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimParams {
    /// Per-packet switch processing delay.
    pub switch_delay: SimTime,
    /// One-way latency between any switch and the controller.
    pub controller_latency: SimTime,
    /// Maximum queueing delay on a capacity-limited link before tail drop.
    pub max_queue_delay: SimTime,
    /// Extra on-the-wire bytes per packet (e.g. the NES runtime's tag and
    /// digest headers); added to the payload size when computing
    /// serialization delay on capacity-limited links.
    pub header_overhead: u32,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            switch_delay: SimTime::from_micros(5),
            controller_latency: SimTime::from_millis(2),
            max_queue_delay: SimTime::from_millis(50),
            header_overhead: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_helpers() {
        let topo = SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            Some(1_000_000),
        );
        assert_eq!(topo.host_at(Loc::new(1, 2)), Some(100));
        assert_eq!(topo.host_at(Loc::new(9, 9)), None);
        let l = topo.link_from(Loc::new(1, 1)).unwrap();
        assert_eq!(l.dst, Loc::new(2, 1));
        assert_eq!(l.capacity, Some(1_000_000));
        assert!(topo.link_from(Loc::new(1, 3)).is_none());
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn host_switch_collision_panics() {
        let _ = SimTopology::new([1]).host(1, Loc::new(1, 2));
    }

    #[test]
    fn default_params_sane() {
        let p = SimParams::default();
        assert!(p.switch_delay < p.controller_latency);
    }
}
