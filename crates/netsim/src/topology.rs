//! Simulated topologies and timing/capacity parameters.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use netkat::Loc;

use crate::time::SimTime;

/// A directed simulated link with its timing characteristics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkSpec {
    /// Source location.
    pub src: Loc,
    /// Destination location.
    pub dst: Loc,
    /// Propagation latency.
    pub latency: SimTime,
    /// Capacity in bytes per second; `None` means infinite (no
    /// serialization delay, no queueing).
    pub capacity: Option<u64>,
}

impl LinkSpec {
    /// A link with the given latency and infinite capacity.
    pub fn new(src: Loc, dst: Loc, latency: SimTime) -> LinkSpec {
        LinkSpec { src, dst, latency, capacity: None }
    }

    /// Sets the capacity (builder style).
    pub fn with_capacity(mut self, bytes_per_sec: u64) -> LinkSpec {
        self.capacity = Some(bytes_per_sec);
        self
    }
}

/// The simulated network: switches, host attachments, and links.
///
/// # Examples
///
/// ```
/// use netsim::{SimTopology, SimTime};
/// use netkat::Loc;
/// let topo = SimTopology::new([1, 4])
///     .host(101, Loc::new(1, 2))
///     .host(104, Loc::new(4, 2))
///     .bilink(Loc::new(1, 1), Loc::new(4, 1), SimTime::from_micros(50), None);
/// assert_eq!(topo.attachment(101), Some(Loc::new(1, 2)));
/// assert!(topo.is_host(104));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimTopology {
    switches: Vec<u64>,
    hosts: BTreeMap<u64, Loc>,
    links: Vec<LinkSpec>,
    /// Index of each link by its source location (kept in lockstep with
    /// `links`). Serves both the duplicate guard in [`SimTopology::link`]
    /// and O(log L) [`SimTopology::link_from`]/[`SimTopology::link_index`]
    /// lookups.
    link_by_src: BTreeMap<Loc, usize>,
    /// Locations already carrying a host attachment (duplicate guard for
    /// [`SimTopology::host`], same rationale as `link_srcs`).
    host_locs: BTreeSet<Loc>,
    /// Latency of host attachment links.
    pub host_latency: SimTime,
}

impl SimTopology {
    /// Creates a topology over the given switches with a default host-link
    /// latency of 10 µs.
    pub fn new<I: IntoIterator<Item = u64>>(switches: I) -> SimTopology {
        SimTopology {
            switches: switches.into_iter().collect(),
            host_latency: SimTime::from_micros(10),
            ..SimTopology::default()
        }
    }

    /// Sets the host attachment-link latency (builder style).
    pub fn with_host_latency(mut self, latency: SimTime) -> SimTopology {
        self.host_latency = latency;
        self
    }

    /// Attaches a host at a switch location (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the host id collides with a switch id, or if the location
    /// already carries an attachment: a silent duplicate would make packet
    /// delivery at that location pick an arbitrary host.
    pub fn host(mut self, id: u64, attached: Loc) -> SimTopology {
        assert!(!self.switches.contains(&id), "host id {id} collides with a switch");
        assert!(
            self.host_locs.insert(attached),
            "duplicate host attachment at {}:{} (adding host {id}): one host per location",
            attached.sw,
            attached.pt,
        );
        self.hosts.insert(id, attached);
        self
    }

    /// Adds a unidirectional link (builder style).
    ///
    /// # Panics
    ///
    /// Panics if a link already leaves `spec.src`: each source location is
    /// one physical port and carries at most one cable, and a silent
    /// duplicate would make [`SimTopology::link_from`] pick an arbitrary
    /// winner. Generators producing multigraphs must dedup first.
    pub fn link(mut self, spec: LinkSpec) -> SimTopology {
        assert!(
            self.link_by_src.insert(spec.src, self.links.len()).is_none(),
            "duplicate link out of {}:{} (to {}:{}): a source location carries at most one link",
            spec.src.sw,
            spec.src.pt,
            spec.dst.sw,
            spec.dst.pt,
        );
        self.links.push(spec);
        self
    }

    /// Adds both directions of a link with shared latency/capacity
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate source location, as for
    /// [`SimTopology::link`].
    pub fn bilink(self, a: Loc, b: Loc, latency: SimTime, capacity: Option<u64>) -> SimTopology {
        self.link(LinkSpec { src: a, dst: b, latency, capacity }).link(LinkSpec {
            src: b,
            dst: a,
            latency,
            capacity,
        })
    }

    /// Adds a batch of links (builder style) — the bulk-construction entry
    /// point for topology generators.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate source location, as for
    /// [`SimTopology::link`].
    pub fn extend_links<I: IntoIterator<Item = LinkSpec>>(mut self, specs: I) -> SimTopology {
        for spec in specs {
            self = self.link(spec);
        }
        self
    }

    /// The switch identifiers.
    pub fn switches(&self) -> &[u64] {
        &self.switches
    }

    /// The hosts and their attachment points.
    pub fn hosts(&self) -> impl Iterator<Item = (u64, Loc)> + '_ {
        self.hosts.iter().map(|(&h, &l)| (h, l))
    }

    /// The inter-switch links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Returns `true` if `node` is a host.
    pub fn is_host(&self, node: u64) -> bool {
        self.hosts.contains_key(&node)
    }

    /// A host's attachment location.
    pub fn attachment(&self, host: u64) -> Option<Loc> {
        self.hosts.get(&host).copied()
    }

    /// The host (if any) attached at a switch-side location.
    pub fn host_at(&self, loc: Loc) -> Option<u64> {
        self.hosts.iter().find(|&(_, &l)| l == loc).map(|(&h, _)| h)
    }

    /// The link leaving `loc`, if any.
    pub fn link_from(&self, loc: Loc) -> Option<&LinkSpec> {
        self.link_by_src.get(&loc).map(|&i| &self.links[i])
    }

    /// The index (into [`SimTopology::links`]) of the link `src → dst`, if
    /// present. Link indices are stable: links are never removed.
    pub fn link_index(&self, src: Loc, dst: Loc) -> Option<usize> {
        self.link_by_src.get(&src).copied().filter(|&i| self.links[i].dst == dst)
    }

    /// The inter-switch adjacency implied by the links: for each switch, the
    /// `(out port, neighbour switch)` pairs in ascending port order.
    ///
    /// This is the port map that routing queries and topology generators
    /// work from.
    pub fn switch_adjacency(&self) -> BTreeMap<u64, Vec<(u64, u64)>> {
        let mut adj: BTreeMap<u64, Vec<(u64, u64)>> =
            self.switches.iter().map(|&s| (s, Vec::new())).collect();
        for l in &self.links {
            if let Some(ports) = adj.get_mut(&l.src.sw) {
                ports.push((l.src.pt, l.dst.sw));
            }
        }
        for ports in adj.values_mut() {
            ports.sort_unstable();
        }
        adj
    }

    /// Shortest-path next hops toward `dst_sw`: for every switch that can
    /// reach it, the out port of a deterministic shortest path (ties break
    /// toward the lowest `(neighbour distance, neighbour id, port)`).
    ///
    /// `dst_sw` itself is not in the map. Unreachable switches are absent.
    pub fn next_hop_ports(&self, dst_sw: u64) -> BTreeMap<u64, u64> {
        let adj = self.switch_adjacency();
        // BFS from the destination over reversed edges to get hop counts.
        let mut rev: BTreeMap<u64, Vec<u64>> =
            self.switches.iter().map(|&s| (s, Vec::new())).collect();
        for l in &self.links {
            if let Some(srcs) = rev.get_mut(&l.dst.sw) {
                srcs.push(l.src.sw);
            }
        }
        let mut dist: BTreeMap<u64, u64> = BTreeMap::new();
        dist.insert(dst_sw, 0);
        let mut frontier = VecDeque::from([dst_sw]);
        while let Some(sw) = frontier.pop_front() {
            let d = dist[&sw];
            let Some(srcs) = rev.get(&sw) else { continue };
            for &p in srcs {
                dist.entry(p).or_insert_with(|| {
                    frontier.push_back(p);
                    d + 1
                });
            }
        }
        // Each switch forwards out the port minimizing the deterministic key.
        let mut next = BTreeMap::new();
        for (&sw, ports) in &adj {
            if sw == dst_sw {
                continue;
            }
            let best =
                ports.iter().filter_map(|&(pt, nb)| dist.get(&nb).map(|&d| (d, nb, pt))).min();
            if let Some((_, _, pt)) = best {
                next.insert(sw, pt);
            }
        }
        next
    }

    /// The deterministic shortest path from `src_sw` to `dst_sw` as a link
    /// sequence, or `None` if unreachable (or `src_sw == dst_sw`, where the
    /// path is empty — represented as `Some` of an empty vector).
    pub fn route(&self, src_sw: u64, dst_sw: u64) -> Option<Vec<LinkSpec>> {
        if src_sw == dst_sw {
            return Some(Vec::new());
        }
        let next = self.next_hop_ports(dst_sw);
        let mut path = Vec::new();
        let mut at = src_sw;
        while at != dst_sw {
            let &pt = next.get(&at)?;
            let link = *self.link_from(Loc::new(at, pt))?;
            at = link.dst.sw;
            path.push(link);
            if path.len() > self.links.len() {
                return None; // inconsistent next-hop map; avoid looping
            }
        }
        Some(path)
    }
}

/// Global timing parameters of a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimParams {
    /// Per-packet switch processing delay.
    pub switch_delay: SimTime,
    /// One-way latency between any switch and the controller.
    pub controller_latency: SimTime,
    /// Maximum queueing delay on a capacity-limited link before tail drop.
    pub max_queue_delay: SimTime,
    /// Extra on-the-wire bytes per packet (e.g. the NES runtime's tag and
    /// digest headers); added to the payload size when computing
    /// serialization delay on capacity-limited links.
    pub header_overhead: u32,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            switch_delay: SimTime::from_micros(5),
            controller_latency: SimTime::from_millis(2),
            max_queue_delay: SimTime::from_millis(50),
            header_overhead: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_helpers() {
        let topo = SimTopology::new([1, 2]).host(100, Loc::new(1, 2)).bilink(
            Loc::new(1, 1),
            Loc::new(2, 1),
            SimTime::from_micros(50),
            Some(1_000_000),
        );
        assert_eq!(topo.host_at(Loc::new(1, 2)), Some(100));
        assert_eq!(topo.host_at(Loc::new(9, 9)), None);
        let l = topo.link_from(Loc::new(1, 1)).unwrap();
        assert_eq!(l.dst, Loc::new(2, 1));
        assert_eq!(l.capacity, Some(1_000_000));
        assert!(topo.link_from(Loc::new(1, 3)).is_none());
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn host_switch_collision_panics() {
        let _ = SimTopology::new([1]).host(1, Loc::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate host attachment at 1:2")]
    fn duplicate_host_attachment_is_rejected() {
        let _ = SimTopology::new([1]).host(100, Loc::new(1, 2)).host(200, Loc::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate link out of 1:1")]
    fn duplicate_directed_link_is_rejected() {
        let lat = SimTime::from_micros(10);
        let _ = SimTopology::new([1, 2])
            .link(LinkSpec::new(Loc::new(1, 1), Loc::new(2, 1), lat))
            .link(LinkSpec::new(Loc::new(1, 1), Loc::new(2, 1), lat));
    }

    #[test]
    #[should_panic(expected = "duplicate link out of 1:1")]
    fn second_link_from_same_port_is_rejected() {
        // Not byte-identical links, but the same source port: still a
        // multigraph `link_from` would silently resolve arbitrarily.
        let lat = SimTime::from_micros(10);
        let _ = SimTopology::new([1, 2, 3])
            .link(LinkSpec::new(Loc::new(1, 1), Loc::new(2, 1), lat))
            .link(LinkSpec::new(Loc::new(1, 1), Loc::new(3, 1), lat));
    }

    /// A 4-chain 1—2—3—4 (port 1 = right, port 2 = left).
    fn chain() -> SimTopology {
        let lat = SimTime::from_micros(10);
        SimTopology::new(1..=4)
            .bilink(Loc::new(1, 1), Loc::new(2, 2), lat, None)
            .bilink(Loc::new(2, 1), Loc::new(3, 2), lat, None)
            .bilink(Loc::new(3, 1), Loc::new(4, 2), lat, None)
    }

    #[test]
    fn adjacency_and_next_hops_on_a_chain() {
        let topo = chain();
        let adj = topo.switch_adjacency();
        assert_eq!(adj[&1], vec![(1, 2)]);
        assert_eq!(adj[&2], vec![(1, 3), (2, 1)]);
        let next = topo.next_hop_ports(4);
        assert_eq!(next.get(&1), Some(&1));
        assert_eq!(next.get(&2), Some(&1));
        assert_eq!(next.get(&3), Some(&1));
        assert_eq!(next.get(&4), None, "destination has no next hop");
        let back = topo.next_hop_ports(1);
        assert_eq!(back.get(&4), Some(&2));
        assert_eq!(back.get(&2), Some(&2));
    }

    #[test]
    fn route_walks_the_shortest_path() {
        let topo = chain();
        let path = topo.route(1, 4).expect("connected");
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].src, Loc::new(1, 1));
        assert_eq!(path[2].dst, Loc::new(4, 2));
        assert_eq!(topo.route(2, 2), Some(Vec::new()));
        // Disconnected switch: no route.
        let island = SimTopology::new([1, 2]);
        assert_eq!(island.route(1, 2), None);
    }

    #[test]
    fn link_index_is_positional() {
        let topo = chain();
        let i = topo.link_index(Loc::new(2, 1), Loc::new(3, 2)).expect("present");
        assert_eq!(topo.links()[i].dst, Loc::new(3, 2));
        assert_eq!(topo.link_index(Loc::new(3, 2), Loc::new(2, 1)), Some(i + 1));
        assert_eq!(topo.link_index(Loc::new(1, 1), Loc::new(3, 2)), None);
    }

    #[test]
    fn default_params_sane() {
        let p = SimParams::default();
        assert!(p.switch_delay < p.controller_latency);
    }
}
