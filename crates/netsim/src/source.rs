//! Generator-backed injection: lazy, pull-on-demand workload sources.
//!
//! [`Engine::inject_batch`](crate::Engine::inject_batch) materializes every
//! datagram of a workload into the event queue up front, so the queue alone
//! costs memory proportional to the offered load. A [`WorkloadSource`] is
//! the streaming alternative: the engine *pulls* timed injections from the
//! source as simulated time advances, so only the events of the current
//! instant ever sit in the queue and a 10M-event run costs the same queue
//! memory as a 10-event run.
//!
//! # Byte-identical to the batch path
//!
//! A streamed run is pinned **byte-identical** to the equivalent
//! [`inject_batch`](crate::Engine::inject_batch) run (the streaming
//! differential suite enforces this). The engine orders events by
//! `(time, sequence)` where initial injections draw their sequence from the
//! pre-run *environment* entity; the batch path numbers them in batch
//! (flow-major) order. A source therefore reports each event's
//! [`SourceEvent::seq`] — its offset in that same batch order — even though
//! it *yields* events in time order, and the engine packs
//! `base + seq` into the exact key the batch path would have used. Identical
//! keys mean identical pop order, which means identical runs.

use netkat::Packet;

use crate::time::SimTime;

/// One lazily-generated host injection.
#[derive(Clone, Debug)]
pub struct SourceEvent {
    /// When the host offers the packet.
    pub time: SimTime,
    /// The event's offset in the *batch-equivalent* injection order (see
    /// the module docs): the position this injection would have had in the
    /// corresponding [`inject_batch`](crate::Engine::inject_batch) call.
    /// Must be unique and `< total_events()`.
    pub seq: u64,
    /// The injecting host.
    pub host: u64,
    /// The packet.
    pub packet: Packet,
    /// Payload size in bytes.
    pub size: u32,
}

/// A lazy stream of timed host injections, pulled by the engine as
/// simulation time advances.
///
/// Implementations must yield events in nondecreasing [`SourceEvent::time`]
/// order, with [`peek_time`](WorkloadSource::peek_time) reporting the next
/// event's time without consuming it. [`total_events`](WorkloadSource::total_events)
/// must be exact: the engine reserves that many environment sequence
/// numbers up front so injections scheduled *after*
/// [`Engine::set_source`](crate::Engine::set_source) (e.g. trigger packets
/// via [`inject_at`](crate::Engine::inject_at)) sort after the whole
/// stream, exactly as they would after a batch call.
pub trait WorkloadSource {
    /// Exact number of events this source will yield in total.
    fn total_events(&self) -> u64;

    /// The time of the next event, or `None` when exhausted.
    fn peek_time(&self) -> Option<SimTime>;

    /// Yields the next event (in nondecreasing time order).
    fn next_event(&mut self) -> Option<SourceEvent>;
}
