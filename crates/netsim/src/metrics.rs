//! Per-core metric accumulation for the engine.
//!
//! Each [`Core`](crate::engine) owns one [`EngineMetrics`]: plain fields
//! the hot loop bumps behind a single `on` check, folded into an
//! [`edn_obs::Registry`] at `finish` — in shard order for sharded runs,
//! mirroring the trace merge, so the `sim`-scoped section is
//! byte-identical across `EDN_SHARDS`.
//!
//! Scope discipline (see [`edn_obs::Scope`]):
//!
//! * **Sim** — derived from sim time and event content at the event's
//!   unique creation or dispatch site, so the merged value is invariant
//!   across shard counts: per-kind dispatch counts, the
//!   creation-to-fire latency histogram, link-saturation counts,
//!   per-reason drops.
//! * **Shard** — deterministic at a fixed shard count but legitimately
//!   shard-varying: queue-depth high-water, pump batch sizes, arena
//!   interning, cross-shard outbox volume, window widths.
//! * **Wall** — sampled wall-clock phase profiling (`EDN_METRICS=full`
//!   only), never expected to reproduce.

use edn_obs::{FlightRecorder, Hist, MetricsLevel, Registry, Scope};

use crate::stats::{DropReason, Stats};
use crate::time::SimTime;

/// How many recent events the engine's flight recorder retains.
pub(crate) const FLIGHT_CAPACITY: usize = 1024;

/// Sample mask for wall-clock phase profiling: one dispatch in
/// `SAMPLE_MASK + 1` is timed.
const SAMPLE_MASK: u64 = 1023;

/// The engine's per-core metric accumulators. All zero-cost when
/// `on == false` (every instrument point is behind that one branch).
pub(crate) struct EngineMetrics {
    /// Any instrumentation at all? (`EDN_METRICS != off`.)
    pub(crate) on: bool,
    /// Wall-clock phase profiling and the flight recorder too?
    pub(crate) full: bool,
    /// The shared flight recorder, present only at `full`.
    pub(crate) flight: Option<FlightRecorder>,
    /// Is the current dispatch being wall-clock sampled?
    pub(crate) sampling: bool,

    // Sim scope.
    /// Dispatched events by kind (inject, arrive, notify, deliver, timer).
    pub(crate) dispatched: [u64; 5],
    /// Control-channel messages the fault model dropped.
    pub(crate) chan_dropped: u64,
    /// Control-channel messages the fault model duplicated.
    pub(crate) chan_duplicated: u64,
    /// Control-channel copies given the reorder (bad-delay) treatment.
    pub(crate) chan_reordered: u64,
    /// Sim-time delay from an event's creation to its fire time, in µs,
    /// observed once at the unique creation site.
    pub(crate) latency_us: Hist,
    /// Egress pushes that found their link still transmitting.
    pub(crate) link_busy: u64,

    // Shard scope.
    /// Event-queue depth high-water (sampled at each dispatch).
    pub(crate) queue_depth_hw: u64,
    /// Events admitted per non-empty source pump.
    pub(crate) pump_batch: Hist,
    /// Events sent to other shards.
    pub(crate) outbox_events: u64,
    /// Synchronization window widths, in µs (sharded runs).
    pub(crate) window_us: Hist,

    // Wall scope (sampled, `full` only).
    pub(crate) phase_pump_ns: Hist,
    pub(crate) phase_dispatch_ns: Hist,
    pub(crate) phase_lookup_ns: Hist,
    pub(crate) phase_observer_ns: Hist,
    /// Wall time spent blocked on the shard barrier, in µs.
    pub(crate) barrier_wait_us: Hist,
    /// Pump calls seen (sampling state for the pump phase).
    pub(crate) pump_calls: u64,
}

impl EngineMetrics {
    pub(crate) fn new(level: MetricsLevel, flight: Option<FlightRecorder>) -> EngineMetrics {
        EngineMetrics {
            on: level.is_on(),
            full: level.is_full(),
            flight,
            sampling: false,
            dispatched: [0; 5],
            chan_dropped: 0,
            chan_duplicated: 0,
            chan_reordered: 0,
            latency_us: Hist::new(),
            link_busy: 0,
            queue_depth_hw: 0,
            pump_batch: Hist::new(),
            outbox_events: 0,
            window_us: Hist::new(),
            phase_pump_ns: Hist::new(),
            phase_dispatch_ns: Hist::new(),
            phase_lookup_ns: Hist::new(),
            phase_observer_ns: Hist::new(),
            barrier_wait_us: Hist::new(),
            pump_calls: 0,
        }
    }

    /// The level this accumulator was built with.
    pub(crate) fn level(&self) -> MetricsLevel {
        if self.full {
            MetricsLevel::Full
        } else if self.on {
            MetricsLevel::Counters
        } else {
            MetricsLevel::Off
        }
    }

    /// Observes an event's creation (caller checked `on`): the sim-time
    /// gap between the creating dispatch's clock and the fire time.
    #[inline]
    pub(crate) fn observe_scheduled(&mut self, fire: SimTime, now: SimTime) {
        self.latency_us.observe(fire.as_micros() - now.as_micros());
    }

    /// Refreshes the per-dispatch sampling decision (caller checked `on`).
    #[inline]
    pub(crate) fn begin_dispatch(&mut self, events_processed: u64) {
        self.sampling = self.full && events_processed & SAMPLE_MASK == 0;
    }

    /// Folds these accumulators into `reg`.
    pub(crate) fn contribute(&self, reg: &mut Registry) {
        let kinds = ["inject", "arrive", "notify", "deliver", "timer"];
        for (name, count) in kinds.iter().zip(self.dispatched) {
            reg.counter_add(Scope::Sim, &format!("engine.dispatch.{name}"), count);
        }
        reg.counter_add(Scope::Sim, "channel.dropped", self.chan_dropped);
        reg.counter_add(Scope::Sim, "channel.duplicated", self.chan_duplicated);
        reg.counter_add(Scope::Sim, "channel.reordered", self.chan_reordered);
        reg.hist_merge(Scope::Sim, "engine.event_latency_us", &self.latency_us);
        reg.counter_add(Scope::Sim, "engine.link_busy", self.link_busy);
        reg.gauge_max(Scope::Shard, "engine.queue_depth_hw", self.queue_depth_hw);
        reg.hist_merge(Scope::Shard, "engine.pump_batch", &self.pump_batch);
        reg.counter_add(Scope::Shard, "shard.outbox_events", self.outbox_events);
        reg.hist_merge(Scope::Shard, "shard.window_us", &self.window_us);
        if self.full {
            reg.hist_merge(Scope::Wall, "phase.pump_ns", &self.phase_pump_ns);
            reg.hist_merge(Scope::Wall, "phase.dispatch_ns", &self.phase_dispatch_ns);
            reg.hist_merge(Scope::Wall, "phase.lookup_ns", &self.phase_lookup_ns);
            reg.hist_merge(Scope::Wall, "phase.observer_ns", &self.phase_observer_ns);
            reg.hist_merge(Scope::Wall, "shard.barrier_wait_us", &self.barrier_wait_us);
        }
    }
}

/// Folds the always-on aggregate [`Stats`] counters into `reg` — named
/// per-reason drop counts and the headline totals. Shard-invariant by
/// construction (the stats themselves are merged shard-invariantly).
pub(crate) fn contribute_stats(reg: &mut Registry, stats: &Stats) {
    reg.counter_add(Scope::Sim, "engine.events_processed", stats.events_processed);
    reg.counter_add(Scope::Sim, "engine.injected", stats.injected);
    reg.counter_add(Scope::Sim, "engine.delivered_packets", stats.delivered_packets);
    reg.counter_add(Scope::Sim, "engine.delivered_bytes", stats.delivered_bytes);
    for reason in DropReason::ALL {
        reg.counter_add(
            Scope::Sim,
            &format!("drops.{}", reason.name()),
            stats.dropped[reason.index()],
        );
    }
}

/// Folds one arena's interning counters and slot high-water into `reg`.
pub(crate) fn contribute_arena(reg: &mut Registry, arena: &netkat::PacketArena) {
    let s = arena.stats();
    reg.counter_add(Scope::Shard, "arena.intern_hits", s.hits);
    reg.counter_add(Scope::Shard, "arena.intern_misses", s.misses);
    reg.counter_add(Scope::Shard, "arena.recycled_slots", s.recycled);
    reg.gauge_max(Scope::Shard, "arena.slots_hw", arena.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribute_off_level_still_folds_counters() {
        let mut m = EngineMetrics::new(MetricsLevel::Counters, None);
        assert!(m.on && !m.full);
        m.dispatched[1] = 5;
        m.observe_scheduled(SimTime::from_micros(30), SimTime::from_micros(10));
        let mut reg = Registry::new();
        m.contribute(&mut reg);
        assert_eq!(reg.counter("engine.dispatch.arrive"), Some(5));
        let h = reg.histogram("engine.event_latency_us").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 20);
        // Counters level keeps the wall section empty.
        assert!(reg.histogram("phase.dispatch_ns").is_none());
        assert_eq!(m.level(), MetricsLevel::Counters);
    }

    #[test]
    fn sampling_gates_on_full_and_mask() {
        let mut m = EngineMetrics::new(MetricsLevel::Full, None);
        m.begin_dispatch(0);
        assert!(m.sampling);
        m.begin_dispatch(1);
        assert!(!m.sampling);
        m.begin_dispatch(1024);
        assert!(m.sampling);
        let mut c = EngineMetrics::new(MetricsLevel::Counters, None);
        c.begin_dispatch(0);
        assert!(!c.sampling);
    }

    #[test]
    fn stats_contribution_names_reasons() {
        let mut stats = Stats::default();
        stats.dropped[DropReason::QueueFull.index()] = 7;
        stats.events_processed = 42;
        let mut reg = Registry::new();
        contribute_stats(&mut reg, &stats);
        assert_eq!(reg.counter("drops.queue_full"), Some(7));
        assert_eq!(reg.counter("drops.no_rule"), Some(0));
        assert_eq!(reg.counter("engine.events_processed"), Some(42));
    }
}
