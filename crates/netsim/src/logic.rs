//! Pluggable behaviour: data planes (switches + controller) and host logic.

use netkat::{Packet, PacketArena, PacketId};

use crate::time::SimTime;

/// Which packet representation the engine moves through the data plane.
///
/// The arena path is the default; the owned path is the reference
/// semantics — every packet resolved to an owned [`Packet`] and fed through
/// [`DataPlane::process`] — kept selectable (env var `EDN_PACKETS`) so any
/// simulation can be replayed on both paths and diffed — speed must never
/// silently change meaning.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PacketPath {
    /// The reference path: owned packets through [`DataPlane::process`].
    Owned,
    /// The interned path: [`PacketId`]s through
    /// [`DataPlane::process_arena`].
    #[default]
    Arena,
}

impl PacketPath {
    /// Reads the path from the `EDN_PACKETS` environment variable (`owned`
    /// or `arena`); unset means [`PacketPath::Arena`].
    ///
    /// # Panics
    ///
    /// Panics if `EDN_PACKETS` is set to anything else.
    pub fn from_env() -> PacketPath {
        match std::env::var("EDN_PACKETS") {
            Ok(v) if v == "owned" => PacketPath::Owned,
            Ok(v) if v == "arena" => PacketPath::Arena,
            Ok(v) => panic!("EDN_PACKETS must be `owned` or `arena`, got {v:?}"),
            Err(_) => PacketPath::Arena,
        }
    }

    /// The label used in benchmark output (`owned` / `arena`).
    pub fn label(&self) -> &'static str {
        match self {
            PacketPath::Owned => "owned",
            PacketPath::Arena => "arena",
        }
    }
}

/// The timer `node` naming the controller endpoint (switch endpoints use
/// their switch id). See [`DataPlane::drain_timers`].
pub const CONTROLLER_NODE: u64 = u64::MAX;

/// A message between a switch and the controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtrlMsg {
    /// "These events occurred" — a bitset of event ids (switch → controller,
    /// or controller → switch for the CTRLSEND broadcast of Fig. 7).
    Events(u64),
    /// "Switch to configuration `n`" — used by the uncoordinated baseline.
    SetConfig(u64),
    /// A sequence-numbered reliability envelope (see `nes-runtime`'s
    /// `Reliable` wrapper): an inner message plus the header that lets a
    /// lossy channel be survived. `sw` is the switch endpoint of the
    /// stream (the sender for switch→controller, the target for
    /// controller→switch), `seq` the 1-based stream sequence number, `ack`
    /// the cumulative ack of the reverse stream, and `kind`/`bits` the
    /// flattened inner payload (`0` = [`Events`](CtrlMsg::Events), `1` =
    /// [`SetConfig`](CtrlMsg::SetConfig)) — flattened so the message stays
    /// `Copy`.
    Reliable {
        /// Switch endpoint of the stream.
        sw: u64,
        /// 1-based sequence number on the `(direction, sw)` stream.
        seq: u32,
        /// Cumulative ack of the reverse stream.
        ack: u32,
        /// Inner message discriminant (`0` = `Events`, `1` = `SetConfig`).
        kind: u8,
        /// Inner message payload bits.
        bits: u64,
    },
    /// A pure cumulative acknowledgement for stream `sw` (never itself
    /// acknowledged, so acks cannot regress into an ack storm).
    Ack {
        /// Switch endpoint of the acknowledged stream.
        sw: u64,
        /// Every message with `seq <= ack` has been received in order.
        ack: u32,
    },
}

/// What a [`DataPlane::on_timer`] callback wants (re)sent: the timer-fired
/// sibling of a switch step's notifications and `on_notify`'s deliveries,
/// scheduled by the engine through the same (possibly lossy) channel.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimerStep {
    /// Messages the switch endpoint (the timer's node) re-sends to the
    /// controller.
    pub notifications: Vec<CtrlMsg>,
    /// Messages the controller endpoint re-sends: `(extra delay, switch,
    /// message)`.
    pub deliveries: Vec<(SimTime, u64, CtrlMsg)>,
}

/// What one switch processing step produced.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StepResult {
    /// Output packets: `(out port, packet)`. Empty means the packet was
    /// dropped.
    pub outputs: Vec<(u64, Packet)>,
    /// Messages to the controller.
    pub notifications: Vec<CtrlMsg>,
}

impl StepResult {
    /// A step that drops the packet.
    pub fn drop() -> StepResult {
        StepResult::default()
    }

    /// A step that forwards to one port.
    pub fn forward(port: u64, packet: Packet) -> StepResult {
        StepResult { outputs: vec![(port, packet)], notifications: Vec::new() }
    }
}

/// What one switch processing step produced, in interned form: the
/// arena-path sibling of [`StepResult`], carrying [`PacketId`]s instead of
/// owned packets.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StepResultId {
    /// Output packets: `(out port, interned packet)`. Empty means the
    /// packet was dropped.
    pub outputs: Vec<(u64, PacketId)>,
    /// Messages to the controller.
    pub notifications: Vec<CtrlMsg>,
}

impl StepResultId {
    /// Empties both lists, keeping their allocations — callers reusing a
    /// step buffer across hops clear it through this.
    pub fn clear(&mut self) {
        self.outputs.clear();
        self.notifications.clear();
    }
}

/// Converts a flow-table application result into switch outputs — the
/// engine's per-packet egress convention, shared by every table-driven
/// [`DataPlane`]: each output packet leaves on the port its actions wrote
/// (defaulting to the ingress port `pt`), with the location fields
/// stripped (links, not tables, decide the next location).
pub fn table_outputs(pt: u64, packets: impl IntoIterator<Item = Packet>) -> Vec<(u64, Packet)> {
    packets
        .into_iter()
        .map(|mut out| {
            let (_, out_pt) = out.take_loc();
            (out_pt.unwrap_or(pt), out)
        })
        .collect()
}

/// The deployed system under test: all switches plus the controller.
///
/// The engine calls [`process`](DataPlane::process) for every packet at
/// every switch, and routes controller messages through
/// [`on_notify`](DataPlane::on_notify) / [`deliver`](DataPlane::deliver).
pub trait DataPlane {
    /// Processes a packet arriving at switch `sw`, port `pt`.
    ///
    /// `from_host` is `true` when the packet just entered the network from a
    /// host (the IN rule of Fig. 7, where ingress stamping happens).
    fn process(
        &mut self,
        sw: u64,
        pt: u64,
        packet: Packet,
        from_host: bool,
        now: SimTime,
    ) -> StepResult;

    /// [`process`](DataPlane::process) on an interned packet: the engine's
    /// arena hot path.
    ///
    /// The default implementation bridges through
    /// [`process`](DataPlane::process) — resolve, process owned, intern the
    /// outputs — so every data plane works on the arena path unchanged.
    /// Hot planes override this with a native implementation that avoids
    /// the owned round trip; the overrides must be observationally
    /// identical to the bridge (the plumbing-equivalence differential
    /// tests replay whole simulations on both paths and diff them).
    ///
    /// `packet` must have been interned in `arena` by the caller; ids
    /// returned in the [`StepResultId`] must come from the same arena. A
    /// plane instance is only ever driven against one arena (overrides may
    /// cache ids).
    fn process_arena(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
    ) -> StepResultId {
        let owned = arena.get(packet).clone();
        let StepResult { outputs, notifications } = self.process(sw, pt, owned, from_host, now);
        StepResultId {
            outputs: outputs.into_iter().map(|(pt, pk)| (pt, arena.intern(pk))).collect(),
            notifications,
        }
    }

    /// [`process_arena`](DataPlane::process_arena) with the result written
    /// into a caller-owned buffer instead of a fresh allocation — the
    /// engine's per-hop path, which reuses one [`StepResultId`] for the
    /// whole run so steady-state hops never allocate an output vector.
    ///
    /// `out` is cleared first; on return it holds exactly what
    /// [`process_arena`](DataPlane::process_arena) would have returned.
    /// The default implementation bridges through it; hot planes override
    /// both with one shared native implementation.
    #[allow(clippy::too_many_arguments)]
    fn process_arena_into(
        &mut self,
        sw: u64,
        pt: u64,
        packet: PacketId,
        from_host: bool,
        now: SimTime,
        arena: &mut PacketArena,
        out: &mut StepResultId,
    ) {
        *out = self.process_arena(sw, pt, packet, from_host, now, arena);
    }

    /// The controller received `msg`; returns commands to deliver to
    /// switches as `(extra delay, switch, message)`.
    fn on_notify(&mut self, msg: CtrlMsg, now: SimTime) -> Vec<(SimTime, u64, CtrlMsg)>;

    /// A controller command arrives at a switch.
    fn deliver(&mut self, sw: u64, msg: CtrlMsg, now: SimTime);

    /// [`deliver`](DataPlane::deliver), returning messages the switch
    /// sends straight back to the controller (acknowledgements, in the
    /// reliability layer). The engine schedules each reply as a
    /// switch→controller message through the channel model. The default
    /// delegates to [`deliver`](DataPlane::deliver) and replies nothing,
    /// so existing planes are unchanged.
    fn deliver_and_reply(&mut self, sw: u64, msg: CtrlMsg, now: SimTime) -> Vec<CtrlMsg> {
        self.deliver(sw, msg, now);
        Vec::new()
    }

    /// Timer requests accumulated since the last drain: `(fire time,
    /// node)`, where `node` is a switch id or [`CONTROLLER_NODE`]. The
    /// engine drains this after every plane interaction and schedules a
    /// deterministic timer event per request on the node's owning shard
    /// (requests only ever arise from interactions that already run
    /// there). A fired timer calls [`on_timer`](DataPlane::on_timer);
    /// stale fires must be plane-level no-ops. The default has no timers.
    fn drain_timers(&mut self) -> Vec<(SimTime, u64)> {
        Vec::new()
    }

    /// A timer requested via [`drain_timers`](DataPlane::drain_timers)
    /// fired at `node`. Returns what to (re)send; the default does
    /// nothing.
    fn on_timer(&mut self, node: u64, now: SimTime) -> TimerStep {
        let _ = (node, now);
        TimerStep::default()
    }

    /// Control-channel telemetry events accumulated since the last drain:
    /// `(kind, node)` pairs (`"dup_suppressed"`, `"retry_exhausted"`,
    /// …) that the engine forwards to the flight recorder so a degraded
    /// dump shows the message-level cause. The default reports none.
    fn drain_channel_events(&mut self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Folds the state of another instance of this plane back into `self`
    /// after a sharded run: `other` processed exactly the switches in
    /// `owned`, so per-switch state merges losslessly. The default keeps
    /// `self` unchanged, which is correct for stateless planes.
    ///
    /// Aggregate logs with no per-switch owner (e.g. a global fire log)
    /// should merge deterministically (by timestamp); they are *not*
    /// required to reproduce the single-threaded interleaving — only
    /// [`Stats`](crate::Stats) and traces carry that guarantee.
    fn absorb_shard(&mut self, other: Self, owned: &[u64])
    where
        Self: Sized,
    {
        let _ = (other, owned);
    }

    /// Folds this plane's metrics into `reg` — called by the engine while
    /// assembling the run's registry (per shard, in shard order, before
    /// [`absorb_shard`](DataPlane::absorb_shard)). The default contributes
    /// nothing; planes backed by a compiled lookup index report its
    /// fingerprint hit/fallback counters here.
    fn contribute_metrics(&self, reg: &mut edn_obs::Registry) {
        let _ = reg;
    }
}

/// A boxed host behaviour, as the engine owns it. `Send` so sharded runs
/// can move per-shard host logic onto worker threads.
pub type BoxedHosts = Box<dyn HostLogic + Send>;

/// What a host does when a packet reaches it.
pub trait HostLogic {
    /// Called on delivery; returns packets to inject back into the network
    /// from this host as `(delay, packet, size in bytes)`.
    fn on_receive(
        &mut self,
        host: u64,
        packet: &Packet,
        now: SimTime,
    ) -> Vec<(SimTime, Packet, u32)>;

    /// Produces an independent copy for one shard of a sharded run, or
    /// `None` if this logic cannot be split (the engine then falls back to
    /// single-threaded execution — results are identical either way, only
    /// wall-clock differs).
    ///
    /// Splitting is sound whenever the logic keeps no state shared
    /// *between* hosts: a sharded run partitions hosts across shards, so
    /// each host's `on_receive` sequence lands entirely on one copy.
    fn fork(&self) -> Option<BoxedHosts> {
        None
    }
}

/// A host logic that only consumes packets.
#[derive(Clone, Copy, Debug, Default)]
pub struct SinkHosts;

impl HostLogic for SinkHosts {
    fn on_receive(&mut self, _: u64, _: &Packet, _: SimTime) -> Vec<(SimTime, Packet, u32)> {
        Vec::new()
    }

    fn fork(&self) -> Option<BoxedHosts> {
        Some(Box::new(SinkHosts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkat::Field;

    #[test]
    fn step_result_constructors() {
        assert!(StepResult::drop().outputs.is_empty());
        let s = StepResult::forward(3, Packet::new());
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.outputs[0].0, 3);
    }

    #[test]
    fn table_outputs_extract_ports_and_strip_location() {
        let written = Packet::new().with(Field::Switch, 1).with(Field::Port, 4);
        let unwritten = Packet::new().with(Field::Vlan, 2);
        let outs = table_outputs(7, [written, unwritten]);
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&(4, Packet::new())));
        assert!(outs.contains(&(7, Packet::new().with(Field::Vlan, 2))));
    }

    #[test]
    fn sink_hosts_swallow() {
        let mut s = SinkHosts;
        assert!(s.on_receive(1, &Packet::new(), SimTime::ZERO).is_empty());
    }
}
