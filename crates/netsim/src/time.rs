//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
///
/// # Examples
///
/// ```
/// use netsim::SimTime;
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert_eq!(t.to_string(), "2.500ms");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// From seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// As microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// As (truncated) milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_millis(3).as_millis(), 3);
        assert_eq!(SimTime::from_micros(1_500).as_millis(), 1);
        assert!((SimTime::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(5));
        assert_eq!(b - a, SimTime::from_millis(1));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(5));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(999) < SimTime::from_millis(1));
    }
}
