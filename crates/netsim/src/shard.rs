//! Sharded multi-core execution: topology partitioning, conservative
//! lookahead synchronization, and the deterministic merge.
//!
//! # Partitioning
//!
//! [`Partition::compute`] splits a [`SimTopology`] into `K` shards by
//! greedy BFS region growing over the switch adjacency: shards are grown
//! to near-equal switch counts from the smallest unassigned switch id, so
//! the result is deterministic and tends to keep neighbouring switches
//! (and therefore hot links) together. Hosts belong to the shard of their
//! attachment switch, so host traffic never crosses shards.
//!
//! # Conservative synchronization
//!
//! The cut links between shards give a natural *lookahead* bound: a
//! packet leaving shard A towards shard B needs at least the cut link's
//! propagation latency to get there, and a controller message at least
//! the controller latency. Shards therefore advance in lock-step windows
//! `[T, T + W)` where `T` is the earliest pending event anywhere and `W`
//! is the minimum over all cut-link latencies and the controller latency
//! (Chandy–Misra–Bryant-style null-message-free conservative sync, in the
//! barrier/window form). Every cross-shard event created inside a window
//! fires at or after the *next* window, so it can be exchanged at the
//! barrier without ever arriving in a shard's past — no speculation, no
//! rollback.
//!
//! # Determinism
//!
//! Events are keyed `(time, sender entity, per-entity counter)` (see the
//! engine module docs): keys are assigned at creation from state local to
//! the creating entity, so a K-shard run assigns exactly the keys the
//! single-threaded run does. Each shard dispatches its own events in key
//! order, and [`merge`] interleaves the per-shard record/delivery/drop
//! streams by *stream-head key order* — which reproduces the one global
//! queue's pop order exactly (each shard's stream is its restriction of
//! the global order, and the global queue always pops the minimum over
//! the per-shard stream heads). Controller causality (`extra_edges`) is
//! replayed at merge time from key-tagged notify/deliver/link logs. The
//! result: `Stats` and full traces byte-identical to `EDN_SHARDS=1`,
//! pinned by `tests/plumbing_equivalence.rs`.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use edn_core::{LocatedPacket, NetworkTrace, TraceMode};
use edn_obs::{Registry, Stopwatch};
use netkat::{Loc, Packet};

use crate::engine::{Core, EventKey, RunResult};
use crate::logic::{CtrlMsg, DataPlane};
use crate::stats::Stats;
use crate::time::SimTime;
use crate::topology::{SimParams, SimTopology};

/// Reads the default shard count from the `EDN_SHARDS` environment
/// variable; unset means 1 (single-threaded).
///
/// # Panics
///
/// Panics if `EDN_SHARDS` is set to anything but a positive integer.
pub fn shard_count_from_env() -> u32 {
    match std::env::var("EDN_SHARDS") {
        Ok(v) => match v.parse::<u32>() {
            Ok(k) if k >= 1 => k,
            _ => panic!("EDN_SHARDS must be a positive integer, got {v:?}"),
        },
        Err(_) => 1,
    }
}

/// A deterministic K-way split of a topology: per-shard switch/host
/// ownership plus the cut (cross-shard) links.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Switch *and* host → owning shard.
    owner: HashMap<u64, u32, netkat::FxBuildHasher>,
    /// Switches per shard, in assignment order.
    members: Vec<Vec<u64>>,
    /// Indices into `topo.links()` whose endpoints live on different
    /// shards.
    cut_links: Vec<u32>,
}

impl Partition {
    /// Partitions `topo` into (at most) `shards` shards by greedy BFS
    /// region growing. The shard count is clamped to the switch count;
    /// `shards <= 1` yields the identity partition (everything on shard
    /// 0, no cut links).
    pub fn compute(topo: &SimTopology, shards: u32) -> Partition {
        let mut switches: Vec<u64> = topo.switches().to_vec();
        switches.sort_unstable();
        switches.dedup();
        let n = switches.len();
        let k = (shards.max(1) as usize).min(n.max(1));
        let adj = topo.switch_adjacency();
        let mut owner: HashMap<u64, u32, netkat::FxBuildHasher> = HashMap::default();
        let mut members = vec![Vec::new(); k];
        let mut unassigned: BTreeSet<u64> = switches.iter().copied().collect();
        let mut assigned = 0usize;
        for (s, shard) in members.iter_mut().enumerate() {
            let target = (n - assigned).div_ceil(k - s);
            let mut frontier: VecDeque<u64> = VecDeque::new();
            while shard.len() < target {
                let sw = match frontier.pop_front() {
                    Some(sw) if unassigned.contains(&sw) => sw,
                    Some(_) => continue,
                    // Fresh seed: the smallest unassigned switch (also
                    // covers disconnected components).
                    None => match unassigned.iter().next() {
                        Some(&sw) => sw,
                        None => break,
                    },
                };
                unassigned.remove(&sw);
                owner.insert(sw, s as u32);
                shard.push(sw);
                assigned += 1;
                if let Some(ports) = adj.get(&sw) {
                    for &(_, nb) in ports {
                        if unassigned.contains(&nb) {
                            frontier.push_back(nb);
                        }
                    }
                }
            }
        }
        for (h, loc) in topo.hosts() {
            let o = owner.get(&loc.sw).copied().unwrap_or(0);
            owner.insert(h, o);
        }
        let cut_links = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| owner.get(&l.src.sw) != owner.get(&l.dst.sw))
            .map(|(i, _)| i as u32)
            .collect();
        Partition { owner, members, cut_links }
    }

    /// The number of shards (after clamping).
    pub fn shard_count(&self) -> u32 {
        self.members.len() as u32
    }

    /// The shard owning a switch or host, or `None` for unknown nodes.
    pub fn owner_of(&self, node: u64) -> Option<u32> {
        self.owner.get(&node).copied()
    }

    /// The switches owned by `shard`, in assignment order.
    pub fn members(&self, shard: u32) -> &[u64] {
        &self.members[shard as usize]
    }

    /// Indices (into `topo.links()`) of the links crossing shards.
    pub fn cut_links(&self) -> &[u32] {
        &self.cut_links
    }

    /// The conservative synchronization window: the minimum over every
    /// cut link's latency and the controller latency. A zero lookahead
    /// means the partition cannot be run concurrently (the engine falls
    /// back to single-threaded execution).
    pub fn lookahead(&self, topo: &SimTopology, params: &SimParams) -> SimTime {
        let mut w = params.controller_latency;
        for &i in &self.cut_links {
            w = w.min(topo.links()[i as usize].latency);
        }
        w
    }
}

/// A cross-shard event, exchanged at window barriers. Keys are assigned
/// by the *creating* shard, so receiving shards enqueue without any
/// renumbering.
#[derive(Clone, Debug)]
pub(crate) enum Remote {
    /// A packet crossing a cut link. `parent` is the `(shard, local
    /// index)` of the egress trace record on the sending side.
    Arrive {
        time: SimTime,
        seq: u64,
        loc: Loc,
        packet: Packet,
        size: u32,
        parent: (u32, u32),
        sender: u32,
    },
    /// A switch notification travelling to the controller shard.
    Notify { time: SimTime, seq: u64, msg: CtrlMsg, cause: (u32, u32) },
    /// A controller command travelling to a switch's shard.
    Deliver { time: SimTime, seq: u64, sw: u64, msg: CtrlMsg },
}

/// Shared per-run synchronization state.
struct SyncCtx {
    barrier: Barrier,
    /// Each shard's earliest pending fire time (µs), `u64::MAX` when idle.
    next: Vec<AtomicU64>,
    /// Cross-shard events awaiting pickup, per target shard.
    inboxes: Vec<Mutex<Vec<Remote>>>,
    lookahead_us: u64,
    deadline_us: u64,
}

/// Runs `cores` to completion (or `deadline`) in lock-step lookahead
/// windows on one thread per shard (shard 0 runs on the caller's thread).
pub(crate) fn run_multi<D: DataPlane + Send>(
    cores: &mut [Core<D>],
    lookahead: SimTime,
    deadline: SimTime,
) {
    let k = cores.len();
    let ctx = SyncCtx {
        barrier: Barrier::new(k),
        next: (0..k).map(|_| AtomicU64::new(u64::MAX)).collect(),
        inboxes: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
        lookahead_us: lookahead.as_micros().max(1),
        deadline_us: deadline.as_micros(),
    };
    std::thread::scope(|s| {
        let mut rest = cores.iter_mut();
        let first = rest.next().expect("at least one shard");
        for core in rest {
            let ctx = &ctx;
            s.spawn(move || worker(core, ctx));
        }
        worker(first, &ctx);
    });
}

/// One shard's round loop: drain inbox → report earliest pending →
/// barrier → agree on the window → process it → flush outboxes → barrier.
/// Every shard computes the same window bounds from the same shared
/// reports, so all shards break out of the loop in the same round.
fn worker<D: DataPlane>(core: &mut Core<D>, ctx: &SyncCtx) {
    let me = core.me as usize;
    // Wall-clock barrier profiling only at `full` (never reproducible).
    let timed = core.metrics.full;
    loop {
        let inbound = std::mem::take(&mut *ctx.inboxes[me].lock().expect("inbox lock poisoned"));
        for msg in inbound {
            core.receive(msg);
        }
        ctx.next[me].store(core.next_time_us(), Ordering::SeqCst);
        let sw = timed.then(Stopwatch::start);
        ctx.barrier.wait();
        if let Some(sw) = sw {
            core.metrics.barrier_wait_us.observe(sw.elapsed_us());
        }
        let t = ctx.next.iter().map(|a| a.load(Ordering::SeqCst)).min().expect("shards exist");
        if t == u64::MAX || t > ctx.deadline_us {
            // Done (or past the horizon): inboxes are empty — everything
            // sent last round was drained above, and nothing ran since.
            break;
        }
        let horizon = t.saturating_add(ctx.lookahead_us).min(ctx.deadline_us.saturating_add(1));
        if core.metrics.on {
            core.metrics.window_us.observe(horizon - t);
        }
        core.run_window(horizon);
        core.flush_outbox(&ctx.inboxes);
        let sw = timed.then(Stopwatch::start);
        ctx.barrier.wait();
        if let Some(sw) = sw {
            core.metrics.barrier_wait_us.observe(sw.elapsed_us());
        }
    }
}

/// Drains per-shard `(key, payload)` streams in stream-head key order —
/// the global dispatch order (see the module docs) — calling
/// `f(stream index, payload)` for each element.
fn drain_streams<T>(streams: Vec<Vec<(EventKey, T)>>, mut f: impl FnMut(usize, T)) {
    let mut iters: Vec<_> = streams.into_iter().map(|v| v.into_iter().peekable()).collect();
    let mut heap: BinaryHeap<Reverse<(EventKey, usize)>> = BinaryHeap::new();
    for (s, it) in iters.iter_mut().enumerate() {
        if let Some(&(key, _)) = it.peek() {
            heap.push(Reverse((key, s)));
        }
    }
    while let Some(Reverse((_, s))) = heap.pop() {
        let (_, payload) = iters[s].next().expect("peeked head exists");
        f(s, payload);
        if let Some(&(key, _)) = iters[s].peek() {
            heap.push(Reverse((key, s)));
        }
    }
}

/// One step of the merge-time controller-causality replay.
enum CtrlOp {
    /// A Notify dispatch: `(shard, local index)` of the causing step.
    Notify((u32, u32)),
    /// A Deliver dispatch at a switch.
    Deliver(u64),
    /// The first switch step after one or more delivers: `(switch, shard,
    /// local ingress index)`.
    Marker(u64, u32, u32),
}

/// Merges the per-shard recordings of a finished sharded run back into
/// the single global sequence the solo engine would have produced.
pub(crate) fn merge<D: DataPlane>(cores: Vec<Core<D>>, part: &Partition) -> RunResult<D> {
    let mut stats = Stats::default();
    let metrics_on = cores[0].metrics.on;
    let mut metrics = Registry::new();
    let mut planes = Vec::with_capacity(cores.len());
    let mut parts = Vec::with_capacity(cores.len());
    let mut record_runs = Vec::with_capacity(cores.len());
    let mut remote_parents = Vec::with_capacity(cores.len());
    let mut delivery_streams = Vec::with_capacity(cores.len());
    let mut drop_streams = Vec::with_capacity(cores.len());
    let mut ctrl_streams: Vec<Vec<(EventKey, CtrlOp)>> = Vec::new();
    for core in cores {
        if metrics_on {
            // Fold per-shard accumulators in shard order — the same fold
            // order every run, so shard-scoped values are deterministic
            // at a fixed shard count and sim-scoped values are invariant.
            core.metrics.contribute(&mut metrics);
            crate::metrics::contribute_arena(&mut metrics, core.trace.arena());
            core.dataplane.contribute_metrics(&mut metrics);
        }
        stats.injected += core.stats.injected;
        stats.events_processed += core.stats.events_processed;
        stats.delivered_packets += core.stats.delivered_packets;
        stats.delivered_bytes += core.stats.delivered_bytes;
        for (total, shard) in stats.dropped.iter_mut().zip(core.stats.dropped) {
            *total += shard;
        }
        debug_assert_eq!(core.stats.deliveries.len(), core.delivery_keys.len());
        debug_assert_eq!(core.stats.drops.len(), core.drop_keys.len());
        delivery_streams
            .push(core.delivery_keys.into_iter().zip(core.stats.deliveries).collect::<Vec<_>>());
        drop_streams.push(core.drop_keys.into_iter().zip(core.stats.drops).collect::<Vec<_>>());
        let me = core.me;
        ctrl_streams
            .push(core.notify_log.into_iter().map(|(k, c)| (k, CtrlOp::Notify(c))).collect());
        ctrl_streams
            .push(core.deliver_log.into_iter().map(|(k, sw)| (k, CtrlOp::Deliver(sw))).collect());
        ctrl_streams.push(
            core.link_markers
                .into_iter()
                .map(|(k, sw, li)| (k, CtrlOp::Marker(sw, me, li)))
                .collect(),
        );
        record_runs.push(core.record_runs);
        remote_parents.push(core.remote_parents);
        planes.push(core.dataplane);
        parts.push(core.trace.into_parts());
    }
    drain_streams(delivery_streams, |_, d| stats.deliveries.push(d));
    drain_streams(drop_streams, |_, d| stats.drops.push(d));

    let trace = if parts[0].mode == TraceMode::Full {
        // Rebuild the global record order from the per-event run tags,
        // resolving each shard's packet ids in its own arena.
        let total: usize = parts.iter().map(|p| p.records.len()).sum();
        let mut packets: Vec<LocatedPacket> = Vec::with_capacity(total);
        let mut global_of: Vec<Vec<usize>> =
            parts.iter().map(|p| vec![usize::MAX; p.records.len()]).collect();
        let mut taken = vec![0usize; parts.len()];
        drain_streams(record_runs, |s, count| {
            for _ in 0..count {
                let li = taken[s];
                taken[s] += 1;
                let (pid, loc) = parts[s].records[li];
                global_of[s][li] = packets.len();
                packets.push(LocatedPacket::new(parts[s].arena.get(pid).clone(), loc));
            }
        });
        debug_assert_eq!(packets.len(), total, "every record belongs to a tagged event");
        let mut parents: Vec<Option<usize>> = vec![None; total];
        for (s, p) in parts.iter().enumerate() {
            for (li, par) in p.parents.iter().enumerate() {
                if let Some(pi) = par {
                    parents[global_of[s][li]] = Some(global_of[s][*pi]);
                }
            }
        }
        for (s, list) in remote_parents.iter().enumerate() {
            for &(li, (rs, ri)) in list {
                parents[global_of[s][li as usize]] = Some(global_of[rs as usize][ri as usize]);
            }
        }
        let mut terminated = BTreeSet::new();
        for (s, p) in parts.iter().enumerate() {
            for &i in &p.terminated {
                if i < p.records.len() {
                    terminated.insert(global_of[s][i]);
                }
            }
        }
        // Replay the controller-causality bookkeeping in global order:
        // notifies accumulate causes, delivers snapshot the cause count
        // per switch, and the first step after a deliver links the new
        // causes — exactly the solo engine's in-line logic.
        let mut causes: Vec<usize> = Vec::new();
        let mut delivered: HashMap<u64, usize> = HashMap::new();
        let mut linked: HashMap<u64, usize> = HashMap::new();
        let mut extra_edges: Vec<(usize, usize)> = Vec::new();
        drain_streams(ctrl_streams, |_, op| match op {
            CtrlOp::Notify((s, i)) => causes.push(global_of[s as usize][i as usize]),
            CtrlOp::Deliver(sw) => {
                delivered.insert(sw, causes.len());
            }
            CtrlOp::Marker(sw, s, li) => {
                let d = delivered.get(&sw).copied().unwrap_or(0);
                let l = linked.entry(sw).or_insert(0);
                let ingress = global_of[s as usize][li as usize];
                for &cause in &causes[*l..d] {
                    if cause < ingress {
                        extra_edges.push((cause, ingress));
                    }
                }
                *l = (*l).max(d);
            }
        });
        NetworkTrace::from_forest(packets, &parents, terminated, extra_edges)
    } else {
        NetworkTrace::default()
    };

    let mut planes = planes.into_iter();
    let mut dataplane = planes.next().expect("at least one shard");
    for (i, other) in planes.enumerate() {
        dataplane.absorb_shard(other, part.members(i as u32 + 1));
    }
    if metrics_on {
        crate::metrics::contribute_stats(&mut metrics, &stats);
    }
    RunResult { trace, stats, dataplane, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkSpec, SimTopology};

    fn chain(n: u64) -> SimTopology {
        let lat = SimTime::from_micros(10);
        let mut topo = SimTopology::new(1..=n);
        for i in 1..n {
            topo = topo.bilink(Loc::new(i, 1), Loc::new(i + 1, 2), lat, None);
        }
        topo.host(100, Loc::new(1, 3)).host(200, Loc::new(n, 3))
    }

    #[test]
    fn identity_partition_has_no_cuts() {
        let topo = chain(5);
        let p = Partition::compute(&topo, 1);
        assert_eq!(p.shard_count(), 1);
        assert!(p.cut_links().is_empty());
        for sw in 1..=5 {
            assert_eq!(p.owner_of(sw), Some(0));
        }
        assert_eq!(p.owner_of(100), Some(0));
    }

    #[test]
    fn chain_splits_into_contiguous_halves() {
        let topo = chain(6);
        let p = Partition::compute(&topo, 2);
        assert_eq!(p.shard_count(), 2);
        assert_eq!(p.members(0).len() + p.members(1).len(), 6);
        // Exactly one bidirectional cut on a chain split in two.
        assert_eq!(p.cut_links().len(), 2);
        // Hosts follow their attachment switches.
        assert_eq!(p.owner_of(100), p.owner_of(1));
        assert_eq!(p.owner_of(200), p.owner_of(6));
    }

    #[test]
    fn shard_count_clamps_to_switches() {
        let topo = chain(3);
        let p = Partition::compute(&topo, 64);
        assert_eq!(p.shard_count(), 3);
        for s in 0..3 {
            assert_eq!(p.members(s).len(), 1);
        }
    }

    #[test]
    fn lookahead_is_min_cut_latency_capped_by_controller() {
        let lat = SimTime::from_micros(40);
        let topo = SimTopology::new([1, 2])
            .link(LinkSpec::new(Loc::new(1, 1), Loc::new(2, 1), lat))
            .link(LinkSpec::new(Loc::new(2, 2), Loc::new(1, 2), SimTime::from_micros(90)));
        let p = Partition::compute(&topo, 2);
        let params = SimParams::default();
        assert_eq!(p.lookahead(&topo, &params), lat);
        let tight = SimParams { controller_latency: SimTime::from_micros(7), ..params };
        assert_eq!(p.lookahead(&topo, &tight), SimTime::from_micros(7));
    }

    #[test]
    fn disconnected_components_are_still_covered() {
        // Two islands, no links: BFS reseeds and still owns everything.
        let topo = SimTopology::new([10, 20, 30, 40]);
        let p = Partition::compute(&topo, 2);
        let mut seen = 0;
        for s in 0..2 {
            seen += p.members(s).len();
        }
        assert_eq!(seen, 4);
        assert!(p.cut_links().is_empty());
    }
}
