//! The control-channel fault model: seeded, deterministic loss,
//! duplication, and reordering on the switch↔controller message channel.
//!
//! The paper's runtime (and this engine, until now) assumes the southbound
//! channel delivers every `Notify`/`Deliver` exactly once and in order.
//! [`ChannelModel`] withdraws that assumption on demand: each direction
//! carries independent per-mille drop/duplicate/reorder probabilities and
//! a jitter bound, and every per-message decision is a *pure hash* of
//! `(channel seed, direction, endpoint, per-endpoint message counter)` —
//! no stateful RNG anywhere on the path. That makes the fault pattern a
//! function of shard-invariant quantities only (message counters advance
//! on the owning shard exactly as they do single-threaded), so a lossy run
//! is byte-identical across `EDN_SHARDS`, and the workload RNG stream is
//! untouched.
//!
//! Selected by `EDN_CHANNEL=ideal|lossy` (read once in `Engine::new`) or
//! pinned explicitly with `Engine::with_channel`. The `ideal` model
//! short-circuits at the call sites, so it is byte-identical to the
//! pre-fault-model engine.

use crate::time::SimTime;

/// Default seed for the env-selected lossy preset (`"EDN_CHANNL"` bytes —
/// any fixed constant works; explicit constructors pass their own).
const DEFAULT_SEED: u64 = 0x45444e5f4348414e;

/// Fault parameters for one direction of the control channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DirModel {
    /// Per-mille probability a message is dropped outright.
    pub drop_pm: u32,
    /// Per-mille probability a message is duplicated (both copies travel,
    /// each with its own jitter).
    pub dup_pm: u32,
    /// Per-mille probability a copy is badly delayed (an extra four jitter
    /// bounds), which is what reorders it past later messages.
    pub reorder_pm: u32,
    /// Uniform per-copy jitter bound, in µs.
    pub jitter_us: u64,
}

impl DirModel {
    /// No faults at all in this direction?
    pub fn is_ideal(&self) -> bool {
        self.drop_pm == 0 && self.dup_pm == 0 && self.reorder_pm == 0 && self.jitter_us == 0
    }
}

/// The two-direction channel model plus its dedicated fault seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelModel {
    /// Switch → controller (`Notify` events, including acks riding back).
    pub to_ctrl: DirModel,
    /// Controller → switch (`Deliver` events).
    pub to_switch: DirModel,
    /// Seed of the derived fault stream (independent of every other RNG).
    pub seed: u64,
}

impl Default for ChannelModel {
    fn default() -> ChannelModel {
        ChannelModel::ideal()
    }
}

/// Which direction a control message travels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelDir {
    /// Switch → controller.
    ToCtrl,
    /// Controller → switch.
    ToSwitch,
}

/// What the channel decided for one message: how many copies arrive and
/// each copy's extra delay. `copies == 0` means the message was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelFate {
    /// Surviving copies (0 = dropped, 1 = normal, 2 = duplicated).
    pub copies: u8,
    /// Extra delay per copy, µs (index 1 unused when `copies < 2`).
    pub delay_us: [u64; 2],
    /// Was any copy given the reorder (bad-delay) treatment?
    pub reordered: bool,
}

impl ChannelFate {
    /// The ideal fate: one copy, no delay.
    pub const CLEAN: ChannelFate = ChannelFate { copies: 1, delay_us: [0, 0], reordered: false };
}

/// SplitMix64 finalizer: the pure hash behind every per-message decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl ChannelModel {
    /// The ideal channel: exactly-once, in-order, zero jitter — the
    /// engine's historical behaviour, byte for byte.
    pub fn ideal() -> ChannelModel {
        ChannelModel { to_ctrl: DirModel::default(), to_switch: DirModel::default(), seed: 0 }
    }

    /// The `EDN_CHANNEL=lossy` preset: moderate symmetric loss (6% drop,
    /// 3% duplication, 3% reorder, 40 µs jitter in both directions).
    pub fn lossy(seed: u64) -> ChannelModel {
        let dir = DirModel { drop_pm: 60, dup_pm: 30, reorder_pm: 30, jitter_us: 40 };
        ChannelModel { to_ctrl: dir, to_switch: dir, seed }
    }

    /// Reads the model from the `EDN_CHANNEL` environment variable
    /// (`ideal` or `lossy`); unset means ideal.
    ///
    /// # Panics
    ///
    /// Panics if `EDN_CHANNEL` is set to anything else.
    pub fn from_env() -> ChannelModel {
        match std::env::var("EDN_CHANNEL") {
            Ok(v) if v == "ideal" => ChannelModel::ideal(),
            Ok(v) if v == "lossy" => ChannelModel::lossy(DEFAULT_SEED),
            Ok(v) => panic!("EDN_CHANNEL must be `ideal` or `lossy`, got {v:?}"),
            Err(_) => ChannelModel::ideal(),
        }
    }

    /// This model with a different fault seed.
    pub fn with_seed(self, seed: u64) -> ChannelModel {
        ChannelModel { seed, ..self }
    }

    /// Faultless in both directions? (The engine short-circuits every
    /// fault site on this, restoring the historical hot path.)
    pub fn is_ideal(&self) -> bool {
        self.to_ctrl.is_ideal() && self.to_switch.is_ideal()
    }

    /// The parameters governing `dir`.
    fn dir(&self, dir: ChannelDir) -> &DirModel {
        match dir {
            ChannelDir::ToCtrl => &self.to_ctrl,
            ChannelDir::ToSwitch => &self.to_switch,
        }
    }

    /// The fate of message number `counter` sent by `node` in direction
    /// `dir`: a pure function of the model and those identifiers, so every
    /// shard count computes the same faults.
    pub fn fate(&self, dir: ChannelDir, node: u64, counter: u64) -> ChannelFate {
        let m = self.dir(dir);
        if m.is_ideal() {
            return ChannelFate::CLEAN;
        }
        let salt = match dir {
            ChannelDir::ToCtrl => 0x6e6f_7469_6679,
            ChannelDir::ToSwitch => 0x6465_6c69_7665,
        };
        let base = mix(self.seed ^ salt).wrapping_add(mix(node).rotate_left(17)) ^ mix(counter);
        let roll_pm = |purpose: u64| (mix(base.wrapping_add(purpose)) % 1000) as u32;
        if roll_pm(1) < m.drop_pm {
            return ChannelFate { copies: 0, delay_us: [0, 0], reordered: false };
        }
        let copies = if roll_pm(2) < m.dup_pm { 2 } else { 1 };
        let mut delay_us = [0u64; 2];
        let mut reordered = false;
        for (i, d) in delay_us.iter_mut().enumerate().take(copies as usize) {
            let p = 10 + 2 * i as u64;
            if m.jitter_us > 0 {
                *d = mix(base.wrapping_add(p)) % (m.jitter_us + 1);
            }
            if roll_pm(p + 1) < m.reorder_pm {
                *d += 4 * m.jitter_us.max(1);
                reordered = true;
            }
        }
        ChannelFate { copies, delay_us, reordered }
    }

    /// [`fate`](ChannelModel::fate) with the delays as [`SimTime`]s.
    pub fn fate_times(
        &self,
        dir: ChannelDir,
        node: u64,
        counter: u64,
    ) -> (ChannelFate, [SimTime; 2]) {
        let f = self.fate(dir, node, counter);
        (f, [SimTime::from_micros(f.delay_us[0]), SimTime::from_micros(f.delay_us[1])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_clean_everywhere() {
        let m = ChannelModel::ideal();
        assert!(m.is_ideal());
        for counter in 0..64 {
            assert_eq!(m.fate(ChannelDir::ToCtrl, 3, counter), ChannelFate::CLEAN);
            assert_eq!(m.fate(ChannelDir::ToSwitch, 3, counter), ChannelFate::CLEAN);
        }
    }

    #[test]
    fn fates_are_pure_functions_of_their_inputs() {
        let m = ChannelModel::lossy(42);
        for counter in 0..256 {
            let a = m.fate(ChannelDir::ToCtrl, 7, counter);
            let b = m.fate(ChannelDir::ToCtrl, 7, counter);
            assert_eq!(a, b, "same inputs, same fate");
        }
        // Different seeds disagree somewhere.
        let n = ChannelModel::lossy(43);
        assert!(
            (0..256).any(|c| m.fate(ChannelDir::ToCtrl, 7, c) != n.fate(ChannelDir::ToCtrl, 7, c)),
            "seeds must steer the fault pattern"
        );
        // Directions draw from independent streams.
        assert!(
            (0..256)
                .any(|c| m.fate(ChannelDir::ToCtrl, 7, c) != m.fate(ChannelDir::ToSwitch, 7, c)),
            "directions must draw independently"
        );
    }

    #[test]
    fn lossy_preset_actually_drops_dups_and_delays() {
        let m = ChannelModel::lossy(2016);
        let mut drops = 0;
        let mut dups = 0;
        let mut delayed = 0;
        for counter in 0..4000 {
            let f = m.fate(ChannelDir::ToCtrl, 1, counter);
            match f.copies {
                0 => drops += 1,
                2 => dups += 1,
                _ => {}
            }
            if f.copies > 0 && f.delay_us[0] > 0 {
                delayed += 1;
            }
        }
        assert!(drops > 100, "~6% of 4000 should drop, saw {drops}");
        assert!(dups > 40, "~3% should duplicate, saw {dups}");
        assert!(delayed > 1000, "jitter should delay most copies, saw {delayed}");
    }

    #[test]
    fn from_env_defaults_to_ideal() {
        // The test runner may or may not have EDN_CHANNEL set; only probe
        // the unset path when it genuinely is unset.
        if std::env::var("EDN_CHANNEL").is_err() {
            assert!(ChannelModel::from_env().is_ideal());
        }
    }
}
