//! # netsim — a deterministic discrete-event network simulator
//!
//! The execution substrate for the event-driven network programming stack:
//! switches with per-packet processing delay, links with latency, capacity,
//! and tail-drop queues, hosts with reactive behaviour (ping replies,
//! ack-clocked flows), and a controller message channel.
//!
//! This replaces the paper's Mininet + modified OpenFlow testbed. All
//! behaviour is injected through the [`DataPlane`] trait (implemented by the
//! `nes-runtime` crate both for the paper's tag-and-digest runtime and for
//! the uncoordinated baseline). Every packet processing step is recorded
//! into an `edn-core` network trace so finished runs can be checked against
//! the paper's consistency definitions.
//!
//! ```
//! use netsim::{CtrlMsg, DataPlane, Engine, SimParams, SimTime, SimTopology,
//!              SinkHosts, StepResult};
//! use netkat::{Loc, Packet};
//!
//! // A one-switch data plane that forwards port 2 <-> port 3.
//! struct Wire;
//! impl DataPlane for Wire {
//!     fn process(&mut self, _sw: u64, pt: u64, pk: Packet, _h: bool, _t: SimTime) -> StepResult {
//!         StepResult::forward(if pt == 2 { 3 } else { 2 }, pk)
//!     }
//!     fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> { vec![] }
//!     fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
//! }
//!
//! let topo = SimTopology::new([1])
//!     .host(100, Loc::new(1, 2))
//!     .host(200, Loc::new(1, 3));
//! let mut engine = Engine::new(topo, SimParams::default(), Wire, Box::new(SinkHosts));
//! engine.inject_at(SimTime::ZERO, 100, Packet::new());
//! let result = engine.run_until(SimTime::from_secs(1));
//! assert_eq!(result.stats.deliveries.len(), 1);
//! assert_eq!(result.stats.deliveries[0].host, 200);
//! ```

#![warn(missing_docs)]

mod channel;
mod engine;
mod logic;
mod metrics;
mod queue;
mod shard;
pub mod source;
mod stats;
mod time;
mod topology;
pub mod traffic;

pub use channel::{ChannelDir, ChannelFate, ChannelModel, DirModel};
pub use edn_core::{LeafKind, TraceMode, TraceObserver};
pub use edn_obs::{FlightRecorder, MetricsLevel};
pub use engine::{Engine, RunResult, DEFAULT_PACKET_SIZE};
pub use logic::{
    table_outputs, BoxedHosts, CtrlMsg, DataPlane, HostLogic, PacketPath, SinkHosts, StepResult,
    StepResultId, TimerStep, CONTROLLER_NODE,
};
pub use netkat::{PacketArena, PacketId};
pub use queue::QueueKind;
pub use shard::{shard_count_from_env, Partition};
pub use source::{SourceEvent, WorkloadSource};
pub use stats::{Delivery, Drop, DropReason, Stats, StatsMode};
pub use time::SimTime;
pub use topology::{LinkSpec, SimParams, SimTopology};
