//! Traffic generation: ping probes, UDP streams, and a windowed
//! (TCP-like) flow — the simulator equivalents of the paper's `ping` and
//! `iperf` workloads.
//!
//! Conventions: [`netkat::Field::IpSrc`]/[`IpDst`](netkat::Field::IpDst)
//! carry host ids, [`IpProto`](netkat::Field::IpProto) carries one of the
//! `PROTO_*` constants, `Custom(0)` a probe/flow id and `Custom(1)` a
//! sequence number.

use netkat::{Field, Packet};

use crate::engine::Engine;
use crate::logic::{DataPlane, HostLogic};
use crate::stats::Stats;
use crate::time::SimTime;

/// Protocol number of a ping request.
pub const PROTO_PING_REQUEST: u64 = 1;
/// Protocol number of a ping reply.
pub const PROTO_PING_REPLY: u64 = 2;
/// Protocol number of a UDP datagram.
pub const PROTO_UDP: u64 = 3;
/// Protocol number of a TCP-like data segment.
pub const PROTO_TCP_DATA: u64 = 4;
/// Protocol number of a TCP-like acknowledgement.
pub const PROTO_TCP_ACK: u64 = 5;

/// The field carrying probe/flow identifiers.
pub const ID_FIELD: Field = Field::Custom(0);
/// The field carrying sequence numbers.
pub const SEQ_FIELD: Field = Field::Custom(1);

/// Builds a ping request packet.
pub fn ping_request(src: u64, dst: u64, id: u64) -> Packet {
    Packet::new()
        .with(Field::IpSrc, src)
        .with(Field::IpDst, dst)
        .with(Field::IpProto, PROTO_PING_REQUEST)
        .with(ID_FIELD, id)
}

/// Builds a UDP datagram.
pub fn udp_packet(src: u64, dst: u64, flow: u64, seq: u64) -> Packet {
    Packet::new()
        .with(Field::IpSrc, src)
        .with(Field::IpDst, dst)
        .with(Field::IpProto, PROTO_UDP)
        .with(ID_FIELD, flow)
        .with(SEQ_FIELD, seq)
}

fn tcp_data(src: u64, dst: u64, flow: u64, seq: u64) -> Packet {
    Packet::new()
        .with(Field::IpSrc, src)
        .with(Field::IpDst, dst)
        .with(Field::IpProto, PROTO_TCP_DATA)
        .with(ID_FIELD, flow)
        .with(SEQ_FIELD, seq)
}

/// One scheduled ping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ping {
    /// Injection time.
    pub time: SimTime,
    /// Source host.
    pub src: u64,
    /// Destination host.
    pub dst: u64,
    /// Unique probe identifier.
    pub id: u64,
}

/// The fate of one ping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PingOutcome {
    /// The probe.
    pub ping: Ping,
    /// When the reply reached the source, if ever.
    pub replied: Option<SimTime>,
    /// Whether the request reached the destination (even if the reply was
    /// then lost).
    pub request_delivered: bool,
}

/// A TCP-like flow: `total` segments from `src` to `dst`, window `window`,
/// ack-clocked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TcpFlowSpec {
    /// Flow identifier (must be unique across flows).
    pub flow: u64,
    /// Sender host.
    pub src: u64,
    /// Receiver host.
    pub dst: u64,
    /// Start time.
    pub start: SimTime,
    /// Number of segments to send.
    pub total: u64,
    /// Window size (segments in flight).
    pub window: u64,
    /// Segment size in bytes.
    pub segment_size: u32,
}

/// A constant-rate UDP flow: datagrams of `size` bytes from `src` to `dst`
/// every `interval` within `[start, end)`, scheduled up front with
/// [`schedule_udp_flow`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpFlowSpec {
    /// Flow identifier (must be unique across flows).
    pub flow: u64,
    /// Sender host.
    pub src: u64,
    /// Receiver host.
    pub dst: u64,
    /// First datagram time.
    pub start: SimTime,
    /// End of the stream (exclusive).
    pub end: SimTime,
    /// Gap between consecutive datagrams.
    pub interval: SimTime,
    /// Datagram size in bytes.
    pub size: u32,
}

impl UdpFlowSpec {
    /// Number of datagrams the flow schedules (`⌈(end − start) /
    /// interval⌉`, clamped at zero for empty windows).
    pub fn datagram_count(&self) -> u64 {
        if self.start >= self.end || self.interval == SimTime::ZERO {
            return if self.start < self.end { 1 } else { 0 };
        }
        let span = (self.end - self.start).as_micros();
        span.div_ceil(self.interval.as_micros())
    }
}

/// The injection schedule of a UDP flow, in [`Engine::inject_batch`] item
/// form — lets callers splice many flows into **one** batched queue fill.
pub fn udp_flow_datagrams(spec: &UdpFlowSpec) -> impl Iterator<Item = (SimTime, u64, Packet, u32)> {
    let spec = *spec;
    (0..spec.datagram_count()).map(move |seq| {
        let t = spec.start + SimTime::from_micros(seq * spec.interval.as_micros());
        (t, spec.src, udp_packet(spec.src, spec.dst, spec.flow, seq), spec.size)
    })
}

/// One flow's position in a [`FlowSource`] stream.
struct FlowCursor {
    /// The rest of the flow's datagrams, in time order.
    iter: Box<dyn Iterator<Item = (SimTime, u64, Packet, u32)> + Send>,
    /// The datagram the heap entry refers to.
    pending: Option<(SimTime, u64, Packet, u32)>,
    /// Batch-order sequence of `pending` (flow-major: this flow's offset
    /// plus the datagrams already yielded).
    seq: u64,
}

/// A [`WorkloadSource`](crate::WorkloadSource) merging many
/// [`UdpFlowSpec`]s into one time-ordered lazy stream.
///
/// Memory is `O(flows)`, independent of the datagram count: each flow
/// contributes one cursor and one heap entry. The reported
/// [`SourceEvent::seq`](crate::SourceEvent::seq) numbers datagrams in
/// *flow-major* order — flow `i`'s `j`-th datagram gets
/// `offset(i) + j` — which is exactly the order
/// `flows.iter().flat_map(udp_flow_datagrams)` would feed
/// [`Engine::inject_batch`], so a streamed run is byte-identical to the
/// batched one (the streaming differential suite pins this).
pub struct FlowSource {
    /// Min-heap of `(time, seq, cursor index)` over each flow's pending
    /// datagram; `seq` is globally unique, so the order is total.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u32)>>,
    cursors: Vec<FlowCursor>,
    total: u64,
}

impl FlowSource {
    /// Builds the merged stream over `flows`.
    pub fn new(flows: &[UdpFlowSpec]) -> FlowSource {
        let mut heap = std::collections::BinaryHeap::with_capacity(flows.len());
        let mut cursors = Vec::with_capacity(flows.len());
        let mut offset = 0u64;
        for (i, f) in flows.iter().enumerate() {
            let mut iter: Box<dyn Iterator<Item = (SimTime, u64, Packet, u32)> + Send> =
                Box::new(udp_flow_datagrams(f));
            let pending = iter.next();
            if let Some((t, ..)) = pending {
                heap.push(std::cmp::Reverse((t, offset, i as u32)));
            }
            cursors.push(FlowCursor { iter, pending, seq: offset });
            offset += f.datagram_count();
        }
        FlowSource { heap, cursors, total: offset }
    }
}

impl crate::WorkloadSource for FlowSource {
    fn total_events(&self) -> u64 {
        self.total
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|std::cmp::Reverse((t, ..))| *t)
    }

    fn next_event(&mut self) -> Option<crate::SourceEvent> {
        let std::cmp::Reverse((time, seq, fi)) = self.heap.pop()?;
        let cursor = &mut self.cursors[fi as usize];
        let (t, host, packet, size) = cursor.pending.take().expect("heap entries have a pending");
        debug_assert_eq!((t, cursor.seq), (time, seq), "cursor out of sync with heap");
        if let Some(next) = cursor.iter.next() {
            cursor.seq += 1;
            self.heap.push(std::cmp::Reverse((next.0, cursor.seq, fi)));
            cursor.pending = Some(next);
        }
        Some(crate::SourceEvent { time, seq, host, packet, size })
    }
}

#[derive(Clone, Debug)]
struct TcpFlowState {
    spec: TcpFlowSpec,
    next_seq: u64,
    acked: u64,
}

/// Host behaviour for the standard scenarios: answers pings, acknowledges
/// TCP-like segments, and clocks TCP-like senders.
///
/// UDP needs no reactive behaviour (datagrams are scheduled up front with
/// [`schedule_udp_flow`]).
#[derive(Clone, Debug)]
pub struct ScenarioHosts {
    /// Host processing delay before a ping reply is injected.
    pub reply_delay: SimTime,
    tcp: Vec<TcpFlowState>,
}

impl ScenarioHosts {
    /// Creates the standard host behaviour (100 µs reply delay).
    pub fn new() -> ScenarioHosts {
        ScenarioHosts { reply_delay: SimTime::from_micros(100), tcp: Vec::new() }
    }

    /// Registers a TCP-like flow. The initial window must separately be
    /// scheduled with [`schedule_tcp_flow`].
    pub fn with_tcp_flow(mut self, spec: TcpFlowSpec) -> ScenarioHosts {
        self.tcp.push(TcpFlowState { spec, next_seq: spec.window.min(spec.total), acked: 0 });
        self
    }
}

impl Default for ScenarioHosts {
    fn default() -> ScenarioHosts {
        ScenarioHosts::new()
    }
}

impl HostLogic for ScenarioHosts {
    /// Shardable while no TCP-like flows are registered: ping replies are
    /// pure per-packet behaviour. A flow's ack-clocked window state spans
    /// its two endpoint hosts, which a sharded run may place on different
    /// shards — so TCP scenarios stay single-threaded.
    fn fork(&self) -> Option<crate::BoxedHosts> {
        if self.tcp.is_empty() {
            Some(Box::new(self.clone()))
        } else {
            None
        }
    }

    fn on_receive(
        &mut self,
        host: u64,
        packet: &Packet,
        _: SimTime,
    ) -> Vec<(SimTime, Packet, u32)> {
        let proto = packet.get(Field::IpProto);
        let to_me = packet.get(Field::IpDst) == Some(host);
        match proto {
            Some(PROTO_PING_REQUEST) if to_me => {
                let src = packet.get(Field::IpSrc).unwrap_or(0);
                let id = packet.get(ID_FIELD).unwrap_or(0);
                let reply = Packet::new()
                    .with(Field::IpSrc, host)
                    .with(Field::IpDst, src)
                    .with(Field::IpProto, PROTO_PING_REPLY)
                    .with(ID_FIELD, id);
                vec![(self.reply_delay, reply, 64)]
            }
            Some(PROTO_TCP_DATA) if to_me => {
                let src = packet.get(Field::IpSrc).unwrap_or(0);
                let flow = packet.get(ID_FIELD).unwrap_or(0);
                let seq = packet.get(SEQ_FIELD).unwrap_or(0);
                let ack = Packet::new()
                    .with(Field::IpSrc, host)
                    .with(Field::IpDst, src)
                    .with(Field::IpProto, PROTO_TCP_ACK)
                    .with(ID_FIELD, flow)
                    .with(SEQ_FIELD, seq);
                vec![(SimTime::from_micros(20), ack, 64)]
            }
            Some(PROTO_TCP_ACK) if to_me => {
                let flow_id = packet.get(ID_FIELD).unwrap_or(0);
                let Some(state) =
                    self.tcp.iter_mut().find(|f| f.spec.flow == flow_id && f.spec.src == host)
                else {
                    return Vec::new();
                };
                state.acked += 1;
                if state.next_seq < state.spec.total {
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    let pkt = tcp_data(state.spec.src, state.spec.dst, flow_id, seq);
                    return vec![(SimTime::from_micros(10), pkt, state.spec.segment_size)];
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

/// Schedules a batch of pings.
pub fn schedule_pings<D: DataPlane>(engine: &mut Engine<D>, pings: &[Ping]) {
    engine
        .inject_batch(pings.iter().map(|p| (p.time, p.src, ping_request(p.src, p.dst, p.id), 100)));
}

/// Evaluates ping outcomes against a finished run's statistics.
pub fn ping_outcomes(pings: &[Ping], stats: &Stats) -> Vec<PingOutcome> {
    pings
        .iter()
        .map(|&ping| {
            let request_delivered = stats.delivered_to(ping.dst).any(|d| {
                d.packet.get(Field::IpProto) == Some(PROTO_PING_REQUEST)
                    && d.packet.get(ID_FIELD) == Some(ping.id)
            });
            let replied = stats
                .delivered_to(ping.src)
                .find(|d| {
                    d.packet.get(Field::IpProto) == Some(PROTO_PING_REPLY)
                        && d.packet.get(ID_FIELD) == Some(ping.id)
                })
                .map(|d| d.time);
            PingOutcome { ping, replied, request_delivered }
        })
        .collect()
}

/// Schedules a constant-rate UDP stream; returns the number of datagrams.
pub fn schedule_udp_flow<D: DataPlane>(engine: &mut Engine<D>, spec: &UdpFlowSpec) -> u64 {
    let n = spec.datagram_count();
    engine.inject_batch(udp_flow_datagrams(spec));
    n
}

/// Schedules the initial window of a TCP-like flow (the rest is ack-clocked
/// by [`ScenarioHosts`]).
pub fn schedule_tcp_flow<D: DataPlane>(engine: &mut Engine<D>, spec: &TcpFlowSpec) {
    for seq in 0..spec.window.min(spec.total) {
        engine.inject_sized(
            spec.start + SimTime::from_micros(seq),
            spec.src,
            tcp_data(spec.src, spec.dst, spec.flow, seq),
            spec.segment_size,
        );
    }
}

/// Bytes of `proto` traffic delivered to `host` in `[from, to)`.
pub fn proto_bytes_delivered(
    stats: &Stats,
    host: u64,
    proto: u64,
    from: SimTime,
    to: SimTime,
) -> u64 {
    stats
        .delivered_to(host)
        .filter(|d| d.time >= from && d.time < to && d.packet.get(Field::IpProto) == Some(proto))
        .map(|d| d.size as u64)
        .sum()
}

/// Count of `proto` packets delivered to `host`.
pub fn proto_packets_delivered(stats: &Stats, host: u64, proto: u64) -> usize {
    stats.delivered_to(host).filter(|d| d.packet.get(Field::IpProto) == Some(proto)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{CtrlMsg, StepResult};
    use crate::topology::{SimParams, SimTopology};
    use netkat::Loc;

    /// A two-host wire: everything from host A's port goes to host B's port
    /// and vice versa (one switch, ports 2 and 3).
    struct Wire;

    impl DataPlane for Wire {
        fn process(&mut self, _: u64, pt: u64, packet: Packet, _: bool, _: SimTime) -> StepResult {
            StepResult::forward(if pt == 2 { 3 } else { 2 }, packet)
        }
        fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
            Vec::new()
        }
        fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
    }

    fn wire_topology() -> SimTopology {
        SimTopology::new([1]).host(100, Loc::new(1, 2)).host(200, Loc::new(1, 3))
    }

    #[test]
    fn ping_round_trip() {
        let mut e = Engine::new(
            wire_topology(),
            SimParams::default(),
            Wire,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![Ping { time: SimTime::from_millis(1), src: 100, dst: 200, id: 7 }];
        schedule_pings(&mut e, &pings);
        let r = e.run_until(SimTime::from_secs(1));
        let outcomes = ping_outcomes(&pings, &r.stats);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].request_delivered);
        let rtt = outcomes[0].replied.expect("reply") - pings[0].time;
        assert!(rtt > SimTime::ZERO && rtt < SimTime::from_millis(5), "rtt {rtt}");
    }

    #[test]
    fn unanswered_ping_reports_none() {
        // Data plane that drops everything.
        struct Blackhole;
        impl DataPlane for Blackhole {
            fn process(&mut self, _: u64, _: u64, _: Packet, _: bool, _: SimTime) -> StepResult {
                StepResult::drop()
            }
            fn on_notify(&mut self, _: CtrlMsg, _: SimTime) -> Vec<(SimTime, u64, CtrlMsg)> {
                Vec::new()
            }
            fn deliver(&mut self, _: u64, _: CtrlMsg, _: SimTime) {}
        }
        let mut e = Engine::new(
            wire_topology(),
            SimParams::default(),
            Blackhole,
            Box::new(ScenarioHosts::new()),
        );
        let pings = vec![Ping { time: SimTime::ZERO, src: 100, dst: 200, id: 1 }];
        schedule_pings(&mut e, &pings);
        let r = e.run_until(SimTime::from_secs(1));
        let outcomes = ping_outcomes(&pings, &r.stats);
        assert!(!outcomes[0].request_delivered);
        assert!(outcomes[0].replied.is_none());
    }

    #[test]
    fn udp_flow_delivers_expected_bytes() {
        let mut e = Engine::new(
            wire_topology(),
            SimParams::default(),
            Wire,
            Box::new(ScenarioHosts::new()),
        );
        let n = schedule_udp_flow(
            &mut e,
            &UdpFlowSpec {
                flow: 1,
                src: 100,
                dst: 200,
                start: SimTime::ZERO,
                end: SimTime::from_millis(100),
                interval: SimTime::from_millis(10),
                size: 1_000,
            },
        );
        assert_eq!(n, 10);
        let r = e.run_until(SimTime::from_secs(1));
        assert_eq!(
            proto_bytes_delivered(&r.stats, 200, PROTO_UDP, SimTime::ZERO, SimTime::from_secs(1)),
            10_000
        );
        assert_eq!(proto_packets_delivered(&r.stats, 200, PROTO_UDP), 10);
    }

    #[test]
    fn tcp_flow_is_ack_clocked_to_completion() {
        let spec = TcpFlowSpec {
            flow: 9,
            src: 100,
            dst: 200,
            start: SimTime::ZERO,
            total: 50,
            window: 4,
            segment_size: 1_000,
        };
        let hosts = ScenarioHosts::new().with_tcp_flow(spec);
        let mut e = Engine::new(wire_topology(), SimParams::default(), Wire, Box::new(hosts));
        schedule_tcp_flow(&mut e, &spec);
        let r = e.run_until(SimTime::from_secs(10));
        assert_eq!(proto_packets_delivered(&r.stats, 200, PROTO_TCP_DATA), 50);
        // Sender got 50 acks.
        assert_eq!(proto_packets_delivered(&r.stats, 100, PROTO_TCP_ACK), 50);
    }
}
